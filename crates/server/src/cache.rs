//! The pattern-keyed result cache.
//!
//! Census queries are expensive (a full neighborhood traversal per focal
//! node) and production query streams repeat heavily, so the server
//! memoizes encoded `table` responses keyed by the canonical query key
//! ([`ego_query::canonical_query_key`] — canonical statement + resolved
//! pattern DSLs) combined with the graph fingerprint and RND seed. This
//! is the space-for-query-time tradeoff of Deng, Lu & Tao's range
//! subgraph counting work, applied at whole-result granularity.
//!
//! The cache is a byte-budgeted, concurrency-safe LRU: one mutex guards
//! the map + recency index (operations are O(log n) and touch only
//! metadata, so contention is negligible next to census execution), and
//! hit/miss/eviction/insertion counters are atomics exposed through the
//! `stats` request.

use ego_graph::FastHashMap;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Approximate fixed bookkeeping cost per entry (map + recency index
/// nodes), added to the key/value byte lengths when budgeting.
const ENTRY_OVERHEAD: usize = 64;

/// Counter snapshot for the `stats` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to execute.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident.
    pub bytes: u64,
    /// Byte budget (0 = caching disabled).
    pub capacity_bytes: u64,
    /// Times [`QueryCache::invalidate`] ran (graph mutations).
    pub invalidations: u64,
}

struct Entry {
    value: String,
    /// Key into `recency`; updated on every touch.
    stamp: u64,
}

#[derive(Default)]
struct LruState {
    map: FastHashMap<String, Entry>,
    /// stamp -> key, ordered oldest-first. Stamps are unique (a
    /// monotonically increasing tick), so this is a recency list with
    /// O(log n) touch/evict.
    recency: BTreeMap<u64, String>,
    tick: u64,
    bytes: usize,
}

/// A concurrency-safe, byte-budgeted LRU cache of encoded responses.
pub struct QueryCache {
    state: Mutex<LruState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    invalidations: AtomicU64,
}

impl QueryCache {
    /// Cache with a byte budget. `capacity_bytes == 0` disables caching:
    /// every lookup misses and nothing is stored.
    pub fn new(capacity_bytes: usize) -> Self {
        QueryCache {
            state: Mutex::new(LruState::default()),
            capacity: capacity_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Look up a key, refreshing its recency. Counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut state = self.state.lock().unwrap();
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(key) {
            Some(entry) => {
                let old = entry.stamp;
                entry.stamp = tick;
                let value = entry.value.clone();
                state.recency.remove(&old);
                state.recency.insert(tick, key.to_string());
                drop(state);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(state);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a value, evicting least-recently-used entries until it
    /// fits. Values larger than the whole budget are not cached.
    pub fn insert(&self, key: String, value: String) {
        let cost = key.len() + value.len() + ENTRY_OVERHEAD;
        let mut state = self.state.lock().unwrap();
        // Replace any previous entry under this key (e.g. two sessions
        // raced on the same miss) so byte accounting stays exact. This
        // must happen before the oversized check below: even when the
        // new value cannot be cached, the stale one must not survive to
        // be served in its place.
        if let Some(old) = state.map.remove(&key) {
            state.recency.remove(&old.stamp);
            state.bytes -= key.len() + old.value.len() + ENTRY_OVERHEAD;
        }
        if cost > self.capacity {
            return;
        }
        let mut evicted = 0u64;
        while state.bytes + cost > self.capacity {
            let (&oldest, _) = state
                .recency
                .iter()
                .next()
                .expect("bytes>0 implies entries");
            let victim = state.recency.remove(&oldest).unwrap();
            let entry = state.map.remove(&victim).unwrap();
            state.bytes -= victim.len() + entry.value.len() + ENTRY_OVERHEAD;
            evicted += 1;
        }
        state.tick += 1;
        let stamp = state.tick;
        state.recency.insert(stamp, key.clone());
        state.map.insert(key, Entry { value, stamp });
        state.bytes += cost;
        drop(state);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every resident entry and bump the invalidation counter.
    /// Called when the graph mutates. Stale entries were already
    /// unreachable (every key embeds the graph fingerprint), so this
    /// reclaims the bytes and makes the invalidation observable in
    /// `stats`; dropped entries are not counted as evictions.
    pub fn invalidate(&self) {
        let mut state = self.state.lock().unwrap();
        state.map.clear();
        state.recency.clear();
        state.bytes = 0;
        drop(state);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().unwrap();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: state.map.len() as u64,
            bytes: state.bytes as u64,
            capacity_bytes: self.capacity as u64,
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counters() {
        let c = QueryCache::new(1 << 20);
        assert_eq!(c.get("a"), None);
        c.insert("a".into(), "va".into());
        assert_eq!(c.get("a").as_deref(), Some("va"));
        assert_eq!(c.get("b"), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 1);
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0);
    }

    #[test]
    fn lru_eviction_order() {
        // Budget for roughly three entries of this size.
        let cost = 1 + 1 + ENTRY_OVERHEAD;
        let c = QueryCache::new(3 * cost);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.insert("c".into(), "3".into());
        // Touch `a` so `b` is now the least recently used.
        assert!(c.get("a").is_some());
        c.insert("d".into(), "4".into());
        assert!(c.get("b").is_none(), "b should have been evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert!(c.get("d").is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 3);
    }

    #[test]
    fn reinsert_same_key_keeps_accounting_exact() {
        let c = QueryCache::new(1 << 12);
        c.insert("k".into(), "short".into());
        let b1 = c.stats().bytes;
        c.insert("k".into(), "a considerably longer value".into());
        assert_eq!(c.stats().entries, 1);
        assert!(c.stats().bytes > b1);
        c.insert("k".into(), "short".into());
        assert_eq!(c.stats().bytes, b1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = QueryCache::new(0);
        c.insert("a".into(), "v".into());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let c = QueryCache::new(128);
        c.insert("k".into(), "x".repeat(500));
        assert_eq!(c.stats().entries, 0);
        // Smaller values still cache.
        c.insert("k".into(), "x".into());
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn oversized_reinsert_evicts_stale_entry() {
        // Regression: an oversized insert under an existing key used to
        // early-return before removing the old entry, leaving a stale
        // value resident (and served on the next get).
        let c = QueryCache::new(128);
        c.insert("k".into(), "old".into());
        assert_eq!(c.get("k").as_deref(), Some("old"));
        c.insert("k".into(), "x".repeat(500));
        assert_eq!(c.get("k"), None, "stale value must not be served");
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn invalidate_clears_everything_and_counts() {
        let c = QueryCache::new(1 << 12);
        c.insert("a".into(), "1".into());
        c.insert("b".into(), "2".into());
        c.invalidate();
        assert_eq!(c.get("a"), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.evictions, 0, "invalidation is not eviction");
        // The cache keeps working afterwards.
        c.insert("a".into(), "fresh".into());
        assert_eq!(c.get("a").as_deref(), Some("fresh"));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(QueryCache::new(1 << 16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", i % 10);
                        if c.get(&key).is_none() {
                            c.insert(key, format!("v{t}-{i}"));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.entries <= 10);
    }
}
