//! # ego-server
//!
//! A concurrent TCP front end over [`ego-query`](ego_query): the census
//! SQL layer served to many clients, the deployment model the ROADMAP's
//! north star calls for (and the standard one for graph query languages;
//! cf. Angles et al., *Foundations of Modern Query Languages for Graph
//! Databases*).
//!
//! * The graph is loaded **once** behind an `Arc`; every connection gets
//!   a [`Session`](session::Session) with its own
//!   [`QueryEngine`](ego_query::QueryEngine) and a pattern catalog
//!   layered over a shared base catalog ([`ego_query::Catalog::layered`]),
//!   so `define`s are per-session and can never shadow shared built-ins.
//! * The wire protocol is line-delimited JSON ([`protocol`]): `ping` /
//!   `define` / `query` / `explain` / `update` / `subscribe` /
//!   `unsubscribe` / `stats` / `shutdown` requests, `table` / `error`
//!   responses, plus asynchronous `notify` frames pushed to
//!   subscribers.
//! * Concurrency is a bounded thread-per-connection pool over
//!   `std::net` ([`server`]) — the build environment is offline, so no
//!   async runtime — with per-request read/write timeouts and graceful
//!   shutdown via a shared flag (set by [`server::ShutdownHandle`] or a
//!   `shutdown` request).
//! * In front of the executor sits a pattern-keyed LRU **result cache**
//!   ([`cache`]): encoded `table` responses keyed by
//!   [`ego_query::canonical_query_key`] (canonical statement + resolved
//!   pattern DSLs) + graph fingerprint + seed. Repeat queries are served
//!   byte-identically with no traversal; hit/miss/eviction counters are
//!   exposed through `stats`.
//! * `update` applies an edge-mutation script
//!   ([`ego_dynamic::DeltaGraph`]) to the shared graph, swapping in a
//!   freshly compacted CSR; sessions pick up the new graph lazily via a
//!   generation counter. Census-cache invalidation is **dirty-set
//!   aware**: count entries whose focal set provably can't see the
//!   delta survive the mutation.
//! * `subscribe` registers a **standing query**
//!   ([`ego_continuous::ContinuousEngine`]): every subsequent update
//!   pushes the changed rows `(focal, column, old, new)` to the
//!   subscribing connection as `notify` frames, maintained
//!   incrementally (dirty-focal re-census + match-list maintenance)
//!   rather than recomputed.
//! * Each census execution still parallelizes internally through the
//!   existing `ExecConfig { threads }` plumbing.
//!
//! ## Example
//!
//! ```
//! use ego_graph::{GraphBuilder, Label, NodeId};
//! use ego_query::Catalog;
//! use ego_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::undirected();
//! b.add_nodes(5, Label(0));
//! for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!     b.add_edge(NodeId(x), NodeId(y));
//! }
//! let graph = Arc::new(b.build());
//!
//! let server = Server::bind(
//!     ("127.0.0.1", 0),
//!     graph,
//!     Arc::new(Catalog::with_builtins()),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.shutdown_handle();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let response = client
//!     .query("SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes")
//!     .unwrap();
//! match response {
//!     ego_server::Response::Table(t) => {
//!         assert_eq!(t.rows.len(), 5);
//!     }
//!     _ => panic!("expected a table"),
//! }
//!
//! handle.shutdown();
//! thread.join().unwrap().unwrap();
//! ```

pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod session;

pub use cache::{CacheStats, QueryCache};
pub use client::{Client, RetryPolicy};
pub use protocol::{NotifyFrame, Request, Response, TableData};
pub use server::{Server, ServerConfig, ShutdownHandle};
pub use session::{NotifyQueue, ServerStats, Session, Shared, UpdateSummary};
