//! The TCP server: bounded thread-per-connection pool over `std::net`.
//!
//! The build environment is offline (no tokio), so concurrency is a
//! fixed worker pool fed by a bounded channel: the accept loop (non-
//! blocking, polling the shutdown flag) hands sockets to workers; when
//! every worker is busy and the channel is full, accepted sockets wait
//! in the OS backlog — natural backpressure. Each connection is read
//! with a short poll timeout so workers notice shutdown promptly, and a
//! request that stays half-received past the request timeout is
//! answered with an `error` and dropped.

use crate::session::{Session, Shared};
use ego_graph::Graph;
use ego_query::{Algorithm, Catalog, ShardSpec};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connection-handler threads (the concurrency bound).
    pub pool_threads: usize,
    /// Worker threads per census execution (`0` = all hardware threads).
    pub exec_threads: usize,
    /// Result-cache budget in bytes (`0` disables caching).
    pub cache_bytes: usize,
    /// How long a half-received request may dribble in before the
    /// connection is dropped.
    pub request_timeout: Duration,
    /// Write timeout per response.
    pub write_timeout: Duration,
    /// Accept/read poll tick; bounds shutdown latency.
    pub poll_interval: Duration,
    /// `RND()` seed shared by all sessions.
    pub seed: u64,
    /// Default focal shard for every query that does not carry its own
    /// (`--shard-of M/N`): this server answers only for the `M`-th of
    /// `N` contiguous node-ID ranges. `None` = whole range.
    pub shard: Option<ShardSpec>,
    /// Census algorithm for every session (results are bit-identical
    /// across algorithms wherever a spec is supported).
    pub algorithm: Algorithm,
    /// Where the `analyze` op persists its statistics snapshot (the
    /// graph's `.stats` sidecar when serving from a file). `None` keeps
    /// snapshots in memory only.
    pub stats_path: Option<std::path::PathBuf>,
    /// Where `materialize` persists the view registry (the graph's
    /// `.views` sidecar when serving from a file), re-adopted on the
    /// next startup so restarts are warm. `None` keeps views in memory
    /// only.
    pub views_path: Option<std::path::PathBuf>,
    /// Byte budget of the materialized-view tier (`0` admits nothing).
    /// Unlike the result cache's LRU, views are pinned: pressure evicts
    /// largest-first, and only to admit a new `materialize`.
    pub view_budget_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool_threads: 4,
            exec_threads: 0,
            cache_bytes: 64 << 20,
            request_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            seed: 0xC0FFEE,
            shard: None,
            algorithm: Algorithm::Auto,
            stats_path: None,
            views_path: None,
            view_budget_bytes: ego_query::DEFAULT_VIEW_BUDGET,
        }
    }
}

/// Sets the shutdown flag from another thread (or from a `shutdown`
/// protocol request, which shares the same flag).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Ask the server to stop: the accept loop exits, workers finish
    /// their current connections and drain.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// A census query server bound to a TCP address.
pub struct Server {
    listener: TcpListener,
    shared: Shared,
    config: ServerConfig,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) over a graph
    /// loaded once and a base catalog every session shares.
    pub fn bind(
        addr: impl ToSocketAddrs,
        graph: Arc<Graph>,
        base_catalog: Arc<Catalog>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Shared::new(graph, base_catalog, &config);
        Ok(Server {
            listener,
            shared,
            config,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: self.shared.shutdown.clone(),
        }
    }

    /// The state shared across sessions (cache and counters), for
    /// inspection in tests and benchmarks.
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// Serve until shutdown. Blocks the calling thread; returns after
    /// the accept loop has stopped and every worker has drained.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let pool = self.config.pool_threads.max(1);
        // Bounded handoff: at most `pool` connections queued beyond the
        // ones being served; the rest wait in the OS accept backlog.
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(pool);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..pool)
            .map(|i| {
                let rx = rx.clone();
                let shared = self.shared.clone();
                let config = self.config.clone();
                std::thread::Builder::new()
                    .name(format!("ego-server-worker-{i}"))
                    .spawn(move || loop {
                        // Take the next socket without holding the lock
                        // while serving it.
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => return, // accept loop gone: drain out
                        };
                        serve_connection(stream, &shared, &config);
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let shutdown = self.shared.shutdown.clone();
        while !shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // A send only fails if all workers panicked; treat
                    // that as shutdown.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(self.config.poll_interval);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(tx); // workers drain queued sockets, then exit
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serve one connection: read request lines, answer each with one
/// response line, until EOF, error, timeout, or server shutdown.
fn serve_connection(mut stream: TcpStream, shared: &Shared, config: &ServerConfig) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_timeout(Some(config.poll_interval)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut session = Session::new(shared);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Set when `buf` holds a partial request; enforces request_timeout.
    let mut partial_since: Option<Instant> = None;

    loop {
        // Answer every complete line already buffered (clients may
        // pipeline several requests per packet).
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let response = session.handle_line(line);
            // Frames produced by handling this request (an `update` on a
            // connection that also subscribes) go out *before* its
            // response: a client that sees generation `G` acknowledged
            // has already seen every frame up to `G`.
            for frame in session.drain_notifications() {
                if write_line(&mut stream, &frame).is_err() {
                    return;
                }
            }
            if write_line(&mut stream, &response).is_err() {
                return;
            }
        }
        partial_since = if buf.is_empty() {
            None
        } else {
            partial_since.or_else(|| Some(Instant::now()))
        };

        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll tick: push frames parked by *other*
                // connections' updates to this subscriber.
                if session.has_subscriptions() {
                    for frame in session.drain_notifications() {
                        if write_line(&mut stream, &frame).is_err() {
                            return;
                        }
                    }
                }
                // An idle connection may wait forever; a half-received
                // request may not.
                if let Some(since) = partial_since {
                    if since.elapsed() >= config.request_timeout {
                        let _ = write_line(
                            &mut stream,
                            &crate::protocol::Response::error("request timed out").encode(),
                        );
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
