//! # ego-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section V). One binary per figure:
//!
//! | Binary | Paper figure | What it sweeps |
//! |---|---|---|
//! | `fig4a` | 4(a) | CN vs GQL matching time vs graph size (clq3, clq4) |
//! | `fig4b` | 4(b) | CN vs GQL across the Figure 3 patterns |
//! | `fig4c` | 4(c) | census algorithms vs graph size, unlabeled triangle |
//! | `fig4d` | 4(d) | census algorithms vs graph size, labeled triangle |
//! | `fig4e` | 4(e) | focal-node selectivity sweep (`WHERE RND() < R`) |
//! | `fig4f` | 4(f) | number + strategy of centers (DEG vs RND) |
//! | `fig4g` | 4(g) | clustering strategy and cluster count |
//! | `fig4h` | 4(h) | DBLP-style link prediction P@K + pairwise runtimes |
//!
//! Every binary accepts `--scale quick|paper`: `quick` (default) runs
//! laptop-scale inputs; `paper` uses the paper's sizes (up to 1M nodes /
//! 5M edges — minutes to hours). Results print as aligned tables suitable
//! for EXPERIMENTS.md.

use ego_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down inputs, finishes in seconds to a few minutes.
    Quick,
    /// The paper's input sizes.
    Paper,
}

impl Scale {
    /// Parse from argv: `--scale quick|paper` (default quick).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for w in args.windows(2) {
            if w[0] == "--scale" {
                return match w[1].as_str() {
                    "paper" | "full" => Scale::Paper,
                    _ => Scale::Quick,
                };
            }
        }
        Scale::Quick
    }
}

/// Parse `--threads N` from argv (default 1, so timings stay comparable
/// with older runs unless parallelism is asked for; `0` = all hardware
/// threads).
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--threads" {
            let t: usize = w[1].parse().unwrap_or(1);
            return ego_census::ExecConfig::with_threads(t).resolve();
        }
    }
    1
}

/// Parse `--threads` as a sweep: a comma-separated list of counts
/// (`--threads 1,2,4`), each resolved like [`threads_from_args`]
/// (`0` = all hardware threads). Default `[1]`. fig4c/d run their whole
/// size sweep once per entry, so one invocation produces the
/// thread-scaling tables for EXPERIMENTS.md.
pub fn threads_sweep_from_args() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--threads" {
            let sweep: Vec<usize> = w[1]
                .split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .map(|t| ego_census::ExecConfig::with_threads(t).resolve())
                .collect();
            if !sweep.is_empty() {
                return sweep;
            }
        }
    }
    vec![1]
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// The evaluation's standard synthetic graph: Barabási–Albert with
/// `|E| = 5 |V|`, optionally labeled with 4 uniform random labels.
pub fn eval_graph(nodes: usize, labels: Option<u16>, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = ego_datagen::barabasi_albert(nodes, 5, &mut rng);
    match labels {
        Some(l) => ego_datagen::assign_random_labels(&g, l, &mut rng),
        None => g,
    }
}

/// Print a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a markdown-style header + separator.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Format seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_graph_shape() {
        let g = eval_graph(1000, Some(4), 1);
        assert_eq!(g.num_nodes(), 1000);
        assert_eq!(g.num_edges(), 5 * (1000 - 5 - 1) + 5);
        assert_eq!(g.num_labels(), 4);
        let u = eval_graph(500, None, 1);
        assert_eq!(u.num_labels(), 1);
    }

    #[test]
    fn timing_and_formatting() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.5).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }

    #[test]
    fn scale_default_quick() {
        assert_eq!(Scale::from_args(), Scale::Quick);
    }

    #[test]
    fn threads_default_one() {
        assert_eq!(threads_from_args(), 1);
        assert_eq!(threads_sweep_from_args(), vec![1]);
    }
}
