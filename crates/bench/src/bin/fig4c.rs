//! Figure 4(c): census algorithms vs graph size — unlabeled triangle.
//!
//! Paper setting: unlabeled BA graphs 20K–100K nodes, `clq3-unlb`, k = 2.
//! The unlabeled triangle is unselective (huge match counts), so
//! node-driven ND-PVOT wins and ND-BAS is reported separately (116 min at
//! 20K nodes — 218x ND-PVOT).
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4c [-- --scale paper] [--threads T[,T...]]
//! ```
//!
//! `--threads` takes a sweep (`--threads 1,2,4`; default 1): the whole
//! size sweep runs once per thread count, all through the unified
//! parallel layer; counts are identical for every thread count.

use ego_bench::{eval_graph, fmt_secs, header, row, threads_sweep_from_args, timed, Scale};
use ego_census::{global_matches, parallel, CensusSpec, PtConfig, PtOrdering};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let (sizes, bas_size): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![4_000, 8_000, 12_000, 16_000, 20_000], 4_000),
        Scale::Paper => (vec![20_000, 40_000, 60_000, 80_000, 100_000], 20_000),
    };
    for threads in threads_sweep_from_args() {
        run_sweep(&sizes, bas_size, threads);
    }
}

fn run_sweep(sizes: &[usize], bas_size: usize, threads: usize) {
    let pattern = builtin::clq3_unlabeled();
    let k = 2;

    println!(
        "# Figure 4(c): pattern census vs graph size (unlabeled clq3, k = 2, threads = {threads})\n"
    );
    header(&[
        "nodes", "matches", "ND-PVOT", "ND-DIFF", "PT-BAS", "PT-RND", "PT-OPT",
    ]);
    for &n in sizes {
        let g = eval_graph(n, None, 777);
        let spec = CensusSpec::single(&pattern, k);
        let (matches, _) = timed(|| parallel::exec_matches(&g, &pattern, threads));

        let (r_pvot, t_pvot) =
            timed(|| parallel::run_nd_pivot_parallel(&g, &spec, &matches, threads).unwrap());
        let (r_diff, t_diff) =
            timed(|| parallel::run_nd_diff_parallel(&g, &spec, &matches, threads).unwrap());
        let (r_ptb, t_ptb) =
            timed(|| parallel::run_pt_bas_parallel(&g, &spec, &matches, threads).unwrap());
        let rnd_cfg = PtConfig {
            ordering: PtOrdering::Random,
            ..PtConfig::default()
        };
        let (r_ptr, t_ptr) = timed(|| {
            parallel::run_pt_opt_parallel(&g, &spec, &matches, &rnd_cfg, threads).unwrap()
        });
        let (r_pto, t_pto) = timed(|| {
            parallel::run_pt_opt_parallel(&g, &spec, &matches, &PtConfig::default(), threads)
                .unwrap()
        });

        for other in [&r_diff, &r_ptb, &r_ptr, &r_pto] {
            assert_eq!(other, &r_pvot, "algorithms disagree at n={n}");
        }
        row(&[
            n.to_string(),
            matches.len().to_string(),
            fmt_secs(t_pvot),
            fmt_secs(t_diff),
            fmt_secs(t_ptb),
            fmt_secs(t_ptr),
            fmt_secs(t_pto),
        ]);
    }

    // ND-BAS, smallest size only (the paper reports it out-of-plot).
    let g = eval_graph(bas_size, None, 777);
    let spec = CensusSpec::single(&pattern, k);
    let (r_bas, t_bas) = timed(|| parallel::run_nd_bas_parallel(&g, &spec, threads).unwrap());
    let matches = global_matches(&g, &pattern);
    let r_pvot = parallel::run_nd_pivot_parallel(&g, &spec, &matches, threads).unwrap();
    assert_eq!(r_bas, r_pvot, "ND-BAS disagrees");
    let (_, t_pvot) =
        timed(|| parallel::run_nd_pivot_parallel(&g, &spec, &matches, threads).unwrap());
    println!(
        "\nND-BAS at {bas_size} nodes: {} ({}x ND-PVOT's {})",
        fmt_secs(t_bas),
        (t_bas / t_pvot.max(1e-9)) as u64,
        fmt_secs(t_pvot)
    );
    println!();
}
