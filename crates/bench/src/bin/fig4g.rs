//! Figure 4(g): effect of pattern match clustering on PT-OPT.
//!
//! Paper setting: 1M-node labeled BA graph, `clq3`, k = 2; NO-CLUST vs
//! RND-CLUST vs OPT-CLUST (K-means on center-distance features), cluster
//! counts 100–600. OPT-CLUST wins; too few clusters waste work on
//! redundant distance computations, too many approach NO-CLUST.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4g [-- --scale paper]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, timed, Scale};
use ego_census::{global_matches, pt_opt, CensusSpec, Clustering, PtConfig};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Quick => 100_000,
        Scale::Paper => 1_000_000,
    };
    let pattern = builtin::clq3();
    let k = 2;
    let g = eval_graph(n, Some(4), 777);
    let matches = global_matches(&g, &pattern);
    let spec = CensusSpec::single(&pattern, k);
    println!(
        "# Figure 4(g): effect of clustering ({n} nodes, labeled clq3, k = 2, {} matches)\n",
        matches.len()
    );

    // NO-CLUST is independent of the cluster count.
    let no_cfg = PtConfig {
        clustering: Clustering::None,
        ..PtConfig::default()
    };
    let ((no_res, no_stats), no_t) =
        timed(|| pt_opt::run_instrumented(&g, &spec, &matches, &no_cfg).unwrap());
    println!(
        "NO-CLUST: {} / {:.1}M edge traversals\n",
        fmt_secs(no_t),
        no_stats.edges_traversed as f64 / 1e6
    );

    println!("each cell: wall time / edge traversals\n");
    header(&["clusters", "RND-CLUST", "OPT-CLUST"]);
    for clusters in [100usize, 200, 300, 400, 500, 600] {
        let mut cells = Vec::new();
        for strategy in [Clustering::Random(clusters), Clustering::KMeans(clusters)] {
            let cfg = PtConfig {
                clustering: strategy,
                ..PtConfig::default()
            };
            let ((res, stats), t) =
                timed(|| pt_opt::run_instrumented(&g, &spec, &matches, &cfg).unwrap());
            assert_eq!(res, no_res, "clustering={strategy:?} disagrees");
            cells.push(format!(
                "{} / {:.1}M",
                fmt_secs(t),
                stats.edges_traversed as f64 / 1e6
            ));
        }
        row(&[clusters.to_string(), cells[0].clone(), cells[1].clone()]);
    }
}
