//! Figure 4(h): link prediction over DBLP-style co-authorship, plus the
//! Section V-B runtime comparison of pairwise census algorithms.
//!
//! Paper setting: SIGMOD/VLDB/ICDE 2001–2005 predicts 2006–2010
//! collaborations; nine census measures vs Jaccard vs random, precision
//! @50 and @600. Runtimes: ND-BAS poorest by orders of magnitude; PT-OPT
//! 0.9x–3.4x PT-BAS depending on pattern/radius.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4h [-- --scale paper]
//! ```

use ego_bench::{fmt_secs, header, row, timed, Scale};
use ego_census::{run_pair_census, Algorithm, PairCensusSpec, PairSelector};
use ego_datagen::dblp::{self, DblpConfig};
use ego_datagen::rng;
use ego_linkpred::measures::{candidate_pairs, CensusMeasure, MeasureKind};
use ego_linkpred::{run_experiment, ExperimentConfig};

fn main() {
    let scale = Scale::from_args();
    let cfg = match scale {
        Scale::Quick => DblpConfig {
            num_authors: 800,
            num_communities: 12,
            papers_per_year: 130,
            ..Default::default()
        },
        // The paper's DBLP slice has ~8K authors from three venues.
        Scale::Paper => DblpConfig {
            num_authors: 8_000,
            num_communities: 120,
            papers_per_year: 1_300,
            ..Default::default()
        },
    };
    let data = dblp::generate(&cfg, &mut rng(2001));
    println!(
        "# Figure 4(h): link prediction ({} authors, {} train edges, {} new test edges)\n",
        data.train.num_nodes(),
        data.train.num_edges(),
        data.test_new_edges.len()
    );

    let results = run_experiment(
        &data,
        &ExperimentConfig {
            ks: vec![50, 600],
            seed: 7,
        },
    );
    header(&["predictor", "P@50", "P@600"]);
    for m in &results.measures {
        row(&[
            m.name.clone(),
            format!("{:.3}", m.precision[0].1),
            format!("{:.3}", m.precision[1].1),
        ]);
    }

    // Runtime comparison on the pairwise queries (ND-BAS vs PT-BAS vs
    // PT-OPT), one radius sweep per structure — the paper's closing
    // runtime note. ND-BAS is run on radius 1 only (it is orders of
    // magnitude slower, exactly as reported).
    println!("\n## Pairwise census runtimes (candidate pairs per measure)\n");
    header(&[
        "measure",
        "pairs",
        "ND-PVOT",
        "PT-BAS",
        "PT-OPT",
        "PT-OPT/PT-BAS",
    ]);
    let g = &data.train;
    for kind in [MeasureKind::Node, MeasureKind::Edge, MeasureKind::Triangle] {
        for r in 1..=3u32 {
            let m = CensusMeasure { kind, r };
            let pattern = kind.pattern();
            let pairs = candidate_pairs(g, r);
            let selector = PairSelector::Pairs(pairs.clone());
            let spec = PairCensusSpec::intersection(&pattern, r, selector);

            let (res_nd, t_nd) = timed(|| run_pair_census(g, &spec, Algorithm::NdPivot).unwrap());
            let (res_ptb, t_ptb) =
                timed(|| run_pair_census(g, &spec, Algorithm::PtBaseline).unwrap());
            let (res_pto, t_pto) = timed(|| run_pair_census(g, &spec, Algorithm::PtOpt).unwrap());
            // Spot-check agreement on a few pairs.
            for &(a, b) in pairs.iter().take(50) {
                assert_eq!(res_nd.get(a, b), res_ptb.get(a, b), "{} r={r}", kind.name());
                assert_eq!(res_nd.get(a, b), res_pto.get(a, b), "{} r={r}", kind.name());
            }
            row(&[
                m.name(),
                pairs.len().to_string(),
                fmt_secs(t_nd),
                fmt_secs(t_ptb),
                fmt_secs(t_pto),
                format!("{:.2}x", t_ptb / t_pto.max(1e-9)),
            ]);
        }
    }
    println!("\nND-BAS (radius 1 only; per-pair subgraph extraction):");
    let pattern = MeasureKind::Node.pattern();
    let pairs = candidate_pairs(g, 1);
    let spec = PairCensusSpec::intersection(&pattern, 1, PairSelector::Pairs(pairs));
    let (_, t_bas) = timed(|| run_pair_census(g, &spec, Algorithm::NdBaseline).unwrap());
    println!("  nodes@1: {}", fmt_secs(t_bas));
}
