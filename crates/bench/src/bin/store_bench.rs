//! Out-of-core storage benchmark: load-time and census wall-clock for
//! the text format (heap-backed `Vec` store) vs the binary `.egb` format
//! (read-only mmap store), including a cold-cache mmap pass.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin store_bench [-- --scale paper] [--threads T]
//! ```
//!
//! The mmap open is O(1) — pages fault in lazily during the census — so
//! the interesting numbers are (a) time-to-first-result from a cold
//! process and (b) steady-state census throughput once the page cache is
//! warm. True cold-cache measurement needs `/proc/sys/vm/drop_caches`;
//! when that is not writable (containers, non-root) the "cold" pass is
//! the first touch of a freshly written file, which still pays the page
//! faults but may hit the write-back cache. The harness reports which of
//! the two it measured.

use ego_bench::{eval_graph, fmt_secs, header, row, threads_from_args, timed, Scale};
use ego_census::{run_census_exec, Algorithm, CensusSpec, ExecConfig, PtConfig};
use ego_graph::{io, Graph};
use ego_pattern::builtin;

/// Ask the kernel to drop the clean page cache. Root-only; returns
/// whether it worked so the report can label the cold pass honestly.
fn drop_page_cache() -> bool {
    use std::io::Write;
    // sync first so the .egb pages are clean and actually droppable.
    std::process::Command::new("sync").status().ok();
    match std::fs::OpenOptions::new()
        .write(true)
        .open("/proc/sys/vm/drop_caches")
    {
        Ok(mut f) => f.write_all(b"3\n").is_ok(),
        Err(_) => false,
    }
}

fn census_time(g: &Graph, spec: &CensusSpec, threads: usize) -> f64 {
    let exec = ExecConfig::with_threads(threads);
    let (res, secs) =
        timed(|| run_census_exec(g, spec, Algorithm::Auto, &PtConfig::default(), &exec));
    res.unwrap();
    secs
}

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    let n = match scale {
        Scale::Quick => 50_000,
        Scale::Paper => 500_000,
    };
    let pattern = builtin::clq3();
    let spec = CensusSpec::single(&pattern, 1);

    let g = eval_graph(n, Some(4), 777);
    let dir = std::env::temp_dir().join(format!("ego-store-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let txt = dir.join("g.txt");
    let egb = dir.join("g.egb");
    io::save_path(&g, &txt).unwrap();
    io::save_path(&g, &egb).unwrap();
    let txt_bytes = std::fs::metadata(&txt).unwrap().len();
    let egb_bytes = std::fs::metadata(&egb).unwrap().len();
    drop(g);

    println!(
        "# store backends ({n} nodes, labeled clq3, k = 1, threads = {threads})\n#\n\
         # text file: {:.1} MiB, binary file: {:.1} MiB",
        txt_bytes as f64 / (1 << 20) as f64,
        egb_bytes as f64 / (1 << 20) as f64,
    );
    let dropped = drop_page_cache();
    println!(
        "# cold pass: {}\n",
        if dropped {
            "page cache dropped via /proc/sys/vm/drop_caches"
        } else {
            "drop_caches not writable; first touch of the fresh file (may hit write-back cache)"
        }
    );

    header(&["backend", "load", "census (cold)", "census (warm)"]);

    // Text: parse cost dominates load; the census always runs warm
    // because parsing materializes every byte on the heap.
    let (g_mem, load_txt) = timed(|| io::load_path(&txt).unwrap());
    let census_txt = census_time(&g_mem, &spec, threads);
    row(&[
        format!("text ({})", g_mem.storage_kind()),
        fmt_secs(load_txt),
        "-".to_string(),
        fmt_secs(census_txt),
    ]);
    drop(g_mem);

    // Mmap: O(1) open; the cold census pays the page faults, the warm
    // one re-runs over resident pages.
    if dropped {
        drop_page_cache();
    }
    let (g_map, load_egb) = timed(|| io::load_path(&egb).unwrap());
    let census_cold = census_time(&g_map, &spec, threads);
    let census_warm = census_time(&g_map, &spec, threads);
    row(&[
        format!("binary ({})", g_map.storage_kind()),
        fmt_secs(load_egb),
        fmt_secs(census_cold),
        fmt_secs(census_warm),
    ]);
    drop(g_map);

    std::fs::remove_dir_all(&dir).ok();
}
