//! Figure 4(f): effect of the number and choice of centers on PT-OPT.
//!
//! Paper setting: 1M-node labeled BA graph, `clq3`, k = 2, centers 0–24,
//! DEG-CNTR (highest degree) vs RND-CNTR (random). To isolate the PMD
//! effect from clustering quality, the clustering feature centers are
//! pinned (12) while the PMD centers vary. Degree centers help; random
//! centers hurt as their overhead grows; too many centers of any kind
//! eventually dominates.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4f [-- --scale paper]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, timed, Scale};
use ego_census::{global_matches, pt_opt, CensusSpec, CenterStrategy, PtConfig};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Quick => 100_000,
        Scale::Paper => 1_000_000,
    };
    let pattern = builtin::clq3();
    let k = 2;
    let g = eval_graph(n, Some(4), 777);
    let matches = global_matches(&g, &pattern);
    let spec = CensusSpec::single(&pattern, k);
    println!(
        "# Figure 4(f): effect of centers ({n} nodes, labeled clq3, k = 2, {} matches)\n",
        matches.len()
    );
    println!("clustering centers pinned at 12; PMD centers vary.\n");
    println!("each cell: wall time / query edge traversals / reinsertions (center index build excluded; it is amortized per graph)\n");
    header(&["PMD centers", "DEG-CNTR", "RND-CNTR"]);

    let mut reference = None;
    for centers in [0usize, 4, 8, 12, 16, 20, 24] {
        let mut cells = Vec::new();
        for strategy in [CenterStrategy::Degree, CenterStrategy::Random] {
            let cfg = PtConfig {
                num_centers: centers,
                center_strategy: strategy,
                clustering_centers: Some(12),
                ..PtConfig::default()
            };
            let ((res, stats), t) =
                timed(|| pt_opt::run_instrumented(&g, &spec, &matches, &cfg).unwrap());
            match &reference {
                None => reference = Some(res),
                Some(r) => assert_eq!(&res, r, "centers={centers} {strategy:?} disagrees"),
            }
            cells.push(format!(
                "{} / {:.1}M / {}",
                fmt_secs(t),
                stats.edges_traversed as f64 / 1e6,
                stats.reinsertions
            ));
        }
        row(&[centers.to_string(), cells[0].clone(), cells[1].clone()]);
    }
}
