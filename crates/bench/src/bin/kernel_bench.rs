//! Set-intersection kernel benchmark: raw kernel throughput across size
//! ratios, and the end-to-end CN matcher under each forced kernel.
//!
//! The first table isolates the kernels on synthetic sorted lists — the
//! crossover between merge and gallop motivates the adaptive dispatcher's
//! `GALLOP_RATIO` threshold, and the bitset row shows what build-once
//! amortization buys at high reuse. The second table runs the full CN
//! matcher with `EGO_SETOPS`-style forced kernels so the adaptive row can
//! be judged against the best fixed choice.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin kernel_bench [-- --scale paper]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, timed, Scale};
use ego_graph::setops::{self, gallop_into, merge_into, Kernel, NodeBitset};
use ego_graph::NodeId;
use ego_matcher::{find_matches_with_stats, MatchStats, MatcherKind};
use ego_pattern::builtin;

fn strided(len: usize, stride: u32) -> Vec<NodeId> {
    (0..len as u32).map(|i| NodeId(i * stride)).collect()
}

fn main() {
    let scale = Scale::from_args();
    let (long_len, reps, graph_nodes) = match scale {
        Scale::Quick => (100_000usize, 200u32, 60_000usize),
        Scale::Paper => (1_000_000usize, 200u32, 200_000usize),
    };

    println!("# Set-intersection kernels: merge vs gallop vs bitset\n");
    println!("long list: {long_len} elements; ratio = |long| / |short|; {reps} reps\n");
    header(&[
        "ratio",
        "merge",
        "gallop",
        "bitset(prebuilt)",
        "gallop/merge",
        "bitset/merge",
        "out",
    ]);
    for ratio in [1usize, 10, 100, 1000] {
        let long = strided(long_len, 7);
        let short = strided(long_len / ratio, 7 * ratio as u32);
        let mut out = Vec::with_capacity(short.len());

        let (n_merge, t_merge) = timed(|| {
            let mut n = 0;
            for _ in 0..reps {
                merge_into(&short, &long, &mut out);
                n = out.len();
            }
            n
        });
        let (n_gallop, t_gallop) = timed(|| {
            let mut n = 0;
            for _ in 0..reps {
                gallop_into(&short, &long, &mut out);
                n = out.len();
            }
            n
        });
        let bits = NodeBitset::from_sorted(long_len * 7 + 1, &long);
        let (n_bits, t_bits) = timed(|| {
            let mut n = 0;
            for _ in 0..reps {
                bits.filter_into(&short, &mut out);
                n = out.len();
            }
            n
        });
        assert_eq!(n_merge, n_gallop);
        assert_eq!(n_merge, n_bits);
        row(&[
            format!("1:{ratio}"),
            fmt_secs(t_merge / reps as f64),
            fmt_secs(t_gallop / reps as f64),
            fmt_secs(t_bits / reps as f64),
            format!("{:.2}x", t_merge / t_gallop.max(1e-12)),
            format!("{:.2}x", t_merge / t_bits.max(1e-12)),
            n_merge.to_string(),
        ]);
    }

    println!("\n# End-to-end CN matcher under forced kernels (BA graph, 4 labels)\n");
    let g = eval_graph(graph_nodes, Some(4), 4242);
    header(&[
        "pattern",
        "kernel",
        "time",
        "matches",
        "merge",
        "gallop",
        "bitset",
        "saved allocs",
    ]);
    for pattern in [builtin::clq3(), builtin::clq4()] {
        let mut baseline = None;
        for kernel in [
            Kernel::Merge,
            Kernel::Gallop,
            Kernel::Bitset,
            Kernel::Adaptive,
        ] {
            setops::set_kernel(kernel);
            let mut stats = MatchStats::default();
            let (matches, t) = timed(|| {
                find_matches_with_stats(&g, &pattern, MatcherKind::CandidateNeighbors, &mut stats)
            });
            let n = matches.len();
            match baseline {
                None => baseline = Some(n),
                Some(b) => assert_eq!(b, n, "kernel changed the match count"),
            }
            row(&[
                pattern.name().to_string(),
                kernel.name().to_string(),
                fmt_secs(t),
                n.to_string(),
                stats.setops.merge_calls.to_string(),
                stats.setops.gallop_calls.to_string(),
                stats.setops.bitset_calls.to_string(),
                stats.setops.saved_allocs.to_string(),
            ]);
        }
    }
    setops::set_kernel(Kernel::Adaptive);
}
