//! Figure 4(b): CN vs GQL across the Figure 3 query patterns.
//!
//! Paper setting: 1M-node / 5M-edge BA graph, 4 labels, all labeled
//! patterns; GQL takes 37 hours on `sqr` (480x CN) and loses by orders of
//! magnitude everywhere.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4b [-- --scale paper]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, timed, Scale};
use ego_matcher::spath::{SignatureIndex, SIGNATURE_RADIUS};
use ego_matcher::{find_matches, MatchList, MatchStats, MatcherKind};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Quick => 100_000,
        Scale::Paper => 1_000_000,
    };
    let g = eval_graph(n, Some(4), 4242);
    println!("# Figure 4(b): CN vs GQL across patterns ({n} nodes, 4 labels)\n");
    let profiles = ego_graph::profile::ProfileIndex::build(&g);
    let (sigs, sig_t) = timed(|| SignatureIndex::build(&g, SIGNATURE_RADIUS));
    println!("SPATH signature index built once: {}\n", fmt_secs(sig_t));
    header(&[
        "pattern",
        "CN time",
        "GQL time",
        "SPATH time",
        "GQL/CN",
        "matches",
    ]);
    for pattern in [
        builtin::path3(),
        builtin::star3(),
        builtin::clq3(),
        builtin::clq4(),
        builtin::sqr(),
    ] {
        let (cn, cn_t) = timed(|| find_matches(&g, &pattern, MatcherKind::CandidateNeighbors));
        let (gql, gql_t) = timed(|| find_matches(&g, &pattern, MatcherKind::GqlStyle));
        let (sp, sp_t) = timed(|| {
            let mut stats = MatchStats::default();
            let embs = ego_matcher::spath::enumerate_with_index(
                &g, &pattern, &profiles, &sigs, &mut stats,
            );
            MatchList::from_embeddings(&pattern, embs)
        });
        assert_eq!(
            cn.len(),
            gql.len(),
            "matchers disagree on {}",
            pattern.name()
        );
        assert_eq!(cn.len(), sp.len(), "spath disagrees on {}", pattern.name());
        row(&[
            pattern.name().to_string(),
            fmt_secs(cn_t),
            fmt_secs(gql_t),
            fmt_secs(sp_t),
            format!("{:.1}x", gql_t / cn_t.max(1e-9)),
            cn.len().to_string(),
        ]);
    }
}
