//! Figure 4(d): census algorithms vs graph size — labeled triangle.
//!
//! Paper setting: labeled BA graphs 200K–1M nodes, 4 labels, `clq3`,
//! k = 2. The labeled triangle is selective (few matches), so the
//! pattern-driven algorithms win and PT-OPT beats PT-RND (best-first
//! ordering matters).
//!
//! The paper's prototype ran on disk-resident Neo4j, where **edge
//! traversals** dominate; this binary therefore reports both wall time
//! (in-memory substrate) and edge traversals (the disk-I/O proxy that
//! the paper's optimizations target). See EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4d [-- --scale paper] [--threads T[,T...]]
//! ```
//!
//! `--threads` takes a sweep (`--threads 1,2,4`; default 1): the whole
//! size sweep runs once per thread count, all through the unified
//! parallel layer; counts stay identical, and per-thread traversal
//! stats merge additively.

use ego_bench::{eval_graph, fmt_secs, header, row, threads_sweep_from_args, timed, Scale};
use ego_census::{parallel, CensusSpec, PtConfig, PtOrdering};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![20_000, 40_000, 60_000, 80_000, 100_000],
        Scale::Paper => vec![200_000, 400_000, 600_000, 800_000, 1_000_000],
    };
    for threads in threads_sweep_from_args() {
        run_sweep(&sizes, threads);
    }
}

fn run_sweep(sizes: &[usize], threads: usize) {
    let pattern = builtin::clq3();
    let k = 2;

    println!(
        "# Figure 4(d): pattern census vs graph size (labeled clq3, 4 labels, k = 2, threads = {threads})\n"
    );
    println!("each cell: wall time / edge traversals (M = millions)\n");
    header(&[
        "nodes", "matches", "ND-PVOT", "ND-DIFF", "PT-BAS", "PT-RND", "PT-OPT",
    ]);
    for &n in sizes {
        let g = eval_graph(n, Some(4), 777);
        let spec = CensusSpec::single(&pattern, k);
        let matches = parallel::exec_matches(&g, &pattern, threads);

        let ((r_pvot, s_pvot), t_pvot) = timed(|| {
            parallel::run_nd_pivot_parallel_instrumented(&g, &spec, &matches, threads).unwrap()
        });
        let ((r_diff, s_diff), t_diff) = timed(|| {
            parallel::run_nd_diff_parallel_instrumented(&g, &spec, &matches, threads).unwrap()
        });
        let ((r_ptb, s_ptb), t_ptb) = timed(|| {
            parallel::run_pt_bas_parallel_instrumented(&g, &spec, &matches, threads).unwrap()
        });
        let rnd_cfg = PtConfig {
            ordering: PtOrdering::Random,
            ..PtConfig::default()
        };
        let ((r_ptr, s_ptr), t_ptr) = timed(|| {
            parallel::run_pt_opt_parallel_instrumented(&g, &spec, &matches, &rnd_cfg, threads)
                .unwrap()
        });
        let ((r_pto, s_pto), t_pto) = timed(|| {
            parallel::run_pt_opt_parallel_instrumented(
                &g,
                &spec,
                &matches,
                &PtConfig::default(),
                threads,
            )
            .unwrap()
        });

        for other in [&r_diff, &r_ptb, &r_ptr, &r_pto] {
            assert_eq!(other, &r_pvot, "algorithms disagree at n={n}");
        }
        let cell = |t: f64, e: u64| format!("{} / {:.1}M", fmt_secs(t), e as f64 / 1e6);
        row(&[
            n.to_string(),
            matches.len().to_string(),
            cell(t_pvot, s_pvot.edges_traversed),
            cell(t_diff, s_diff.edges_traversed),
            cell(t_ptb, s_ptb.edges_traversed),
            cell(t_ptr, s_ptr.edges_traversed),
            cell(t_pto, s_pto.edges_traversed),
        ]);
    }
    println!();
}
