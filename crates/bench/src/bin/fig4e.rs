//! Figure 4(e): varying focal-node selectivity.
//!
//! Paper setting: 500K-node unlabeled BA graph, `clq3-unlb`, k = 2,
//! `WHERE RND() < R` for R = 20%..100%. Node-driven runtime grows
//! linearly with selectivity; pattern-driven runtime is flat (it
//! processes every match regardless), so the curves cross.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4e [-- --scale paper]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, timed, Scale};
use ego_census::{global_matches, nd_pivot, pt_opt, CensusSpec, FocalNodes, PtConfig};
use ego_graph::NodeId;
use ego_pattern::builtin;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Quick => 20_000,
        Scale::Paper => 500_000,
    };
    // The paper's setting (unselective, unlabeled) plus a selective
    // labeled series where the ND/PT crossover is visible on an
    // in-memory substrate.
    sweep(n, false, "unlabeled clq3 (paper's Fig 4(e) setting)");
    sweep(n, true, "labeled clq3 (selective; crossover regime)");
}

fn sweep(n: usize, labeled: bool, title: &str) {
    let pattern = if labeled {
        builtin::clq3()
    } else {
        builtin::clq3_unlabeled()
    };
    let k = 2;
    let g = eval_graph(n, if labeled { Some(4) } else { None }, 777);
    let matches = global_matches(&g, &pattern);
    println!(
        "# Figure 4(e): focal selectivity sweep ({n} nodes, {title}, k = 2, {} matches)\n",
        matches.len()
    );
    header(&["R", "focal nodes", "ND-PVOT", "PT-OPT"]);
    for r_pct in [20u32, 40, 60, 80, 100] {
        // The paper's WHERE RND() < R predicate.
        let mut rng = StdRng::seed_from_u64(1000 + r_pct as u64);
        let focal: Vec<NodeId> = g
            .node_ids()
            .filter(|_| rng.gen::<f64>() < r_pct as f64 / 100.0)
            .collect();
        let spec = CensusSpec::single(&pattern, k).with_focal(FocalNodes::Set(focal.clone()));

        let (r_nd, t_nd) = timed(|| nd_pivot::run(&g, &spec, &matches).unwrap());
        let (r_pt, t_pt) =
            timed(|| pt_opt::run(&g, &spec, &matches, &PtConfig::default()).unwrap());
        assert_eq!(r_nd, r_pt, "algorithms disagree at R={r_pct}");

        row(&[
            format!("{r_pct}%"),
            focal.len().to_string(),
            fmt_secs(t_nd),
            fmt_secs(t_pt),
        ]);
    }
    println!();
}
