//! Ablation study of PT-OPT's optimization stack (beyond the paper's
//! figures, but directly supporting its Section IV-B design choices):
//! starting from the full configuration, disable one optimization at a
//! time and report wall time, query edge traversals, and queue
//! reinsertions.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin ablation [-- --scale paper] [--threads T]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, threads_from_args, timed, Scale};
use ego_census::{parallel, CensusSpec, Clustering, PtConfig, PtOrdering};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    let n = match scale {
        Scale::Quick => 50_000,
        Scale::Paper => 500_000,
    };
    let pattern = builtin::clq3();
    let k = 2;
    let g = eval_graph(n, Some(4), 777);
    let matches = parallel::exec_matches(&g, &pattern, threads);
    let spec = CensusSpec::single(&pattern, k);
    println!(
        "# PT-OPT ablation ({n} nodes, labeled clq3, k = 2, {} matches, threads = {threads})\n",
        matches.len()
    );

    let full = PtConfig::default();
    let variants: Vec<(&str, PtConfig)> = vec![
        ("full PT-OPT", full.clone()),
        (
            "- distance shortcuts",
            PtConfig {
                use_distance_shortcuts: false,
                ..full.clone()
            },
        ),
        (
            "- centers",
            PtConfig {
                num_centers: 0,
                clustering_centers: Some(12),
                ..full.clone()
            },
        ),
        (
            "- clustering",
            PtConfig {
                clustering: Clustering::None,
                ..full.clone()
            },
        ),
        (
            "- best-first (random order)",
            PtConfig {
                ordering: PtOrdering::Random,
                ..full.clone()
            },
        ),
        (
            "bare (no optimizations)",
            PtConfig {
                use_distance_shortcuts: false,
                num_centers: 0,
                clustering: Clustering::None,
                ordering: PtOrdering::Random,
                ..full
            },
        ),
    ];

    header(&["variant", "time", "edges traversed", "reinsertions"]);
    let mut reference = None;
    for (name, cfg) in &variants {
        let ((res, stats), t) = timed(|| {
            parallel::run_pt_opt_parallel_instrumented(&g, &spec, &matches, cfg, threads).unwrap()
        });
        match &reference {
            None => reference = Some(res),
            Some(r) => assert_eq!(&res, r, "{name} disagrees"),
        }
        row(&[
            name.to_string(),
            fmt_secs(t),
            format!("{:.1}M", stats.edges_traversed as f64 / 1e6),
            stats.reinsertions.to_string(),
        ]);
    }
}
