//! Batched vs sequential census: four patterns over one BA graph,
//! evaluated as one [`run_batch_exec`] call vs four independent census
//! runs. The batch shares one neighborhood sweep per focal node on the
//! node-driven side and one center index + pooled traversals on the
//! pattern-driven side, so it should win on both wall time and
//! traversal work while producing bit-identical counts.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin batch_bench [-- --scale paper] [--threads N]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, threads_from_args, timed, Scale};
use ego_census::{
    run_batch_exec, run_census_exec_instrumented, Algorithm, CensusSpec, ExecConfig, PtConfig,
    TraversalStats,
};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let nodes = match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 20_000,
    };
    let threads = threads_from_args();
    let k = 2;
    let g = eval_graph(nodes, Some(4), 777);
    let patterns = [
        builtin::clq3(),
        builtin::sqr(),
        builtin::path3(),
        builtin::star3(),
    ];
    let specs: Vec<CensusSpec<'_>> = patterns.iter().map(|p| CensusSpec::single(p, k)).collect();
    let config = PtConfig::default();
    let exec = ExecConfig::with_threads(threads);

    println!(
        "# batch_bench: 4 patterns (clq3, sqr, path3, star3), BA n = {nodes}, \
         4 labels, k = {k}, threads = {threads}\n"
    );
    println!("each cell: wall time / nodes expanded / edges traversed (M = millions)\n");
    header(&[
        "algorithm",
        "sequential (4 runs)",
        "batched (1 call)",
        "speedup",
    ]);

    for algo in [Algorithm::NdPivot, Algorithm::PtOpt] {
        let (seq_stats, seq_secs) = timed(|| {
            let mut total = TraversalStats::default();
            let mut counts = Vec::new();
            for spec in &specs {
                let (cv, ts) =
                    run_census_exec_instrumented(&g, spec, algo, &config, &exec).unwrap();
                total.add(&ts);
                counts.push(cv);
            }
            (total, counts)
        });
        let (batch, batch_secs) =
            timed(|| run_batch_exec(&g, &specs, algo, &config, &exec, &[]).unwrap());
        for (i, cv) in seq_stats.1.iter().enumerate() {
            assert_eq!(&batch.counts[i], cv, "{algo:?}: batch diverges on spec {i}");
        }
        let cell = |t: f64, s: &TraversalStats| {
            format!(
                "{} / {:.1}M / {:.1}M",
                fmt_secs(t),
                s.nodes_expanded as f64 / 1e6,
                s.edges_traversed as f64 / 1e6
            )
        };
        row(&[
            format!("{algo:?}"),
            cell(seq_secs, &seq_stats.0),
            cell(batch_secs, &batch.stats),
            format!("{:.2}x", seq_secs / batch_secs.max(1e-9)),
        ]);
    }
    println!();
}
