//! Figure 4(a): CN vs GQL pattern matching time, varying graph size.
//!
//! Paper setting: BA graphs from 200K nodes / 1M edges to 1M nodes / 5M
//! edges, 4 random labels, patterns clq3 and clq4; CN is 10–140x faster.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin fig4a [-- --scale paper]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, timed, Scale};
use ego_matcher::spath::{SignatureIndex, SIGNATURE_RADIUS};
use ego_matcher::{find_matches_with_stats, MatchList, MatchStats, MatcherKind};
use ego_pattern::builtin;

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![20_000, 40_000, 60_000, 80_000, 100_000],
        Scale::Paper => vec![200_000, 400_000, 600_000, 800_000, 1_000_000],
    };
    println!("# Figure 4(a): CN vs GQL, varying graph size (4 labels, |E| = 5|V|)\n");
    header(&[
        "nodes",
        "pattern",
        "CN time",
        "GQL time",
        "SPATH time",
        "GQL/CN",
        "matches",
        "CN ext-scans",
        "GQL ext-scans",
    ]);
    for &n in &sizes {
        let g = eval_graph(n, Some(4), 4242);
        let profiles = ego_graph::profile::ProfileIndex::build(&g);
        let sigs = SignatureIndex::build(&g, SIGNATURE_RADIUS);
        for pattern in [builtin::clq3(), builtin::clq4()] {
            let mut cn_stats = MatchStats::default();
            let (cn_matches, cn_t) = timed(|| {
                find_matches_with_stats(
                    &g,
                    &pattern,
                    MatcherKind::CandidateNeighbors,
                    &mut cn_stats,
                )
            });
            let mut gql_stats = MatchStats::default();
            let (gql_matches, gql_t) = timed(|| {
                find_matches_with_stats(&g, &pattern, MatcherKind::GqlStyle, &mut gql_stats)
            });
            let (sp_matches, sp_t) = timed(|| {
                let mut stats = MatchStats::default();
                let embs = ego_matcher::spath::enumerate_with_index(
                    &g, &pattern, &profiles, &sigs, &mut stats,
                );
                MatchList::from_embeddings(&pattern, embs)
            });
            assert_eq!(cn_matches.len(), gql_matches.len(), "matchers disagree");
            assert_eq!(cn_matches.len(), sp_matches.len(), "spath disagrees");
            row(&[
                n.to_string(),
                pattern.name().to_string(),
                fmt_secs(cn_t),
                fmt_secs(gql_t),
                fmt_secs(sp_t),
                format!("{:.1}x", gql_t / cn_t.max(1e-9)),
                cn_matches.len().to_string(),
                cn_stats.extension_candidates_scanned.to_string(),
                gql_stats.extension_candidates_scanned.to_string(),
            ]);
        }
    }
}
