//! Server throughput: requests/second against `ego-server` over
//! loopback, cold (every request a distinct statement, all cache
//! misses) vs cached (one statement repeated, all cache hits), at
//! 1 / 4 / 8 concurrent client threads.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin serve_bench [-- --scale paper]
//! ```
//!
//! The cold side measures the full stack — parse, canonicalize, census,
//! encode — per request; the cached side measures the network front end
//! itself (parse + canonical key + cache lookup + write), which is the
//! ceiling memoization buys on repeated pattern-census workloads.

use ego_bench::{eval_graph, header, row, timed, Scale};
use ego_query::Catalog;
use ego_server::{Client, Response, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;

/// Per-client requests in a measured round.
const REQUESTS_PER_CLIENT: usize = 40;

fn main() {
    let scale = Scale::from_args();
    let (nodes, k) = match scale {
        Scale::Quick => (2_000, 1),
        Scale::Paper => (10_000, 1),
    };
    let graph = Arc::new(eval_graph(nodes, None, 4242));

    let config = ServerConfig {
        pool_threads: 8,
        exec_threads: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(
        ("127.0.0.1", 0),
        graph,
        Arc::new(Catalog::with_builtins()),
        config,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let shared = server.shared().clone();
    let thread = std::thread::spawn(move || server.run().expect("run"));

    println!(
        "# serve_bench: req/s over loopback (BA n = {nodes}, clq3_unlb, k = {k}, \
         pool = 8, exec-threads = 1)\n"
    );
    header(&["clients", "cold req/s", "cached req/s", "speedup"]);

    // Cold statements must be globally distinct across rounds or a later
    // round would hit entries a previous round inserted.
    let mut next_distinct = 0usize;

    for clients in [1usize, 4, 8] {
        let total = clients * REQUESTS_PER_CLIENT;

        // Cold: every request a distinct statement (unique LIMIT bound),
        // so each one runs the full census.
        let first = next_distinct;
        next_distinct += total;
        let (_, cold_secs) = timed(|| {
            run_clients(addr, clients, |client_id, i| {
                let n = first + client_id * REQUESTS_PER_CLIENT + i;
                format!(
                    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes \
                     ORDER BY 2 DESC LIMIT {}",
                    n + 1
                )
            })
        });

        // Cached: one statement, warmed once, repeated by everyone.
        let warm_sql =
            format!("SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes ORDER BY 2 DESC");
        {
            let mut c = Client::connect(addr).expect("connect");
            expect_table(c.query(&warm_sql).expect("warm"));
        }
        let (_, cached_secs) = timed(|| run_clients(addr, clients, |_, _| warm_sql.clone()));

        let cold_rps = total as f64 / cold_secs;
        let cached_rps = total as f64 / cached_secs;
        row(&[
            clients.to_string(),
            format!("{cold_rps:.0}"),
            format!("{cached_rps:.0}"),
            format!("{:.0}x", cached_rps / cold_rps),
        ]);
    }

    let cache = shared.cache_stats();
    println!(
        "\ncache: {} hits / {} misses / {} insertions, {} entries, {} KiB",
        cache.hits,
        cache.misses,
        cache.insertions,
        cache.entries,
        cache.bytes / 1024
    );

    handle.shutdown();
    thread.join().expect("server thread");
}

/// `clients` threads, each opening one connection and issuing
/// `REQUESTS_PER_CLIENT` queries produced by `sql(client_id, i)`.
fn run_clients(addr: SocketAddr, clients: usize, sql: impl Fn(usize, usize) -> String + Sync) {
    std::thread::scope(|scope| {
        for client_id in 0..clients {
            let sql = &sql;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    expect_table(client.query(&sql(client_id, i)).expect("query"));
                }
            });
        }
    });
}

fn expect_table(resp: Response) {
    match resp {
        Response::Table(_) => {}
        Response::Error { message } => panic!("server error: {message}"),
    }
}
