//! Server throughput: requests/second against `ego-server` over
//! loopback at 1 / 4 / 8 concurrent client threads, across three
//! workloads that exercise the two cache layers separately:
//!
//! * **cold** — every request carries a unique `WHERE ID >= j` bound,
//!   so both the result cache and the census count cache miss and each
//!   request pays for a full census over its focal set. (The match
//!   *list* for the pattern is still shared across requests — that is
//!   the point of the match-list cache — so "cold" here means cold
//!   per-focal census work, the dominant cost.)
//! * **shared** — every request is a *distinct statement* (unique
//!   `LIMIT` bound) over the same pattern, radius and focal set. The
//!   result cache misses on each, but the census count cache hits, so
//!   only parse + projection + encode run per request. This is the
//!   batched-engine payoff for multi-statement workloads.
//! * **cached** — one statement repeated; the result cache serves it
//!   and only the network front end runs.
//! * **views** — `MATERIALIZE clq3_unlb RADIUS k` once (outside the
//!   clock), then the *same distinct-focal-subset statements as cold*:
//!   every request still misses both caches, but the optimizer rewrites
//!   its census to a pure probe of the pinned view — zero traversal —
//!   so views/cold isolates what materialization buys on never-repeated
//!   statements. The view is dropped before the next round's cold
//!   measurement so cold stays cold.
//!
//! A second section sweeps the sharded tier: the same workloads through
//! a scatter/gather [`Router`] over 1 / 2 / 4 in-process workers
//! (`--workers 1,2,4` to override the sweep list). On a 1-CPU host the
//! workers time-slice one core, so the sweep measures router overhead
//! (scatter, merge, one extra hop), not parallel speedup.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin serve_bench [-- --scale paper]
//!     [--workers 1,2,4]
//! ```

use ego_bench::{eval_graph, header, row, timed, Scale};
use ego_query::Catalog;
use ego_server::{Client, Response, Server, ServerConfig, ShutdownHandle};
use ego_shard::{Router, RouterConfig, RouterShutdownHandle};
use std::net::SocketAddr;
use std::sync::Arc;

/// Per-client requests in a measured round.
const REQUESTS_PER_CLIENT: usize = 40;

fn main() {
    let scale = Scale::from_args();
    let (nodes, k) = match scale {
        Scale::Quick => (2_000, 1),
        Scale::Paper => (10_000, 1),
    };
    let graph = Arc::new(eval_graph(nodes, None, 4242));

    let config = ServerConfig {
        pool_threads: 8,
        exec_threads: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(
        ("127.0.0.1", 0),
        graph,
        Arc::new(Catalog::with_builtins()),
        config,
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let shared = server.shared().clone();
    let thread = std::thread::spawn(move || server.run().expect("run"));

    println!(
        "# serve_bench: req/s over loopback (BA n = {nodes}, clq3_unlb, k = {k}, \
         pool = 8, exec-threads = 1)\n"
    );
    header(&[
        "clients",
        "cold req/s",
        "shared req/s",
        "cached req/s",
        "views req/s",
        "cached/cold",
        "views/cold",
    ]);

    // Cold WHERE bounds and shared LIMIT bounds must each be globally
    // distinct across rounds or a later round would hit entries a
    // previous round inserted.
    let mut next_cold = 0usize;
    let mut next_shared = 0usize;

    for clients in [1usize, 4, 8] {
        let total = clients * REQUESTS_PER_CLIENT;

        // Cold: a unique WHERE bound per request gives each statement its
        // own focal set, which misses the census count cache (the count
        // key includes a focal-set fingerprint) as well as the result
        // cache. Bounds stay below nodes/2 so every focal set is large.
        let first = next_cold;
        next_cold += total;
        let (_, cold_secs) = timed(|| {
            run_clients(addr, clients, |client_id, i| {
                let j = (first + client_id * REQUESTS_PER_CLIENT + i) % (nodes / 2);
                format!(
                    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes \
                     WHERE ID >= {j} ORDER BY 2 DESC LIMIT 20"
                )
            })
        });

        // Shared: distinct statements (unique LIMIT) over one pattern /
        // radius / focal set. Result cache misses; census count cache
        // hits after the first. Warm that first entry outside the clock.
        {
            let mut c = Client::connect(addr).expect("connect");
            let warm = format!(
                "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes \
                 ORDER BY 2 DESC LIMIT 1"
            );
            expect_table(c.query(&warm).expect("warm shared"));
        }
        // LIMIT bounds are globally distinct across rounds (like the cold
        // side) so later rounds cannot result-cache-hit earlier rounds.
        let shared_first = next_shared;
        next_shared += total;
        let (_, shared_secs) = timed(|| {
            run_clients(addr, clients, |client_id, i| {
                let n = shared_first + client_id * REQUESTS_PER_CLIENT + i;
                format!(
                    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes \
                     ORDER BY 2 DESC LIMIT {}",
                    n + 2
                )
            })
        });

        // Cached: one statement, warmed once, repeated by everyone.
        let warm_sql =
            format!("SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes ORDER BY 2 DESC");
        {
            let mut c = Client::connect(addr).expect("connect");
            expect_table(c.query(&warm_sql).expect("warm"));
        }
        let (_, cached_secs) = timed(|| run_clients(addr, clients, |_, _| warm_sql.clone()));

        // Views: pin the full count vector, then re-run the cold shape
        // (globally distinct WHERE bounds → both caches miss on every
        // request) as pure view probes. Materialize and drop sit outside
        // the clock; the drop keeps the next round's cold run cold.
        {
            let mut c = Client::connect(addr).expect("connect");
            expect_table(
                c.materialize(&format!("MATERIALIZE clq3_unlb RADIUS {k}"))
                    .expect("materialize"),
            );
        }
        let views_first = next_cold;
        next_cold += total;
        let (_, views_secs) = timed(|| {
            run_clients(addr, clients, |client_id, i| {
                let j = (views_first + client_id * REQUESTS_PER_CLIENT + i) % (nodes / 2);
                format!(
                    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes \
                     WHERE ID >= {j} ORDER BY 2 DESC LIMIT 20"
                )
            })
        });
        {
            let mut c = Client::connect(addr).expect("connect");
            expect_table(
                c.drop_view(&format!("DROP VIEW clq3_unlb RADIUS {k}"))
                    .expect("drop view"),
            );
        }

        let cold_rps = total as f64 / cold_secs;
        let shared_rps = total as f64 / shared_secs;
        let cached_rps = total as f64 / cached_secs;
        let views_rps = total as f64 / views_secs;
        row(&[
            clients.to_string(),
            format!("{cold_rps:.0}"),
            format!("{shared_rps:.0}"),
            format!("{cached_rps:.0}"),
            format!("{views_rps:.0}"),
            format!("{:.0}x", cached_rps / cold_rps),
            format!("{:.0}x", views_rps / cold_rps),
        ]);
    }

    let cache = shared.cache_stats();
    println!(
        "\nresult cache: {} hits / {} misses / {} insertions, {} entries, {} KiB",
        cache.hits,
        cache.misses,
        cache.insertions,
        cache.entries,
        cache.bytes / 1024
    );
    let census = shared.census.stats();
    println!(
        "census cache: counts {} hits / {} misses ({} entries), \
         match lists {} hits / {} misses ({} entries)",
        census.count_hits,
        census.count_misses,
        census.count_entries,
        census.match_hits,
        census.match_misses,
        census.match_entries
    );
    assert!(
        census.count_hits as usize >= 3 * (REQUESTS_PER_CLIENT - 1),
        "shared workload should hit the census count cache"
    );
    assert!(
        census.match_hits > 0,
        "repeated pattern should hit the match-list cache"
    );
    let views = shared.views.stats();
    println!(
        "view tier: {} materializations / {} probe hits / {} drops, \
         {} entries, {} KiB pinned",
        views.materializations,
        views.hits,
        views.drops,
        views.entries,
        views.bytes / 1024
    );
    assert!(
        views.hits as usize >= 3 * REQUESTS_PER_CLIENT,
        "views workload should serve every request from the pinned view"
    );

    handle.shutdown();
    thread.join().expect("server thread");

    // --- sharded tier sweep ---
    println!(
        "\n# sharded tier: req/s through the router at 4 clients \
         (same graph; workers are in-process servers)"
    );
    println!("# caveat: on a 1-CPU host workers time-slice one core, so this");
    println!("# measures router overhead (scatter/merge/extra hop), not speedup\n");
    header(&["workers", "scatter req/s", "proxied cached req/s"]);
    let mut next_scatter = 0usize;
    for workers in workers_sweep_from_args() {
        let fleet = spawn_router_fleet(&graph_for_router(nodes), workers);
        let clients = 4usize;
        let total = clients * REQUESTS_PER_CLIENT;

        // Scattered: unique WHERE bound per request (single-table, no
        // ORDER BY/LIMIT → the router fans it out, one shard per worker).
        let first = next_scatter;
        next_scatter += total;
        let (_, scatter_secs) = timed(|| {
            run_clients(fleet.addr, clients, |client_id, i| {
                let j = (first + client_id * REQUESTS_PER_CLIENT + i) % (nodes / 2);
                format!(
                    "SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes \
                     WHERE ID >= {j}"
                )
            })
        });

        // Proxied + cached: ORDER BY forces whole-statement proxying;
        // after the warm round-robin lap every worker serves it from its
        // result cache, so this is the router's per-hop floor.
        let warm_sql =
            format!("SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, {k})) FROM nodes ORDER BY 2 DESC");
        {
            let mut c = Client::connect(fleet.addr).expect("connect");
            for _ in 0..workers {
                expect_table(c.query(&warm_sql).expect("warm"));
            }
        }
        let (_, cached_secs) = timed(|| run_clients(fleet.addr, clients, |_, _| warm_sql.clone()));

        row(&[
            workers.to_string(),
            format!("{:.0}", total as f64 / scatter_secs),
            format!("{:.0}", total as f64 / cached_secs),
        ]);
        fleet.stop();
    }
}

fn workers_sweep_from_args() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    for w in args.windows(2) {
        if w[0] == "--workers" {
            let sweep: Vec<usize> = w[1]
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect();
            if !sweep.is_empty() {
                return sweep;
            }
        }
    }
    vec![1, 2, 4]
}

/// One graph Arc shared by every worker in a fleet — the in-process
/// analogue of N processes mapping the same `.egb` file.
fn graph_for_router(nodes: usize) -> Arc<ego_graph::Graph> {
    Arc::new(eval_graph(nodes, None, 4242))
}

struct RouterFleet {
    addr: SocketAddr,
    worker_handles: Vec<ShutdownHandle>,
    router_handle: RouterShutdownHandle,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl RouterFleet {
    fn stop(self) {
        self.router_handle.shutdown();
        for h in &self.worker_handles {
            h.shutdown();
        }
        for t in self.threads {
            t.join().expect("fleet thread");
        }
    }
}

fn spawn_router_fleet(graph: &Arc<ego_graph::Graph>, workers: usize) -> RouterFleet {
    let mut worker_addrs = Vec::new();
    let mut worker_handles = Vec::new();
    let mut threads = Vec::new();
    for _ in 0..workers {
        let server = Server::bind(
            ("127.0.0.1", 0),
            graph.clone(),
            Arc::new(Catalog::with_builtins()),
            ServerConfig {
                pool_threads: 8,
                exec_threads: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind worker");
        worker_addrs.push(server.local_addr().expect("worker addr"));
        worker_handles.push(server.shutdown_handle());
        threads.push(std::thread::spawn(move || {
            server.run().expect("worker run")
        }));
    }
    let router = Router::bind(("127.0.0.1", 0), &worker_addrs, RouterConfig::default())
        .expect("bind router");
    let addr = router.local_addr().expect("router addr");
    let router_handle = router.shutdown_handle();
    threads.push(std::thread::spawn(move || {
        router.run().expect("router run")
    }));
    RouterFleet {
        addr,
        worker_handles,
        router_handle,
        threads,
    }
}

/// `clients` threads, each opening one connection and issuing
/// `REQUESTS_PER_CLIENT` queries produced by `sql(client_id, i)`.
fn run_clients(addr: SocketAddr, clients: usize, sql: impl Fn(usize, usize) -> String + Sync) {
    std::thread::scope(|scope| {
        for client_id in 0..clients {
            let sql = &sql;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..REQUESTS_PER_CLIENT {
                    expect_table(client.query(&sql(client_id, i)).expect("query"));
                }
            });
        }
    });
}

fn expect_table(resp: Response) {
    match resp {
        Response::Table(_) => {}
        Response::Error { message } => panic!("server error: {message}"),
        Response::Notify(_) => unreachable!("request() filters notify frames"),
    }
}
