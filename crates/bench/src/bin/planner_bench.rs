//! Planned vs forced census execution: the cost-based planner's pick
//! (`Algorithm::Auto` after `ANALYZE`) against every concrete algorithm
//! forced by hand, on a dense hub-heavy graph and a sparse ring — the
//! regimes where node-driven and pattern-driven evaluation trade
//! places. The planner is "good" when its wall time tracks the best
//! forced column on both graphs without being told which side wins.
//!
//! ```sh
//! cargo run --release -p ego-bench --bin planner_bench [-- --scale paper] [--threads N]
//! ```

use ego_bench::{eval_graph, fmt_secs, header, row, threads_from_args, timed, Scale};
use ego_graph::Graph;
use ego_query::{Algorithm, QueryEngine, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SQL: &str = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";

const FORCED: [Algorithm; 6] = [
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::NdBaseline,
    Algorithm::PtOpt,
    Algorithm::PtRandom,
    Algorithm::PtBaseline,
];

/// The algorithm the planner chose, read back out of `EXPLAIN`'s census
/// row (`algo=NdPivot (cost-model, stats=analyzed)`).
fn chosen(explain: &Table) -> String {
    for r in explain.rows() {
        if let ego_query::Value::Str(node) = &r[0] {
            if node.trim() == "census" {
                if let ego_query::Value::Str(detail) = &r[1] {
                    if let Some(rest) = detail.strip_prefix("algo=") {
                        return rest.split_whitespace().next().unwrap_or(rest).to_string();
                    }
                }
            }
        }
    }
    "?".to_string()
}

fn bench_graph(name: &str, g: &Graph, threads: usize) {
    let mut e = QueryEngine::with_builtins(g);
    e.catalog_mut()
        .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
        .unwrap();
    e.set_threads(threads);
    let (_, analyze_secs) = timed(|| e.analyze().unwrap());

    e.set_algorithm(Algorithm::Auto);
    let pick = chosen(&e.explain(SQL).unwrap());
    let (planned, planned_secs) = timed(|| e.execute(SQL).unwrap());

    println!(
        "## {name}: n = {}, m = {}, ANALYZE took {}, planner chose {pick}\n",
        g.num_nodes(),
        g.num_edges(),
        fmt_secs(analyze_secs)
    );
    header(&["execution", "wall time", "vs planned"]);
    row(&[
        format!("planned ({pick})"),
        fmt_secs(planned_secs),
        "1.00x".to_string(),
    ]);
    for algo in FORCED {
        e.set_algorithm(algo);
        let (forced, forced_secs) = timed(|| e.execute(SQL).unwrap());
        assert_eq!(forced, planned, "{algo:?} diverges from planned results");
        row(&[
            format!("forced {algo:?}"),
            fmt_secs(forced_secs),
            format!("{:.2}x", forced_secs / planned_secs.max(1e-9)),
        ]);
    }
    println!();
}

fn main() {
    let scale = Scale::from_args();
    let nodes = match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 50_000,
    };
    let threads = threads_from_args();
    println!(
        "# planner_bench: planned (ANALYZE + Auto) vs forced algorithms, threads = {threads}\n"
    );

    // Dense regime: BA hubs make neighborhoods large and triangle-rich;
    // the node-driven sweep should win and the planner should pick it.
    bench_graph(
        "dense (Barabási–Albert)",
        &eval_graph(nodes, None, 42),
        threads,
    );

    // Sparse regime: average degree 1 leaves almost no triangles, so
    // enumerating the few matches globally (pattern-driven) beats
    // sweeping every node's neighborhood.
    let mut rng = StdRng::seed_from_u64(42);
    let sparse = ego_datagen::erdos_renyi_gnm(nodes * 4, nodes * 2, &mut rng);
    bench_graph("sparse (Erdős–Rényi, avg degree 1)", &sparse, threads);
}
