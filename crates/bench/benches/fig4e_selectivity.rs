//! Criterion bench for Figure 4(e): node-driven cost grows with focal
//! selectivity; pattern-driven cost does not.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_bench::eval_graph;
use ego_census::{global_matches, nd_pivot, pt_opt, CensusSpec, FocalNodes, PtConfig};
use ego_graph::NodeId;
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let g = eval_graph(8_000, None, 777);
    let pattern = builtin::clq3_unlabeled();
    let matches = global_matches(&g, &pattern);

    let mut group = c.benchmark_group("fig4e_selectivity");
    group.sample_size(10);
    for r_pct in [20u32, 60, 100] {
        let focal: Vec<NodeId> = g
            .node_ids()
            .filter(|n| (n.0.wrapping_mul(2654435761)) % 100 < r_pct)
            .collect();
        let spec = CensusSpec::single(&pattern, 2).with_focal(FocalNodes::Set(focal));
        group.bench_with_input(BenchmarkId::new("ND-PVOT", r_pct), &spec, |b, spec| {
            b.iter(|| nd_pivot::run(&g, spec, &matches).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("PT-OPT", r_pct), &spec, |b, spec| {
            b.iter(|| pt_opt::run(&g, spec, &matches, &PtConfig::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
