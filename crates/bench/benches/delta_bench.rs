//! Incremental census under localized edge deltas vs a full recompute.
//!
//! A localized delta (a handful of edge insertions/deletions around one
//! region of the graph) dirties only the focal nodes whose k-hop
//! neighborhoods see a touched endpoint; the incremental engine
//! re-censuses those and splices the rest from the previous counts. This
//! binary sweeps delta batch sizes and reports the dirty-set size and
//! the incremental-vs-full wall-clock (the incremental time includes
//! CSR compaction, the dirty BFS, the restricted census, and the
//! splice). Counts are asserted bit-identical to the full recompute on
//! every row.

use ego_bench::{eval_graph, fmt_secs, header, row, threads_from_args, timed, Scale};
use ego_census::{run_census_exec, Algorithm, CensusSpec, ExecConfig, PtConfig};
use ego_dynamic::{update_census_exec, DeltaGraph};
use ego_graph::{neighborhood, Graph, NodeId};
use ego_pattern::builtin;
use std::sync::Arc;

/// Build a delta of `batch` edge mutations between peripheral nodes —
/// the "localized churn" workload. Endpoints are chosen by smallest
/// 2-hop ball (the ball *is* the blast radius a mutated endpoint
/// dirties at k = 2); in a scale-free graph low degree alone is not
/// enough, since most nodes sit one hop from a hub. Consecutive
/// small-ball nodes are paired up: an existing edge is deleted, a
/// missing one inserted.
fn localized_delta(g: &Arc<Graph>, batch: usize) -> DeltaGraph {
    let mut ranked: Vec<NodeId> = g.node_ids().collect();
    let sizes: Vec<usize> = ranked
        .iter()
        .map(|&n| neighborhood::khop_nodes(g, n, 2).len())
        .collect();
    ranked.sort_by_key(|n| sizes[n.index()]);
    let mut delta = DeltaGraph::new(g.clone());
    let mut done = 0usize;
    for pair in ranked.chunks(2) {
        if done >= batch || pair.len() < 2 {
            break;
        }
        let (a, b) = (pair[0], pair[1]);
        let changed = if g.has_undirected_edge(a, b) {
            delta.delete_edge(a, b).unwrap()
        } else {
            delta.insert_edge(a, b).unwrap()
        };
        if changed {
            done += 1;
        }
    }
    delta
}

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    let nodes = match scale {
        Scale::Quick => 20_000,
        Scale::Paper => 100_000,
    };
    let g = Arc::new(eval_graph(nodes, None, 99));
    let pattern = builtin::clq3_unlabeled();
    let spec = CensusSpec::single(&pattern, 2);
    let config = PtConfig::default();
    let exec = ExecConfig::with_threads(threads);
    let algorithm = Algorithm::NdPivot;

    println!("# delta_bench — incremental census vs full recompute");
    println!("scale: {scale:?}, threads: {threads}, pattern: clq3_unlb, k = 2, algorithm: ND-PVOT");
    let (previous, t_base) =
        timed(|| run_census_exec(&g, &spec, algorithm, &config, &exec).unwrap());
    println!(
        "base graph: {} nodes / {} edges; initial full census: {}",
        g.num_nodes(),
        g.num_edges(),
        fmt_secs(t_base)
    );
    println!();
    header(&[
        "delta edges",
        "dirty focal",
        "full recompute",
        "incremental",
        "speedup",
    ]);
    for batch in [1usize, 8, 64] {
        let delta = localized_delta(&g, batch);
        let (update, t_inc) = timed(|| {
            update_census_exec(&delta, &spec, &previous, algorithm, &config, &exec).unwrap()
        });
        let (full, t_full) =
            timed(|| run_census_exec(&update.graph, &spec, algorithm, &config, &exec).unwrap());
        assert_eq!(
            update.counts[0], full,
            "incremental must equal a full recompute"
        );
        row(&[
            format!("{}", delta.added().count() + delta.removed().count()),
            format!("{} / {}", update.stats.dirty_focal, g.num_nodes()),
            fmt_secs(t_full),
            fmt_secs(t_inc),
            format!("{:.1}x", t_full / t_inc),
        ]);
    }
}
