//! Incremental census under localized edge deltas vs a full recompute.
//!
//! A localized delta (a handful of edge insertions/deletions around one
//! region of the graph) dirties only the focal nodes whose k-hop
//! neighborhoods see a touched endpoint; the incremental engine
//! re-censuses those and splices the rest from the previous counts. This
//! binary sweeps delta batch sizes and reports the dirty-set size and
//! the incremental-vs-full wall-clock (the incremental time includes
//! CSR compaction, the dirty BFS, the restricted census, and the
//! splice). Counts are asserted bit-identical to the full recompute on
//! every row.

use ego_bench::{eval_graph, fmt_secs, header, row, threads_from_args, timed, Scale};
use ego_census::{run_census_exec, Algorithm, CensusSpec, ExecConfig, PtConfig};
use ego_dynamic::{update_census_exec, DeltaGraph};
use ego_graph::{neighborhood, Graph, NodeId};
use ego_pattern::builtin;
use std::sync::Arc;

/// Build a delta of `batch` edge mutations between peripheral nodes —
/// the "localized churn" workload. Endpoints are chosen by smallest
/// 2-hop ball (the ball *is* the blast radius a mutated endpoint
/// dirties at k = 2); in a scale-free graph low degree alone is not
/// enough, since most nodes sit one hop from a hub. Consecutive
/// small-ball nodes are paired up: an existing edge is deleted, a
/// missing one inserted.
fn localized_delta(g: &Arc<Graph>, batch: usize) -> DeltaGraph {
    let mut ranked: Vec<NodeId> = g.node_ids().collect();
    let sizes: Vec<usize> = ranked
        .iter()
        .map(|&n| neighborhood::khop_nodes(g, n, 2).len())
        .collect();
    ranked.sort_by_key(|n| sizes[n.index()]);
    let mut delta = DeltaGraph::new(g.clone());
    let mut done = 0usize;
    for pair in ranked.chunks(2) {
        if done >= batch || pair.len() < 2 {
            break;
        }
        let (a, b) = (pair[0], pair[1]);
        let changed = if g.has_undirected_edge(a, b) {
            delta.delete_edge(a, b).unwrap()
        } else {
            delta.insert_edge(a, b).unwrap()
        };
        if changed {
            done += 1;
        }
    }
    delta
}

/// `--subscribe`: sustained mutate+notify through the continuous
/// census. One standing query (`COUNTP(clq3_unlb, SUBGRAPH(ID, 2))`
/// over every node) is registered once, then localized delta batches
/// are applied in sequence; each update maintains the counts *and* the
/// global match list incrementally (survivor filtering + anchored
/// re-enumeration), so the fixed match-recompute cost that caps the
/// plain incremental path at ~1.5–1.9x is gone. Pushed rows are
/// asserted equal to the diff of full recomputes on every row.
fn run_subscribe_mode(g: Arc<Graph>, threads: usize) {
    use ego_census::run_census_exec;
    use ego_continuous::{diff_counts, ContinuousEngine};
    use ego_query::QueryEngine;

    let config = PtConfig::default();
    let exec = ExecConfig::with_threads(threads);
    let algorithm = Algorithm::NdPivot;
    let pattern = builtin::clq3_unlabeled();

    let spec = QueryEngine::with_builtins(&g)
        .compile_subscription("SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 2)) FROM nodes")
        .unwrap();
    let focal = spec.focal.clone();
    let eng = ContinuousEngine::new();
    let (_, t_sub) = timed(|| {
        eng.subscribe(&g, spec, 0, algorithm, &config, &exec)
            .unwrap()
    });
    println!(
        "base graph: {} nodes / {} edges; subscribe (initial full census): {}",
        g.num_nodes(),
        g.num_edges(),
        fmt_secs(t_sub)
    );
    println!();
    header(&[
        "delta edges",
        "rows pushed",
        "full recompute",
        "subscribed update",
        "speedup",
    ]);
    let mut base = g;
    let mut previous = eng.counts_of(1).unwrap();
    for (i, batch) in [1usize, 8, 64].into_iter().enumerate() {
        let delta = localized_delta(&base, batch);
        let new_graph = Arc::new(delta.compact());
        let generation = (i + 1) as u64;
        let (frames, t_inc) = timed(|| {
            eng.apply_update(&delta, &new_graph, generation, algorithm, &config, &exec)
                .unwrap()
        });
        let census_spec = CensusSpec::single(&pattern, 2);
        let (full, t_full) =
            timed(|| run_census_exec(&new_graph, &census_spec, algorithm, &config, &exec).unwrap());
        let expected = diff_counts(&focal, &previous, std::slice::from_ref(&full));
        assert_eq!(
            frames[0].rows, expected,
            "pushed rows must equal the full-recompute diff"
        );
        row(&[
            format!("{}", delta.added().count() + delta.removed().count()),
            format!("{} / {}", frames[0].rows.len(), base.num_nodes()),
            fmt_secs(t_full),
            fmt_secs(t_inc),
            format!("{:.1}x", t_full / t_inc),
        ]);
        previous = vec![full];
        base = new_graph;
    }
}

fn main() {
    let scale = Scale::from_args();
    let threads = threads_from_args();
    let nodes = match scale {
        Scale::Quick => 20_000,
        Scale::Paper => 100_000,
    };
    let g = Arc::new(eval_graph(nodes, None, 99));
    if std::env::args().any(|a| a == "--subscribe") {
        println!("# delta_bench --subscribe — continuous census: sustained mutate+notify");
        println!(
            "scale: {scale:?}, threads: {threads}, pattern: clq3_unlb, k = 2, algorithm: ND-PVOT"
        );
        run_subscribe_mode(g, threads);
        return;
    }
    let pattern = builtin::clq3_unlabeled();
    let spec = CensusSpec::single(&pattern, 2);
    let config = PtConfig::default();
    let exec = ExecConfig::with_threads(threads);
    let algorithm = Algorithm::NdPivot;

    println!("# delta_bench — incremental census vs full recompute");
    println!("scale: {scale:?}, threads: {threads}, pattern: clq3_unlb, k = 2, algorithm: ND-PVOT");
    let (previous, t_base) =
        timed(|| run_census_exec(&g, &spec, algorithm, &config, &exec).unwrap());
    println!(
        "base graph: {} nodes / {} edges; initial full census: {}",
        g.num_nodes(),
        g.num_edges(),
        fmt_secs(t_base)
    );
    println!();
    header(&[
        "delta edges",
        "dirty focal",
        "full recompute",
        "incremental",
        "speedup",
    ]);
    for batch in [1usize, 8, 64] {
        let delta = localized_delta(&g, batch);
        let (update, t_inc) = timed(|| {
            update_census_exec(&delta, &spec, &previous, algorithm, &config, &exec).unwrap()
        });
        let (full, t_full) =
            timed(|| run_census_exec(&update.graph, &spec, algorithm, &config, &exec).unwrap());
        assert_eq!(
            update.counts[0], full,
            "incremental must equal a full recompute"
        );
        row(&[
            format!("{}", delta.added().count() + delta.removed().count()),
            format!("{} / {}", update.stats.dirty_focal, g.num_nodes()),
            fmt_secs(t_full),
            fmt_secs(t_inc),
            format!("{:.1}x", t_full / t_inc),
        ]);
    }
}
