//! Criterion bench for Figure 4(h): one pairwise census measure per
//! structure on a small synthetic DBLP dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_census::{run_pair_census, Algorithm, PairCensusSpec, PairSelector};
use ego_datagen::dblp::{self, DblpConfig};
use ego_datagen::rng;
use ego_linkpred::measures::{candidate_pairs, MeasureKind};

fn bench(c: &mut Criterion) {
    let data = dblp::generate(
        &DblpConfig {
            num_authors: 400,
            num_communities: 12,
            papers_per_year: 100,
            ..Default::default()
        },
        &mut rng(2001),
    );
    let g = &data.train;

    let mut group = c.benchmark_group("fig4h_pairwise_measures");
    group.sample_size(10);
    for kind in [MeasureKind::Node, MeasureKind::Edge, MeasureKind::Triangle] {
        let pattern = kind.pattern();
        let pairs = candidate_pairs(g, 2);
        let spec = PairCensusSpec::intersection(&pattern, 2, PairSelector::Pairs(pairs));
        group.bench_with_input(
            BenchmarkId::new("ND-PVOT", kind.name()),
            &spec,
            |b, spec| b.iter(|| run_pair_census(g, spec, Algorithm::NdPivot).unwrap()),
        );
        if kind == MeasureKind::Triangle {
            group.bench_with_input(BenchmarkId::new("PT-OPT", kind.name()), &spec, |b, spec| {
                b.iter(|| run_pair_census(g, spec, Algorithm::PtOpt).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
