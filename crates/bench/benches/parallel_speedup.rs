//! Parallel extensions vs their sequential counterparts: CN match
//! enumeration sharded over first-level candidates, and ND-PVOT census
//! sharded over focal nodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_bench::eval_graph;
use ego_census::{global_matches, nd_pivot, parallel, CensusSpec};
use ego_matcher::{find_embeddings, parallel::enumerate_parallel, MatcherKind};
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let g = eval_graph(20_000, Some(4), 99);
    let pattern = builtin::clq3();

    let mut group = c.benchmark_group("parallel_matcher");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| find_embeddings(&g, &pattern, MatcherKind::CandidateNeighbors))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| enumerate_parallel(&g, &pattern, t))
        });
    }
    group.finish();

    let matches = global_matches(&g, &pattern);
    let spec = CensusSpec::single(&pattern, 2);
    let mut group = c.benchmark_group("parallel_census");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| nd_pivot::run(&g, &spec, &matches).unwrap())
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| parallel::run_nd_pivot_parallel(&g, &spec, &matches, t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
