//! Criterion bench for Figure 4(c): census algorithms on the unselective
//! unlabeled triangle (node-driven should win).

use criterion::{criterion_group, criterion_main, Criterion};
use ego_bench::eval_graph;
use ego_census::{global_matches, nd_diff, nd_pivot, pt_bas, pt_opt, CensusSpec, PtConfig};
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let g = eval_graph(4_000, None, 777);
    let pattern = builtin::clq3_unlabeled();
    let spec = CensusSpec::single(&pattern, 2);
    let matches = global_matches(&g, &pattern);

    let mut group = c.benchmark_group("fig4c_unlabeled_census");
    group.sample_size(10);
    group.bench_function("ND-PVOT", |b| {
        b.iter(|| nd_pivot::run(&g, &spec, &matches).unwrap())
    });
    group.bench_function("ND-DIFF", |b| {
        b.iter(|| nd_diff::run(&g, &spec, &matches).unwrap())
    });
    group.bench_function("PT-BAS", |b| {
        b.iter(|| pt_bas::run(&g, &spec, &matches).unwrap())
    });
    group.bench_function("PT-OPT", |b| {
        b.iter(|| pt_opt::run(&g, &spec, &matches, &PtConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
