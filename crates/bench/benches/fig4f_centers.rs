//! Criterion bench for Figure 4(f): effect of center count and strategy
//! on PT-OPT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_bench::eval_graph;
use ego_census::{global_matches, pt_opt, CensusSpec, CenterStrategy, PtConfig};
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let g = eval_graph(20_000, Some(4), 777);
    let pattern = builtin::clq3();
    let spec = CensusSpec::single(&pattern, 2);
    let matches = global_matches(&g, &pattern);

    let mut group = c.benchmark_group("fig4f_centers");
    group.sample_size(10);
    for centers in [0usize, 12, 24] {
        for (name, strategy) in [
            ("DEG", CenterStrategy::Degree),
            ("RND", CenterStrategy::Random),
        ] {
            let cfg = PtConfig {
                num_centers: centers,
                center_strategy: strategy,
                clustering_centers: Some(12),
                ..PtConfig::default()
            };
            group.bench_with_input(BenchmarkId::new(name, centers), &cfg, |b, cfg| {
                b.iter(|| pt_opt::run(&g, &spec, &matches, cfg).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
