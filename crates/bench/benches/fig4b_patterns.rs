//! Criterion bench for Figure 4(b): CN vs GQL across the Figure 3
//! patterns on one labeled graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_bench::eval_graph;
use ego_matcher::{find_matches, MatcherKind};
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let g = eval_graph(10_000, Some(4), 4242);
    let mut group = c.benchmark_group("fig4b_patterns");
    group.sample_size(10);
    for pattern in [
        builtin::path3(),
        builtin::clq3(),
        builtin::clq4(),
        builtin::sqr(),
    ] {
        group.bench_with_input(BenchmarkId::new("CN", pattern.name()), &pattern, |b, p| {
            b.iter(|| find_matches(&g, p, MatcherKind::CandidateNeighbors))
        });
        group.bench_with_input(BenchmarkId::new("GQL", pattern.name()), &pattern, |b, p| {
            b.iter(|| find_matches(&g, p, MatcherKind::GqlStyle))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
