//! Microbenchmarks for the substrate hot paths: BFS neighborhoods,
//! profile index construction, sorted intersection, and the bucket queue.

use criterion::{criterion_group, criterion_main, Criterion};
use ego_bench::eval_graph;
use ego_census::bucket_queue::BucketQueue;
use ego_graph::bfs::BfsScratch;
use ego_graph::profile::ProfileIndex;
use ego_graph::{neighborhood, NodeId};

fn bench(c: &mut Criterion) {
    let g = eval_graph(50_000, Some(4), 99);

    c.bench_function("bfs_2hop_from_hub", |b| {
        let hub = g.top_degree_nodes(1)[0];
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            scratch.bounded_bfs(&g, hub, 2, &mut out);
            out.len()
        })
    });

    c.bench_function("profile_index_build", |b| {
        b.iter(|| ProfileIndex::build(&g))
    });

    c.bench_function("sorted_intersection", |b| {
        let a: Vec<NodeId> = (0..20_000u32).step_by(2).map(NodeId).collect();
        let d: Vec<NodeId> = (0..20_000u32).step_by(3).map(NodeId).collect();
        b.iter(|| neighborhood::intersect_sorted(&a, &d).len())
    });

    c.bench_function("bucket_queue_churn", |b| {
        b.iter(|| {
            let mut q = BucketQueue::new(64);
            for i in 0..10_000u32 {
                q.push((i % 64) as usize, i);
            }
            let mut sum = 0u64;
            while let Some((s, _)) = q.pop_min() {
                sum += s as u64;
            }
            sum
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
