//! Microbenchmarks for the substrate hot paths: BFS neighborhoods,
//! profile index construction, sorted intersection, and the bucket queue.

use criterion::{criterion_group, criterion_main, Criterion};
use ego_bench::eval_graph;
use ego_census::bucket_queue::BucketQueue;
use ego_graph::bfs::BfsScratch;
use ego_graph::profile::ProfileIndex;
use ego_graph::setops::{gallop_into, merge_into, NodeBitset};
use ego_graph::{neighborhood, NodeId};

/// Sorted list of `len` ids spread over `universe` with the given stride.
fn strided(len: usize, stride: u32) -> Vec<NodeId> {
    (0..len as u32).map(|i| NodeId(i * stride)).collect()
}

fn bench(c: &mut Criterion) {
    let g = eval_graph(50_000, Some(4), 99);

    c.bench_function("bfs_2hop_from_hub", |b| {
        let hub = g.top_degree_nodes(1)[0];
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            scratch.bounded_bfs(&g, hub, 2, &mut out);
            out.len()
        })
    });

    c.bench_function("profile_index_build", |b| {
        b.iter(|| ProfileIndex::build(&g))
    });

    c.bench_function("sorted_intersection", |b| {
        let a: Vec<NodeId> = (0..20_000u32).step_by(2).map(NodeId).collect();
        let d: Vec<NodeId> = (0..20_000u32).step_by(3).map(NodeId).collect();
        b.iter(|| neighborhood::intersect_sorted(&a, &d).len())
    });

    // Kernel comparison across size ratios: merge is linear in both list
    // lengths; gallop is O(s log(l/s)); a prebuilt bitset filters in
    // O(s). The adaptive dispatcher's GALLOP_RATIO threshold sits where
    // the merge and gallop curves cross.
    for ratio in [1usize, 10, 100, 1000] {
        let short = strided(10_000 / ratio.max(1), 7 * ratio as u32);
        let long = strided(10_000, 7);
        let mut out = Vec::with_capacity(short.len());

        c.bench_function(format!("setops_merge_1to{ratio}"), |b| {
            b.iter(|| {
                merge_into(&short, &long, &mut out);
                out.len()
            })
        });
        c.bench_function(format!("setops_gallop_1to{ratio}"), |b| {
            b.iter(|| {
                gallop_into(&short, &long, &mut out);
                out.len()
            })
        });
        c.bench_function(format!("setops_bitset_1to{ratio}"), |b| {
            let bits = NodeBitset::from_sorted(70_001, &long);
            b.iter(|| {
                bits.filter_into(&short, &mut out);
                out.len()
            })
        });
    }

    c.bench_function("bucket_queue_churn", |b| {
        b.iter(|| {
            let mut q = BucketQueue::new(64);
            for i in 0..10_000u32 {
                q.push((i % 64) as usize, i);
            }
            let mut sum = 0u64;
            while let Some((s, _)) = q.pop_min() {
                sum += s as u64;
            }
            sum
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
