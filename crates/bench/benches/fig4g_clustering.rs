//! Criterion bench for Figure 4(g): clustering strategy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_bench::eval_graph;
use ego_census::{global_matches, pt_opt, CensusSpec, Clustering, PtConfig};
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let g = eval_graph(20_000, Some(4), 777);
    let pattern = builtin::clq3();
    let spec = CensusSpec::single(&pattern, 2);
    let matches = global_matches(&g, &pattern);

    let mut group = c.benchmark_group("fig4g_clustering");
    group.sample_size(10);
    let k = (matches.len() / 4).max(1);
    for (name, strategy) in [
        ("NO-CLUST", Clustering::None),
        ("RND-CLUST", Clustering::Random(k)),
        ("OPT-CLUST", Clustering::KMeans(k)),
    ] {
        let cfg = PtConfig {
            clustering: strategy,
            ..PtConfig::default()
        };
        group.bench_with_input(BenchmarkId::new(name, k), &cfg, |b, cfg| {
            b.iter(|| pt_opt::run(&g, &spec, &matches, cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
