//! Criterion bench for Figure 4(a): CN vs GQL matching across graph
//! sizes (reduced sizes; the `fig4a` binary runs the full sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ego_bench::eval_graph;
use ego_matcher::{find_matches, MatcherKind};
use ego_pattern::builtin;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4a_cn_vs_gql");
    group.sample_size(10);
    for &n in &[5_000usize, 10_000, 20_000] {
        let g = eval_graph(n, Some(4), 4242);
        let clq3 = builtin::clq3();
        group.bench_with_input(BenchmarkId::new("CN/clq3", n), &g, |b, g| {
            b.iter(|| find_matches(g, &clq3, MatcherKind::CandidateNeighbors))
        });
        group.bench_with_input(BenchmarkId::new("GQL/clq3", n), &g, |b, g| {
            b.iter(|| find_matches(g, &clq3, MatcherKind::GqlStyle))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
