//! The query patterns of the paper's evaluation (Figure 3 and Table I).
//!
//! Figure 3 is reproduced from its textual description: `clq3-unlb`
//! (unlabeled triangle), `clq3` (labeled triangle), `clq4` (labeled
//! 4-clique), and `sqr` (labeled square), plus `path3` and `star3` for
//! wider pattern coverage. Labeled variants pin each node to a label from
//! the 4-label alphabet used in the synthetic experiments.

use crate::model::Pattern;
use ego_graph::Label;

/// Unlabeled triangle (`clq3-unlb`).
pub fn clq3_unlabeled() -> Pattern {
    Pattern::parse("PATTERN clq3_unlb { ?A-?B; ?B-?C; ?A-?C; }").expect("builtin parses")
}

/// Labeled triangle (`clq3`): labels 0, 1, 2.
pub fn clq3() -> Pattern {
    let mut b = Pattern::builder("clq3");
    let a = b.node("A");
    let c = b.node("B");
    let d = b.node("C");
    b.edge(a, c).edge(c, d).edge(a, d);
    b.label(a, Label(0)).label(c, Label(1)).label(d, Label(2));
    b.build()
}

/// Labeled 4-clique (`clq4`): labels 0, 1, 2, 3.
pub fn clq4() -> Pattern {
    let mut b = Pattern::builder("clq4");
    let n: Vec<_> = ["A", "B", "C", "D"].iter().map(|v| b.node(v)).collect();
    for i in 0..4 {
        for j in (i + 1)..4 {
            b.edge(n[i], n[j]);
        }
        b.label(n[i], Label(i as u16));
    }
    b.build()
}

/// Unlabeled 4-clique.
pub fn clq4_unlabeled() -> Pattern {
    Pattern::parse("PATTERN clq4_unlb { ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; }")
        .expect("builtin parses")
}

/// Labeled square (`sqr`): a 4-cycle with labels 0, 1, 0, 1.
pub fn sqr() -> Pattern {
    let mut b = Pattern::builder("sqr");
    let a = b.node("A");
    let c = b.node("B");
    let d = b.node("C");
    let e = b.node("D");
    b.edge(a, c).edge(c, d).edge(d, e).edge(e, a);
    b.label(a, Label(0)).label(c, Label(1));
    b.label(d, Label(0)).label(e, Label(1));
    b.build()
}

/// Unlabeled square (4-cycle).
pub fn sqr_unlabeled() -> Pattern {
    Pattern::parse("PATTERN sqr_unlb { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").expect("builtin parses")
}

/// Labeled path of 3 nodes: labels 0-1-2.
pub fn path3() -> Pattern {
    let mut b = Pattern::builder("path3");
    let a = b.node("A");
    let c = b.node("B");
    let d = b.node("C");
    b.edge(a, c).edge(c, d);
    b.label(a, Label(0)).label(c, Label(1)).label(d, Label(2));
    b.build()
}

/// Labeled 3-star: center label 0 with three leaves labeled 1, 2, 3.
pub fn star3() -> Pattern {
    let mut b = Pattern::builder("star3");
    let hub = b.node("H");
    b.label(hub, Label(0));
    for (i, v) in ["A", "B", "C"].iter().enumerate() {
        let leaf = b.node(v);
        b.edge(hub, leaf);
        b.label(leaf, Label(i as u16 + 1));
    }
    b.build()
}

/// Table I row 1: a single node.
pub fn single_node() -> Pattern {
    Pattern::parse("PATTERN single_node { ?A; }").expect("builtin parses")
}

/// Table I row 2: a single undirected edge.
pub fn single_edge() -> Pattern {
    Pattern::parse("PATTERN single_edge { ?A-?B; }").expect("builtin parses")
}

/// Table I row 4: the coordinator brokerage triad — `A -> B -> C` with no
/// `A -> C` edge, all three nodes sharing a label, censused on the middle
/// node via the `coordinator` subpattern.
pub fn coordinator_triad() -> Pattern {
    Pattern::parse(
        "PATTERN triad {
            ?A->?B; ?B->?C; ?A!->?C;
            [?A.LABEL=?B.LABEL];
            [?B.LABEL=?C.LABEL];
            SUBPATTERN coordinator {?B;}
        }",
    )
    .expect("builtin parses")
}

/// Structural-balance pattern: a triangle with an odd number of negative
/// signs is unstable. This variant matches triangles whose three edges all
/// carry `sign = -1`.
pub fn all_negative_triangle() -> Pattern {
    Pattern::parse(
        "PATTERN unstable3 {
            ?A-?B; ?B-?C; ?A-?C;
            [EDGE(?A,?B).sign=-1];
            [EDGE(?B,?C).sign=-1];
            [EDGE(?A,?C).sign=-1];
        }",
    )
    .expect("builtin parses")
}

/// Figure 1(a): two couples that are friends with each other. `spouse`
/// edges within couples, `friend` edges across, modeled with edge
/// attributes `rel`.
pub fn couples_square() -> Pattern {
    Pattern::parse(
        "PATTERN couples {
            ?A-?B; ?C-?D; ?A-?C; ?B-?D;
            [EDGE(?A,?B).rel='spouse'];
            [EDGE(?C,?D).rel='spouse'];
            [EDGE(?A,?C).rel='friend'];
            [EDGE(?B,?D).rel='friend'];
        }",
    )
    .expect("builtin parses")
}

/// All Figure 3 patterns by their paper names.
pub fn figure3() -> Vec<Pattern> {
    vec![clq3_unlabeled(), clq3(), clq4(), sqr(), path3(), star3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_construct() {
        for p in figure3() {
            assert!(p.num_nodes() >= 3);
            assert!(p.is_connected());
        }
        assert_eq!(single_node().num_nodes(), 1);
        assert_eq!(single_edge().num_nodes(), 2);
    }

    #[test]
    fn labeled_variants_are_labeled() {
        assert!(!clq3_unlabeled().is_labeled());
        assert!(clq3().is_labeled());
        assert!(clq4().is_labeled());
        assert!(sqr().is_labeled());
        assert!(path3().is_labeled());
        assert!(star3().is_labeled());
    }

    #[test]
    fn coordinator_triad_shape() {
        let p = coordinator_triad();
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.positive_edges().len(), 2);
        assert_eq!(p.negative_edges().len(), 1);
        assert!(p.subpattern("coordinator").is_some());
    }

    #[test]
    fn clique_edge_counts() {
        assert_eq!(clq4().positive_edges().len(), 6);
        assert_eq!(clq4_unlabeled().positive_edges().len(), 6);
        assert_eq!(sqr().positive_edges().len(), 4);
    }

    #[test]
    fn signed_triangle_predicates() {
        assert_eq!(all_negative_triangle().edge_predicates().len(), 3);
    }

    #[test]
    fn couples_square_shape() {
        let p = couples_square();
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.positive_edges().len(), 4);
        assert_eq!(p.edge_predicates().len(), 4);
    }
}
