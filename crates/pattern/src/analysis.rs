//! Pattern analyses used by the census algorithms.
//!
//! * All-pairs distances `d(v, v')` over positive edges (treated as
//!   undirected), used by the distance shortcuts of both ND-PVOT
//!   (Section IV-A1) and PT-OPT (Section IV-B2).
//! * Eccentricity `max_v` and pivot selection
//!   `v = argmin_x d(x, argmax_y d(x, y))` (the pattern's center).
//! * The `distant[i]` sets of Algorithm 2: pattern nodes at distance ≥ i
//!   from the pivot, whose images require explicit containment checks.

use crate::model::{PNode, Pattern};

/// Distance marker for disconnected pattern node pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Precomputed structural facts about a pattern.
#[derive(Clone, Debug)]
pub struct PatternAnalysis {
    n: usize,
    /// Row-major `n × n` distance matrix over positive edges.
    dist: Vec<u32>,
    /// The chosen pivot (pattern center).
    pivot: PNode,
    /// Eccentricity of the pivot: distance to the farthest pattern node.
    max_v: u32,
}

impl PatternAnalysis {
    /// Analyze `p`. For subpattern queries, pass
    /// [`PatternAnalysis::with_pivot_candidates`] instead so the pivot is
    /// drawn from the subpattern's nodes (Appendix B).
    pub fn new(p: &Pattern) -> Self {
        Self::with_pivot_candidates(p, None)
    }

    /// Analyze `p`, restricting pivot selection to `pivot_candidates`
    /// when provided (used for COUNTSP: "the pivot is selected from the
    /// set of subpattern nodes").
    pub fn with_pivot_candidates(p: &Pattern, pivot_candidates: Option<&[PNode]>) -> Self {
        let n = p.num_nodes();
        let mut dist = vec![UNREACHABLE; n * n];
        // BFS from every node; patterns are tiny so O(n * (n + e)) is free.
        let mut queue = Vec::with_capacity(n);
        for s in p.nodes() {
            let row = s.index() * n;
            dist[row + s.index()] = 0;
            queue.clear();
            queue.push(s);
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                let d = dist[row + v.index()];
                for w in p.neighbors(v) {
                    if dist[row + w.index()] == UNREACHABLE {
                        dist[row + w.index()] = d + 1;
                        queue.push(w);
                    }
                }
            }
        }
        let ecc = |x: PNode| -> u32 { (0..n).map(|j| dist[x.index() * n + j]).max().unwrap_or(0) };
        let candidates: Vec<PNode> = match pivot_candidates {
            Some(c) if !c.is_empty() => c.to_vec(),
            _ => p.nodes().collect(),
        };
        let pivot = candidates
            .iter()
            .copied()
            .min_by_key(|&x| (ecc(x), x))
            .expect("pattern has at least one node");
        let max_v = ecc(pivot);
        PatternAnalysis {
            n,
            dist,
            pivot,
            max_v,
        }
    }

    /// Distance between two pattern nodes ([`UNREACHABLE`] if disconnected).
    #[inline]
    pub fn distance(&self, a: PNode, b: PNode) -> u32 {
        self.dist[a.index() * self.n + b.index()]
    }

    /// The selected pivot node.
    #[inline]
    pub fn pivot(&self) -> PNode {
        self.pivot
    }

    /// The pivot's eccentricity (`max_v` in the paper).
    #[inline]
    pub fn max_v(&self) -> u32 {
        self.max_v
    }

    /// Pattern nodes at distance ≥ `i` from the pivot — Algorithm 2's
    /// `distant[i]`. When a match is found through a database node `n'` at
    /// distance `d(n, n')` from the ego, only the images of
    /// `distant[k - d(n,n') + 1]` can fall outside `S(n, k)` and need an
    /// explicit check.
    pub fn distant_from_pivot(&self, i: u32) -> Vec<PNode> {
        (0..self.n)
            .map(PNode::from_index)
            .filter(|&v| {
                let d = self.distance(self.pivot, v);
                d == UNREACHABLE || d >= i
            })
            .collect()
    }

    /// Eccentricity of an arbitrary node.
    pub fn eccentricity(&self, v: PNode) -> u32 {
        (0..self.n)
            .map(|j| self.dist[v.index() * self.n + j])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Pattern;

    /// Path A-B-C-D.
    fn path4() -> Pattern {
        Pattern::parse("PATTERN p { ?A-?B; ?B-?C; ?C-?D; }").unwrap()
    }

    #[test]
    fn distances() {
        let p = path4();
        let a = PatternAnalysis::new(&p);
        let n = |s: &str| p.node_by_name(s).unwrap();
        assert_eq!(a.distance(n("A"), n("A")), 0);
        assert_eq!(a.distance(n("A"), n("B")), 1);
        assert_eq!(a.distance(n("A"), n("D")), 3);
        assert_eq!(a.distance(n("D"), n("A")), 3);
    }

    #[test]
    fn pivot_is_center() {
        let p = path4();
        let a = PatternAnalysis::new(&p);
        // Centers of a path of 4 are B and C (ecc 2); tie broken to lower id (B).
        assert_eq!(a.pivot(), p.node_by_name("B").unwrap());
        assert_eq!(a.max_v(), 2);
    }

    #[test]
    fn triangle_pivot_ecc_one() {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let a = PatternAnalysis::new(&p);
        assert_eq!(a.max_v(), 1);
        assert_eq!(a.eccentricity(p.node_by_name("C").unwrap()), 1);
    }

    #[test]
    fn single_node_pattern() {
        let p = Pattern::parse("PATTERN one { ?A; }").unwrap();
        let a = PatternAnalysis::new(&p);
        assert_eq!(a.pivot(), p.node_by_name("A").unwrap());
        assert_eq!(a.max_v(), 0);
        assert_eq!(a.distant_from_pivot(1), vec![]);
    }

    #[test]
    fn distant_sets() {
        let p = path4();
        let a = PatternAnalysis::new(&p);
        // Pivot is B; distances: A=1, B=0, C=1, D=2.
        let names = |nodes: Vec<PNode>| -> Vec<String> {
            nodes.iter().map(|&v| p.var_name(v).to_string()).collect()
        };
        assert_eq!(names(a.distant_from_pivot(0)), vec!["A", "B", "C", "D"]);
        assert_eq!(names(a.distant_from_pivot(1)), vec!["A", "C", "D"]);
        assert_eq!(names(a.distant_from_pivot(2)), vec!["D"]);
        assert_eq!(names(a.distant_from_pivot(3)), Vec::<String>::new());
    }

    #[test]
    fn pivot_candidates_restrict_choice() {
        let p = path4();
        let d = p.node_by_name("D").unwrap();
        let a = PatternAnalysis::with_pivot_candidates(&p, Some(&[d]));
        assert_eq!(a.pivot(), d);
        assert_eq!(a.max_v(), 3);
    }

    #[test]
    fn disconnected_pattern_distances() {
        let p = Pattern::parse("PATTERN p { ?A-?B; ?C; }").unwrap();
        let a = PatternAnalysis::new(&p);
        let c = p.node_by_name("C").unwrap();
        let b = p.node_by_name("B").unwrap();
        assert_eq!(a.distance(b, c), UNREACHABLE);
        // Disconnected nodes are always "distant".
        assert!(a.distant_from_pivot(10).contains(&c) || a.pivot() == c);
    }
}
