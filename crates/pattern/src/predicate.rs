//! Predicates over pattern node and edge attributes.
//!
//! Following the paper's footnote 1, `?X.LABEL = const` predicates are
//! folded into node label constraints and pushed into candidate
//! enumeration; everything else (join predicates like
//! `?A.LABEL = ?B.LABEL`, general attribute comparisons, negation) is
//! evaluated as a final filtering step over candidate embeddings.

use crate::model::PNode;
use ego_graph::{AttrValue, Graph, NodeId};
use std::fmt;

/// Comparison operators supported in predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering result.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Right-hand side of a node predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum PredRhs {
    /// A literal value.
    Const(AttrValue),
    /// Another pattern node's attribute (a join predicate).
    NodeAttr(PNode, String),
}

/// A predicate `?X.attr OP rhs`. The pseudo-attribute `LABEL` refers to
/// the node's label.
#[derive(Clone, Debug, PartialEq)]
pub struct NodePredicate {
    /// The constrained pattern node.
    pub node: PNode,
    /// Attribute name (`LABEL` for the label).
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: PredRhs,
}

/// A predicate `EDGE(?A,?B).attr OP const` over an edge attribute between
/// the images of two pattern nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgePredicate {
    /// First endpoint.
    pub a: PNode,
    /// Second endpoint.
    pub b: PNode,
    /// Edge attribute name.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub rhs: AttrValue,
}

/// Is `attr` the label pseudo-attribute?
pub fn is_label_attr(attr: &str) -> bool {
    attr.eq_ignore_ascii_case("LABEL")
}

/// Fetch the value of `attr` on database node `n` — the label (as an Int)
/// for `LABEL`, otherwise the stored attribute.
pub fn node_attr_value(g: &Graph, n: NodeId, attr: &str) -> Option<AttrValue> {
    if is_label_attr(attr) {
        Some(AttrValue::Int(g.label(n).0 as i64))
    } else {
        g.node_attr(n, attr).cloned()
    }
}

impl NodePredicate {
    /// Evaluate against an embedding `assignment[v.index()]` = image of `v`.
    /// A missing attribute fails the predicate (SQL-like NULL semantics:
    /// comparisons with NULL are not true).
    pub fn eval(&self, g: &Graph, assignment: &[NodeId]) -> bool {
        let lhs = match node_attr_value(g, assignment[self.node.index()], &self.attr) {
            Some(v) => v,
            None => return false,
        };
        let rhs = match &self.rhs {
            PredRhs::Const(v) => v.clone(),
            PredRhs::NodeAttr(other, attr) => {
                match node_attr_value(g, assignment[other.index()], attr) {
                    Some(v) => v,
                    None => return false,
                }
            }
        };
        match lhs.partial_cmp_loose(&rhs) {
            Some(ord) => self.op.eval(ord),
            None => false,
        }
    }
}

impl EdgePredicate {
    /// Evaluate against an embedding.
    pub fn eval(&self, g: &Graph, assignment: &[NodeId]) -> bool {
        let na = assignment[self.a.index()];
        let nb = assignment[self.b.index()];
        let lhs = match g.edge_attr(na, nb, &self.attr) {
            Some(v) => v.clone(),
            None => return false,
        };
        match lhs.partial_cmp_loose(&self.rhs) {
            Some(ord) => self.op.eval(ord),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    fn two_nodes() -> Graph {
        let mut b = GraphBuilder::undirected();
        let a = b.add_node(Label(1));
        let c = b.add_node(Label(1));
        b.add_edge(a, c);
        b.set_node_attr(a, "age", 30i64);
        b.set_node_attr(c, "age", 40i64);
        b.set_edge_attr(a, c, "sign", -1i64);
        b.build()
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Lt.eval(Less));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Gt.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
        assert!(!CmpOp::Ge.eval(Less));
    }

    #[test]
    fn label_pseudo_attribute() {
        let g = two_nodes();
        let pred = NodePredicate {
            node: PNode(0),
            attr: "LABEL".into(),
            op: CmpOp::Eq,
            rhs: PredRhs::Const(AttrValue::Int(1)),
        };
        assert!(pred.eval(&g, &[NodeId(0), NodeId(1)]));
        let pred_ne = NodePredicate {
            node: PNode(0),
            attr: "label".into(),
            op: CmpOp::Eq,
            rhs: PredRhs::Const(AttrValue::Int(2)),
        };
        assert!(!pred_ne.eval(&g, &[NodeId(0), NodeId(1)]));
    }

    #[test]
    fn join_predicate_on_labels() {
        let g = two_nodes();
        let pred = NodePredicate {
            node: PNode(0),
            attr: "LABEL".into(),
            op: CmpOp::Eq,
            rhs: PredRhs::NodeAttr(PNode(1), "LABEL".into()),
        };
        assert!(pred.eval(&g, &[NodeId(0), NodeId(1)]));
    }

    #[test]
    fn attribute_comparison() {
        let g = two_nodes();
        let pred = NodePredicate {
            node: PNode(0),
            attr: "age".into(),
            op: CmpOp::Lt,
            rhs: PredRhs::NodeAttr(PNode(1), "age".into()),
        };
        assert!(pred.eval(&g, &[NodeId(0), NodeId(1)]));
        assert!(!pred.eval(&g, &[NodeId(1), NodeId(0)]));
    }

    #[test]
    fn missing_attribute_fails() {
        let g = two_nodes();
        let pred = NodePredicate {
            node: PNode(0),
            attr: "height".into(),
            op: CmpOp::Eq,
            rhs: PredRhs::Const(AttrValue::Int(1)),
        };
        assert!(!pred.eval(&g, &[NodeId(0), NodeId(1)]));
    }

    #[test]
    fn incomparable_types_fail() {
        let g = two_nodes();
        let pred = NodePredicate {
            node: PNode(0),
            attr: "age".into(),
            op: CmpOp::Eq,
            rhs: PredRhs::Const(AttrValue::Str("thirty".into())),
        };
        assert!(!pred.eval(&g, &[NodeId(0), NodeId(1)]));
    }

    #[test]
    fn edge_predicate_eval() {
        let g = two_nodes();
        let pred = EdgePredicate {
            a: PNode(0),
            b: PNode(1),
            attr: "sign".into(),
            op: CmpOp::Eq,
            rhs: AttrValue::Int(-1),
        };
        assert!(pred.eval(&g, &[NodeId(0), NodeId(1)]));
        // Reversed endpoints still find the undirected edge attribute.
        assert!(pred.eval(&g, &[NodeId(1), NodeId(0)]));
        let missing = EdgePredicate {
            a: PNode(0),
            b: PNode(1),
            attr: "weight".into(),
            op: CmpOp::Eq,
            rhs: AttrValue::Int(0),
        };
        assert!(!missing.eval(&g, &[NodeId(0), NodeId(1)]));
    }
}
