//! Search orders for the match-extraction phase.
//!
//! Algorithm 1 requires "an order of the pattern nodes such that each
//! prefix of the order forms a connected component". [`SearchOrder`]
//! computes such an order, starting from the most constrained node
//! (label-constrained first, then highest pattern degree) and greedily
//! extending with the node most connected to the prefix — maximizing how
//! many candidate-neighbor sets get intersected at each step.

use crate::model::{PNode, Pattern};

/// A connected-prefix ordering of pattern nodes, with per-position
/// back-edges to earlier nodes.
#[derive(Clone, Debug)]
pub struct SearchOrder {
    /// The visit order: `order[0]` is matched first.
    pub order: Vec<PNode>,
    /// `backward[i]` = the pattern neighbors of `order[i]` that appear at
    /// positions `< i` in `order` (as positions, not node ids).
    pub backward: Vec<Vec<usize>>,
    /// `position[v.index()]` = index of `v` in `order`.
    pub position: Vec<usize>,
}

impl SearchOrder {
    /// Build a search order for `p`.
    ///
    /// If the positive-edge structure is disconnected, each subsequent
    /// component starts a new "island" (matching then degenerates to a
    /// cross product, which is the only correct semantics).
    pub fn new(p: &Pattern) -> Self {
        let n = p.num_nodes();
        let mut order: Vec<PNode> = Vec::with_capacity(n);
        let mut placed = vec![false; n];

        // Seed scoring: prefer label-constrained, then high pattern degree.
        let seed_score = |v: PNode| {
            (
                p.label(v).is_some() as usize,
                p.degree(v),
                std::cmp::Reverse(v),
            )
        };

        while order.len() < n {
            // Start (or restart, for disconnected patterns) from the best
            // unplaced seed.
            let seed = p
                .nodes()
                .filter(|v| !placed[v.index()])
                .max_by_key(|&v| seed_score(v))
                .expect("unplaced node exists");
            placed[seed.index()] = true;
            order.push(seed);

            loop {
                // Greedy: next node = unplaced node with the most placed
                // neighbors; ties by seed score.
                let next = p
                    .nodes()
                    .filter(|v| !placed[v.index()])
                    .map(|v| {
                        let conn = p.neighbors(v).iter().filter(|w| placed[w.index()]).count();
                        (conn, v)
                    })
                    .filter(|&(conn, _)| conn > 0)
                    .max_by_key(|&(conn, v)| (conn, seed_score(v)));
                match next {
                    Some((_, v)) => {
                        placed[v.index()] = true;
                        order.push(v);
                    }
                    None => break, // component exhausted
                }
            }
        }

        let mut position = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            position[v.index()] = i;
        }
        let backward = order
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let mut back: Vec<usize> = p
                    .neighbors(v)
                    .iter()
                    .map(|w| position[w.index()])
                    .filter(|&j| j < i)
                    .collect();
                back.sort_unstable();
                back
            })
            .collect();

        SearchOrder {
            order,
            backward,
            position,
        }
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the (impossible in practice) empty order.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Pattern;

    fn connected_prefixes(p: &Pattern, order: &[PNode]) -> bool {
        // Every node after the first in its component-run must connect to an
        // earlier node, unless it starts a new component.
        for (i, &v) in order.iter().enumerate().skip(1) {
            let has_back = p.neighbors(v).iter().any(|w| order[..i].contains(w));
            if !has_back {
                // Allowed only if v is genuinely disconnected from ALL
                // earlier nodes in the pattern.
                let reachable_earlier = order[..i].iter().any(|&u| {
                    crate::analysis::PatternAnalysis::new(p).distance(u, v)
                        != crate::analysis::UNREACHABLE
                });
                if reachable_earlier {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn triangle_order_all_prefixes_connected() {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let o = SearchOrder::new(&p);
        assert_eq!(o.len(), 3);
        assert!(connected_prefixes(&p, &o.order));
        // Third node must have two back-edges in a triangle.
        assert_eq!(o.backward[2].len(), 2);
        assert_eq!(o.backward[0].len(), 0);
    }

    #[test]
    fn square_order() {
        let p = Pattern::parse("PATTERN s { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").unwrap();
        let o = SearchOrder::new(&p);
        assert!(connected_prefixes(&p, &o.order));
        // Last node closes the square: 2 back-edges.
        assert_eq!(o.backward[3].len(), 2);
    }

    #[test]
    fn labeled_seed_preferred() {
        let p = Pattern::parse("PATTERN p { ?A-?B; ?B-?C; [?C.LABEL=1]; }").unwrap();
        let o = SearchOrder::new(&p);
        assert_eq!(o.order[0], p.node_by_name("C").unwrap());
    }

    #[test]
    fn positions_invert_order() {
        let p = Pattern::parse("PATTERN s { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").unwrap();
        let o = SearchOrder::new(&p);
        for (i, &v) in o.order.iter().enumerate() {
            assert_eq!(o.position[v.index()], i);
        }
    }

    #[test]
    fn disconnected_pattern_gets_full_order() {
        let p = Pattern::parse("PATTERN p { ?A-?B; ?C; }").unwrap();
        let o = SearchOrder::new(&p);
        assert_eq!(o.len(), 3);
        // The isolated node has no backward edges wherever it lands.
        let c = p.node_by_name("C").unwrap();
        let pos = o.position[c.index()];
        assert!(o.backward[pos].is_empty());
    }

    #[test]
    fn single_node() {
        let p = Pattern::parse("PATTERN p { ?A; }").unwrap();
        let o = SearchOrder::new(&p);
        assert_eq!(o.order, vec![PNode(0)]);
        assert!(!o.is_empty());
    }
}
