//! # ego-pattern
//!
//! Pattern graphs for ego-centric pattern census (Section II of the paper).
//!
//! A pattern is a small graph over *variables* (`?A`, `?B`, ...) with:
//!
//! * undirected (`?A-?B`) or directed (`?A->?B`) edges,
//! * *negated* edges (`?A!-?B`, `?A!->?B`) asserting an edge must **not**
//!   exist between the images of the endpoints,
//! * predicates over node labels and attributes
//!   (`[?A.LABEL=?B.LABEL]`, `[?A.LABEL=2]`, `[?A.age>=30]`),
//! * edge-attribute predicates (`[EDGE(?A,?B).sign=-1]`),
//! * named subpatterns (`SUBPATTERN coordinator {?B;}`) identifying the
//!   subset of pattern nodes whose images must fall inside the search
//!   neighborhood for COUNTSP queries.
//!
//! The crate also provides the pattern analyses the evaluation algorithms
//! need: all-pairs pattern distances and pivot selection ([`analysis`]),
//! connected-prefix search orders ([`order`]), and the automorphism group
//! used to count *distinct matches* rather than embeddings
//! ([`automorphism`]).
//!
//! ```
//! use ego_pattern::Pattern;
//!
//! let p = Pattern::parse(
//!     "PATTERN triad {
//!         ?A->?B; ?B->?C; ?A!->?C;
//!         [?A.LABEL=?B.LABEL];
//!         [?B.LABEL=?C.LABEL];
//!         SUBPATTERN coordinator {?B;}
//!     }",
//! )
//! .unwrap();
//! assert_eq!(p.name(), "triad");
//! assert_eq!(p.num_nodes(), 3);
//! assert_eq!(p.positive_edges().len(), 2);
//! assert_eq!(p.negative_edges().len(), 1);
//! assert!(p.subpattern("coordinator").is_some());
//! ```

pub mod analysis;
pub mod automorphism;
pub mod builtin;
pub mod model;
pub mod order;
pub mod parser;
pub mod predicate;
pub mod printer;

pub use analysis::PatternAnalysis;
pub use automorphism::automorphism_group;
pub use model::{PNode, Pattern, PatternEdge, Subpattern};
pub use order::SearchOrder;
pub use parser::ParseError;
pub use predicate::{CmpOp, EdgePredicate, NodePredicate, PredRhs};
pub use printer::to_dsl;
