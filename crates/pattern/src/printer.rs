//! Pattern → DSL rendering, the inverse of [`crate::parser`].
//!
//! Useful for catalogs that persist patterns, error messages, and the
//! round-trip tests that pin the parser and model to each other.

use crate::model::{PNode, Pattern};
use crate::predicate::PredRhs;
use ego_graph::AttrValue;
use std::fmt::Write as _;

/// Render `p` as a `PATTERN name { ... }` declaration that parses back to
/// an equivalent pattern.
pub fn to_dsl(p: &Pattern) -> String {
    let mut out = String::new();
    let _ = write!(out, "PATTERN {} {{", p.name());
    let var = |v: PNode| format!("?{}", p.var_name(v));

    // Declare every node up front, in id order: the parser assigns ids by
    // first mention, so this pins the round-tripped pattern's node ids to
    // the original's (and covers isolated nodes).
    for v in p.nodes() {
        let _ = write!(out, " {};", var(v));
    }
    for e in p.positive_edges() {
        let op = if e.directed { "->" } else { "-" };
        let _ = write!(out, " {}{op}{};", var(e.a), var(e.b));
    }
    for e in p.negative_edges() {
        let op = if e.directed { "!->" } else { "!-" };
        let _ = write!(out, " {}{op}{};", var(e.a), var(e.b));
    }
    for v in p.nodes() {
        if let Some(l) = p.label(v) {
            let _ = write!(out, " [{}.LABEL={}];", var(v), l.0);
        }
    }
    for pred in p.node_predicates() {
        let rhs = match &pred.rhs {
            PredRhs::Const(c) => literal(c),
            PredRhs::NodeAttr(o, attr) => format!("{}.{}", var(*o), attr),
        };
        let _ = write!(
            out,
            " [{}.{}{}{}];",
            var(pred.node),
            pred.attr,
            pred.op,
            rhs
        );
    }
    for pred in p.edge_predicates() {
        let _ = write!(
            out,
            " [EDGE({},{}).{}{}{}];",
            var(pred.a),
            var(pred.b),
            pred.attr,
            pred.op,
            literal(&pred.rhs)
        );
    }
    for sp in p.subpatterns() {
        let _ = write!(out, " SUBPATTERN {} {{", sp.name);
        for &v in &sp.nodes {
            let _ = write!(out, " {};", var(v));
        }
        let _ = write!(out, " }}");
    }
    out.push_str(" }");
    out
}

impl std::fmt::Display for Pattern {
    /// Renders the DSL form (see [`to_dsl`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_dsl(self))
    }
}

fn literal(v: &AttrValue) -> String {
    match v {
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => {
            let s = f.to_string();
            if s.contains('.') {
                s
            } else {
                format!("{s}.0")
            }
        }
        AttrValue::Str(s) => format!("'{s}'"),
        AttrValue::Bool(b) => b.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin;

    fn roundtrip(p: &Pattern) -> Pattern {
        let dsl = to_dsl(p);
        Pattern::parse(&dsl).unwrap_or_else(|e| panic!("reparse `{dsl}`: {e}"))
    }

    fn assert_equivalent(a: &Pattern, b: &Pattern) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.num_nodes(), b.num_nodes());
        // Variable names may be re-ordered only if declaration order
        // changed; our printer preserves node declaration order.
        for v in a.nodes() {
            assert_eq!(a.var_name(v), b.var_name(v));
            assert_eq!(a.label(v), b.label(v));
        }
        let norm = |p: &Pattern| {
            let mut pos: Vec<_> = p
                .positive_edges()
                .iter()
                .map(|e| (e.a, e.b, e.directed))
                .collect();
            pos.sort();
            let mut neg: Vec<_> = p
                .negative_edges()
                .iter()
                .map(|e| (e.a, e.b, e.directed))
                .collect();
            neg.sort();
            (pos, neg)
        };
        assert_eq!(norm(a), norm(b));
        assert_eq!(a.node_predicates(), b.node_predicates());
        assert_eq!(a.edge_predicates(), b.edge_predicates());
        assert_eq!(a.subpatterns(), b.subpatterns());
    }

    #[test]
    fn builtins_roundtrip() {
        for p in builtin::figure3() {
            assert_equivalent(&p, &roundtrip(&p));
        }
        for p in [
            builtin::single_node(),
            builtin::single_edge(),
            builtin::coordinator_triad(),
            builtin::all_negative_triangle(),
            builtin::couples_square(),
        ] {
            assert_equivalent(&p, &roundtrip(&p));
        }
    }

    #[test]
    fn mixed_pattern_roundtrips() {
        let p = Pattern::parse(
            "PATTERN mix {
                ?A->?B; ?B-?C; ?A!-?D; ?D;
                [?A.LABEL=3];
                [?B.age>=30];
                [?C.name!='bob'];
                [?A.LABEL=?C.LABEL];
                [EDGE(?B,?C).w<0.5];
                SUBPATTERN core {?A; ?B;}
            }",
        )
        .unwrap();
        assert_equivalent(&p, &roundtrip(&p));
    }

    #[test]
    fn isolated_node_declared() {
        let p = Pattern::parse("PATTERN iso { ?A-?B; ?C; }").unwrap();
        let dsl = to_dsl(&p);
        assert!(dsl.contains("?C;"), "{dsl}");
        assert_equivalent(&p, &roundtrip(&p));
    }

    #[test]
    fn literal_rendering() {
        assert_eq!(literal(&AttrValue::Int(-3)), "-3");
        assert_eq!(literal(&AttrValue::Float(2.0)), "2.0");
        assert_eq!(literal(&AttrValue::Str("x y".into())), "'x y'");
        assert_eq!(literal(&AttrValue::Bool(true)), "true");
    }
}
