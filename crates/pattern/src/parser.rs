//! Parser for the pattern specification DSL (Table I of the paper).
//!
//! Grammar (keywords are case-insensitive):
//!
//! ```text
//! pattern    := 'PATTERN' name '{' item* '}'
//! item       := node-decl | edge-decl | predicate | subpattern
//! node-decl  := var ';'                      e.g.  ?A;
//! edge-decl  := var edge-op var ';'          e.g.  ?A-?B;  ?A->?B;  ?A!->?C;
//! edge-op    := '-' | '->' | '<-' | '!-' | '!->' | '!<-'
//! predicate  := '[' lhs cmp rhs ']' ';'?
//! lhs        := var '.' attr
//!             | 'EDGE' '(' var ',' var ')' '.' attr
//! rhs        := literal | var '.' attr
//! cmp        := '=' | '!=' | '<' | '<=' | '>' | '>='
//! subpattern := 'SUBPATTERN' name '{' (var ';')* '}'
//! literal    := int | float | 'single-quoted string' | true | false
//! ```
//!
//! `?X.LABEL = <int>` equality predicates are folded into node label
//! constraints (the fast path of candidate enumeration); all other
//! predicates are retained for the final filtering step.

use crate::model::{PNode, Pattern, PatternBuilder};
use crate::predicate::{is_label_attr, CmpOp, EdgePredicate, NodePredicate, PredRhs};
use ego_graph::{AttrValue, Label};
use std::fmt;

/// A parse failure, with 1-based line/column of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    Float(f64),
    Str(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Semi,
    Comma,
    Dot,
    Cmp(CmpOp),
    /// `-`, `->`, `<-`, `!-`, `!->`, `!<-`
    Edge {
        directed: bool,
        negated: bool,
        reversed: bool,
    },
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Var(s) => write!(f, "`?{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Cmp(op) => write!(f, "`{op}`"),
            Tok::Edge {
                directed,
                negated,
                reversed,
            } => {
                let neg = if *negated { "!" } else { "" };
                let arrow = match (directed, reversed) {
                    (false, _) => "-",
                    (true, false) => "->",
                    (true, true) => "<-",
                };
                write!(f, "`{neg}{arrow}`")
            }
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

type Spanned = (Tok, usize, usize);

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // `#` starts a line comment.
                Some(b'#') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn number(&mut self, negative: bool) -> Result<Tok, ParseError> {
        let mut s = String::new();
        if negative {
            s.push('-');
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                s.push(c as char);
                self.bump();
            } else if c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                s.push('.');
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Tok::Float)
                .map_err(|e| self.err(format!("bad float `{s}`: {e}")))
        } else {
            s.parse::<i64>()
                .map(Tok::Int)
                .map_err(|e| self.err(format!("bad integer `{s}`: {e}")))
        }
    }

    fn next_tok(&mut self) -> Result<Spanned, ParseError> {
        self.skip_ws();
        let (line, col) = (self.line, self.col);
        let tok = match self.peek() {
            None => Tok::Eof,
            Some(b'{') => {
                self.bump();
                Tok::LBrace
            }
            Some(b'}') => {
                self.bump();
                Tok::RBrace
            }
            Some(b'[') => {
                self.bump();
                Tok::LBracket
            }
            Some(b']') => {
                self.bump();
                Tok::RBracket
            }
            Some(b'(') => {
                self.bump();
                Tok::LParen
            }
            Some(b')') => {
                self.bump();
                Tok::RParen
            }
            Some(b';') => {
                self.bump();
                Tok::Semi
            }
            Some(b',') => {
                self.bump();
                Tok::Comma
            }
            Some(b'.') => {
                self.bump();
                Tok::Dot
            }
            Some(b'?') => {
                self.bump();
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.err("expected variable name after `?`"));
                }
                Tok::Var(name)
            }
            Some(b'\'') | Some(b'"') => {
                let quote = self.bump().unwrap();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated string literal")),
                        Some(c) if c == quote => break,
                        Some(c) => s.push(c as char),
                    }
                }
                Tok::Str(s)
            }
            Some(b'=') => {
                self.bump();
                Tok::Cmp(CmpOp::Eq)
            }
            Some(b'<') => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Cmp(CmpOp::Le)
                    }
                    Some(b'-') => {
                        self.bump();
                        Tok::Edge {
                            directed: true,
                            negated: false,
                            reversed: true,
                        }
                    }
                    _ => Tok::Cmp(CmpOp::Lt),
                }
            }
            Some(b'>') => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Ge)
                } else {
                    Tok::Cmp(CmpOp::Gt)
                }
            }
            Some(b'!') => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Cmp(CmpOp::Ne)
                    }
                    Some(b'-') => {
                        self.bump();
                        if self.peek() == Some(b'>') {
                            self.bump();
                            Tok::Edge {
                                directed: true,
                                negated: true,
                                reversed: false,
                            }
                        } else {
                            Tok::Edge {
                                directed: false,
                                negated: true,
                                reversed: false,
                            }
                        }
                    }
                    Some(b'<') => {
                        self.bump();
                        if self.peek() == Some(b'-') {
                            self.bump();
                            Tok::Edge {
                                directed: true,
                                negated: true,
                                reversed: true,
                            }
                        } else {
                            return Err(self.err("expected `!<-`"));
                        }
                    }
                    _ => return Err(self.err("expected `!=`, `!-`, `!->`, or `!<-`")),
                }
            }
            Some(b'-') => {
                self.bump();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        Tok::Edge {
                            directed: true,
                            negated: false,
                            reversed: false,
                        }
                    }
                    Some(c) if c.is_ascii_digit() => self.number(true)?,
                    _ => Tok::Edge {
                        directed: false,
                        negated: false,
                        reversed: false,
                    },
                }
            }
            Some(c) if c.is_ascii_digit() => self.number(false)?,
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => Tok::Ident(self.ident()),
            Some(c) => return Err(self.err(format!("unexpected character `{}`", c as char))),
        };
        Ok((tok, line, col))
    }

    fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_tok()?;
            let done = t.0 == Tok::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let (_, line, col) = self.toks[self.pos];
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.bump();
                Ok(())
            }
            other => Err(self.err_here(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected identifier, found {other}"))),
        }
    }

    fn var(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Var(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err_here(format!("expected variable, found {other}"))),
        }
    }

    fn literal(&mut self) -> Result<AttrValue, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(AttrValue::Int(i))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(AttrValue::Float(x))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(AttrValue::Str(s))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(AttrValue::Bool(true))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(AttrValue::Bool(false))
            }
            other => Err(self.err_here(format!("expected literal, found {other}"))),
        }
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        self.expect_keyword("PATTERN")?;
        let name = self.ident()?;
        let mut b = Pattern::builder(&name);
        self.expect(&Tok::LBrace)?;
        // Two-phase subpattern collection: members may be declared before use.
        let mut subpatterns: Vec<(String, Vec<String>, usize, usize)> = Vec::new();
        loop {
            match self.peek().clone() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::Var(_) => self.edge_or_node_decl(&mut b)?,
                Tok::LBracket => self.predicate(&mut b)?,
                Tok::Ident(s) if s.eq_ignore_ascii_case("SUBPATTERN") => {
                    let (_, line, col) = self.toks[self.pos];
                    self.bump();
                    let sp_name = self.ident()?;
                    self.expect(&Tok::LBrace)?;
                    let mut members = Vec::new();
                    while let Tok::Var(_) = self.peek() {
                        members.push(self.var()?);
                        if *self.peek() == Tok::Semi {
                            self.bump();
                        }
                    }
                    self.expect(&Tok::RBrace)?;
                    if *self.peek() == Tok::Semi {
                        self.bump();
                    }
                    subpatterns.push((sp_name, members, line, col));
                }
                Tok::Eof => return Err(self.err_here("unexpected end of input, expected `}`")),
                other => {
                    return Err(self.err_here(format!(
                        "expected node/edge declaration, predicate, or SUBPATTERN, found {other}"
                    )))
                }
            }
        }
        match self.peek() {
            Tok::Eof => {}
            other => {
                return Err(self.err_here(format!("trailing input after pattern: {other}")));
            }
        }
        let mut pattern_nodes: Vec<(String, Vec<PNode>)> = Vec::new();
        for (sp_name, members, line, col) in subpatterns {
            let mut ids = Vec::new();
            for m in &members {
                match builder_lookup(&b, m) {
                    Some(id) => ids.push(id),
                    None => {
                        return Err(ParseError {
                            line,
                            col,
                            message: format!(
                                "subpattern `{sp_name}` references unknown variable ?{m}"
                            ),
                        })
                    }
                }
            }
            if ids.is_empty() {
                return Err(ParseError {
                    line,
                    col,
                    message: format!("subpattern `{sp_name}` has no members"),
                });
            }
            pattern_nodes.push((sp_name, ids));
        }
        for (sp_name, ids) in pattern_nodes {
            b.subpattern(&sp_name, ids);
        }
        b.build_checked().map_err(|m| ParseError {
            line: 1,
            col: 1,
            message: m,
        })
    }

    fn edge_or_node_decl(&mut self, b: &mut PatternBuilder) -> Result<(), ParseError> {
        let lhs = self.var()?;
        let a = b.node_or_existing(&lhs);
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                Ok(())
            }
            Tok::Edge {
                directed,
                negated,
                reversed,
            } => {
                self.bump();
                let rhs = self.var()?;
                let c = b.node_or_existing(&rhs);
                if a == c {
                    return Err(self.err_here(format!("self-loop on ?{lhs}")));
                }
                let (src, dst) = if reversed { (c, a) } else { (a, c) };
                match (directed, negated) {
                    (false, false) => b.edge(src, dst),
                    (true, false) => b.directed_edge(src, dst),
                    (false, true) => b.negated_edge(src, dst),
                    (true, true) => b.negated_directed_edge(src, dst),
                };
                self.expect(&Tok::Semi)
            }
            other => Err(self.err_here(format!("expected `;` or an edge operator, found {other}"))),
        }
    }

    fn predicate(&mut self, b: &mut PatternBuilder) -> Result<(), ParseError> {
        self.expect(&Tok::LBracket)?;
        match self.peek().clone() {
            // EDGE(?A,?B).attr OP literal
            Tok::Ident(s) if s.eq_ignore_ascii_case("EDGE") => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let va = self.var()?;
                self.expect(&Tok::Comma)?;
                let vb = self.var()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Dot)?;
                let attr = self.ident()?;
                let op = self.cmp_op()?;
                let rhs = self.literal()?;
                self.expect(&Tok::RBracket)?;
                if *self.peek() == Tok::Semi {
                    self.bump();
                }
                let a = b.node_or_existing(&va);
                let bb = b.node_or_existing(&vb);
                b.edge_predicate(EdgePredicate {
                    a,
                    b: bb,
                    attr,
                    op,
                    rhs,
                });
                Ok(())
            }
            // ?A.attr OP (literal | ?B.attr)
            Tok::Var(_) => {
                let v = self.var()?;
                self.expect(&Tok::Dot)?;
                let attr = self.ident()?;
                let op = self.cmp_op()?;
                let node = b.node_or_existing(&v);
                let rhs = match self.peek().clone() {
                    Tok::Var(_) => {
                        let v2 = self.var()?;
                        self.expect(&Tok::Dot)?;
                        let attr2 = self.ident()?;
                        let other = b.node_or_existing(&v2);
                        PredRhs::NodeAttr(other, attr2)
                    }
                    _ => PredRhs::Const(self.literal()?),
                };
                self.expect(&Tok::RBracket)?;
                if *self.peek() == Tok::Semi {
                    self.bump();
                }
                // Fast path: fold `?X.LABEL = <int>` into a label constraint.
                if let (true, CmpOp::Eq, PredRhs::Const(AttrValue::Int(l))) =
                    (is_label_attr(&attr), op, &rhs)
                {
                    if *l >= 0 && *l <= u16::MAX as i64 {
                        b.label(node, Label(*l as u16));
                        return Ok(());
                    }
                }
                b.node_predicate(NodePredicate {
                    node,
                    attr,
                    op,
                    rhs,
                });
                Ok(())
            }
            other => Err(self.err_here(format!(
                "expected `?var.attr` or `EDGE(?a,?b).attr` in predicate, found {other}"
            ))),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.peek().clone() {
            Tok::Cmp(op) => {
                self.bump();
                Ok(op)
            }
            other => Err(self.err_here(format!("expected comparison operator, found {other}"))),
        }
    }
}

fn builder_lookup(b: &PatternBuilder, var: &str) -> Option<PNode> {
    b.peek_pattern().node_by_name(var)
}

/// Parse a single `PATTERN name { ... }` declaration.
pub fn parse_pattern(text: &str) -> Result<Pattern, ParseError> {
    let toks = Lexer::new(text).tokenize()?;
    let mut p = Parser { toks, pos: 0 };
    p.pattern()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_single_node() {
        let p = parse_pattern("PATTERN single_node {?A;}").unwrap();
        assert_eq!(p.name(), "single_node");
        assert_eq!(p.num_nodes(), 1);
        assert!(p.positive_edges().is_empty());
    }

    #[test]
    fn table1_single_edge() {
        let p = parse_pattern("PATTERN single_edge {?A-?B;}").unwrap();
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.positive_edges().len(), 1);
        assert!(!p.positive_edges()[0].directed);
    }

    #[test]
    fn table1_square() {
        let p = parse_pattern(
            "PATTERN square {
                ?A-?B;  ?B-?C;
                ?C-?D;  ?D-?A;
            }",
        )
        .unwrap();
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.positive_edges().len(), 4);
        assert!(p.is_connected());
    }

    #[test]
    fn table1_triad_with_subpattern() {
        let p = parse_pattern(
            "PATTERN triad {
                ?A->?B; ?B->?C; ?A!->?C;
                [?A.LABEL=?B.LABEL];
                [?B.LABEL=?C.LABEL];
                SUBPATTERN coordinator {?B;}
            }",
        )
        .unwrap();
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.positive_edges().len(), 2);
        assert!(p.positive_edges().iter().all(|e| e.directed));
        assert_eq!(p.negative_edges().len(), 1);
        assert!(p.negative_edges()[0].directed);
        assert_eq!(p.node_predicates().len(), 2);
        let sp = p.subpattern("coordinator").unwrap();
        assert_eq!(sp.nodes.len(), 1);
        assert_eq!(p.var_name(sp.nodes[0]), "B");
    }

    #[test]
    fn label_constant_folded_into_constraint() {
        let p = parse_pattern("PATTERN p { ?A-?B; [?A.LABEL=2]; }").unwrap();
        let a = p.node_by_name("A").unwrap();
        assert_eq!(p.label(a), Some(Label(2)));
        assert!(p.node_predicates().is_empty());
        assert!(p.is_labeled());
    }

    #[test]
    fn label_inequality_not_folded() {
        let p = parse_pattern("PATTERN p { ?A-?B; [?A.LABEL!=2]; }").unwrap();
        let a = p.node_by_name("A").unwrap();
        assert_eq!(p.label(a), None);
        assert_eq!(p.node_predicates().len(), 1);
    }

    #[test]
    fn attribute_predicates() {
        let p = parse_pattern(
            "PATTERN p { ?A-?B; [?A.age>=30]; [?A.name='bob']; [?B.score<1.5]; [?A.ok=true]; }",
        )
        .unwrap();
        assert_eq!(p.node_predicates().len(), 4);
        assert_eq!(p.node_predicates()[0].op, CmpOp::Ge);
        assert_eq!(
            p.node_predicates()[1].rhs,
            PredRhs::Const(AttrValue::Str("bob".into()))
        );
        assert_eq!(
            p.node_predicates()[2].rhs,
            PredRhs::Const(AttrValue::Float(1.5))
        );
        assert_eq!(
            p.node_predicates()[3].rhs,
            PredRhs::Const(AttrValue::Bool(true))
        );
    }

    #[test]
    fn negative_literal() {
        let p = parse_pattern("PATTERN p { ?A-?B; [EDGE(?A,?B).sign=-1]; }").unwrap();
        assert_eq!(p.edge_predicates().len(), 1);
        assert_eq!(p.edge_predicates()[0].rhs, AttrValue::Int(-1));
    }

    #[test]
    fn reversed_arrow() {
        let p = parse_pattern("PATTERN p { ?A<-?B; }").unwrap();
        let e = p.positive_edges()[0];
        assert!(e.directed);
        assert_eq!(p.var_name(e.a), "B");
        assert_eq!(p.var_name(e.b), "A");
    }

    #[test]
    fn negated_undirected_edge() {
        let p = parse_pattern("PATTERN p { ?A-?B; ?B-?C; ?A!-?C; }").unwrap();
        assert_eq!(p.negative_edges().len(), 1);
        assert!(!p.negative_edges()[0].directed);
    }

    #[test]
    fn comments_allowed() {
        let p = parse_pattern("# heading\nPATTERN p { ?A-?B; # inline\n }").unwrap();
        assert_eq!(p.num_nodes(), 2);
    }

    #[test]
    fn keywords_case_insensitive() {
        let p = parse_pattern("pattern p { ?A-?B; subpattern s {?A;} }").unwrap();
        assert!(p.subpattern("s").is_some());
    }

    #[test]
    fn error_unknown_subpattern_member() {
        let err = parse_pattern("PATTERN p { ?A; SUBPATTERN s {?Z;} }").unwrap_err();
        assert!(err.message.contains("unknown variable"), "{err}");
    }

    #[test]
    fn error_self_loop() {
        let err = parse_pattern("PATTERN p { ?A-?A; }").unwrap_err();
        assert!(err.message.contains("self-loop"), "{err}");
    }

    #[test]
    fn error_missing_semicolon() {
        assert!(parse_pattern("PATTERN p { ?A-?B }").is_err());
    }

    #[test]
    fn error_truncated() {
        assert!(parse_pattern("PATTERN p { ?A-?B;").is_err());
        assert!(parse_pattern("PATTERN p").is_err());
        assert!(parse_pattern("").is_err());
    }

    #[test]
    fn error_trailing_garbage() {
        assert!(parse_pattern("PATTERN p { ?A; } extra").is_err());
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_pattern("PATTERN p {\n  ?A @ ?B;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn string_with_double_quotes() {
        let p = parse_pattern("PATTERN p { ?A; [?A.name=\"alice\"]; }").unwrap();
        assert_eq!(
            p.node_predicates()[0].rhs,
            PredRhs::Const(AttrValue::Str("alice".into()))
        );
    }
}
