//! The pattern graph data model.

use crate::predicate::{EdgePredicate, NodePredicate};
use ego_graph::Label;
use std::fmt;

/// Identifier of a node within a pattern. Patterns are tiny (the paper's
/// largest is a 4-clique), so a `u8` is ample.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PNode(pub u8);

impl PNode {
    /// Index into per-pattern-node arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from an index.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i < 256);
        PNode(i as u8)
    }
}

impl fmt::Debug for PNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An edge of the pattern graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatternEdge {
    /// Source endpoint (for directed edges) or either endpoint.
    pub a: PNode,
    /// Target endpoint.
    pub b: PNode,
    /// If true, the match must contain the directed edge `μ(a) -> μ(b)`;
    /// if false, any edge between the images suffices.
    pub directed: bool,
}

/// A named subset of pattern nodes; the COUNTSP aggregate counts a match
/// only when the images of *these* nodes fall inside the neighborhood.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Subpattern {
    /// The subpattern's name as written in the DSL.
    pub name: String,
    /// Member pattern nodes, sorted.
    pub nodes: Vec<PNode>,
}

/// A pattern graph: variables, structural edges (positive and negated),
/// predicates, and subpatterns.
///
/// Invariants (enforced by the builder/parser):
/// * node labels from `[?X.LABEL = const]` predicates are folded into
///   `labels[x]`, the fast path used during candidate enumeration;
/// * `positive_edges` and `negative_edges` contain no duplicates and no
///   self-loops;
/// * every [`PNode`] referenced anywhere is `< num_nodes`.
#[derive(Clone, Debug)]
pub struct Pattern {
    name: String,
    /// Variable names, indexed by [`PNode`].
    var_names: Vec<String>,
    /// Optional label constraint per node (from `?X.LABEL = const`).
    labels: Vec<Option<Label>>,
    positive_edges: Vec<PatternEdge>,
    negative_edges: Vec<PatternEdge>,
    node_predicates: Vec<NodePredicate>,
    edge_predicates: Vec<EdgePredicate>,
    subpatterns: Vec<Subpattern>,
}

impl Pattern {
    /// Parse a pattern from the DSL. See [`crate::parser`].
    pub fn parse(text: &str) -> Result<Pattern, crate::parser::ParseError> {
        crate::parser::parse_pattern(text)
    }

    /// Start building a pattern programmatically.
    pub fn builder(name: &str) -> PatternBuilder {
        PatternBuilder {
            pattern: Pattern {
                name: name.to_string(),
                var_names: Vec::new(),
                labels: Vec::new(),
                positive_edges: Vec::new(),
                negative_edges: Vec::new(),
                node_predicates: Vec::new(),
                edge_predicates: Vec::new(),
                subpatterns: Vec::new(),
            },
        }
    }

    /// The pattern's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of pattern nodes.
    pub fn num_nodes(&self) -> usize {
        self.var_names.len()
    }

    /// Iterator over all pattern node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PNode> + Clone {
        (0..self.var_names.len() as u8).map(PNode)
    }

    /// The variable name of `v` (without the `?` sigil).
    pub fn var_name(&self, v: PNode) -> &str {
        &self.var_names[v.index()]
    }

    /// Find a node by variable name.
    pub fn node_by_name(&self, name: &str) -> Option<PNode> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(PNode::from_index)
    }

    /// The label constraint of `v`, if any.
    pub fn label(&self, v: PNode) -> Option<Label> {
        self.labels[v.index()]
    }

    /// True if at least one node carries a label constraint.
    pub fn is_labeled(&self) -> bool {
        self.labels.iter().any(Option::is_some)
    }

    /// Structural (positive) edges.
    pub fn positive_edges(&self) -> &[PatternEdge] {
        &self.positive_edges
    }

    /// Negated edges (must **not** exist in a match).
    pub fn negative_edges(&self) -> &[PatternEdge] {
        &self.negative_edges
    }

    /// True if any edge is directed (positive or negated).
    pub fn has_directed_edges(&self) -> bool {
        self.positive_edges
            .iter()
            .chain(&self.negative_edges)
            .any(|e| e.directed)
    }

    /// Node predicates not folded into label constraints.
    pub fn node_predicates(&self) -> &[NodePredicate] {
        &self.node_predicates
    }

    /// Edge-attribute predicates.
    pub fn edge_predicates(&self) -> &[EdgePredicate] {
        &self.edge_predicates
    }

    /// All subpatterns.
    pub fn subpatterns(&self) -> &[Subpattern] {
        &self.subpatterns
    }

    /// Look up a subpattern by name.
    pub fn subpattern(&self, name: &str) -> Option<&Subpattern> {
        self.subpatterns.iter().find(|sp| sp.name == name)
    }

    /// Neighbors of `v` through positive edges (undirected view of the
    /// pattern), deduplicated and sorted.
    pub fn neighbors(&self, v: PNode) -> Vec<PNode> {
        let mut out: Vec<PNode> = self
            .positive_edges
            .iter()
            .filter_map(|e| {
                if e.a == v {
                    Some(e.b)
                } else if e.b == v {
                    Some(e.a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Degree of `v` through positive edges.
    pub fn degree(&self, v: PNode) -> usize {
        self.neighbors(v).len()
    }

    /// True if the positive-edge structure is connected (or has ≤ 1 node).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![PNode(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// Does the pattern graph contain a positive edge between `a` and `b`
    /// (in either direction)?
    pub fn has_positive_edge(&self, a: PNode, b: PNode) -> bool {
        self.positive_edges
            .iter()
            .any(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    }

    /// Required directed-edge relation between images of `a` and `b`,
    /// across positive edges: returns (a_to_b, b_to_a) requirements.
    pub fn directed_requirements(&self, a: PNode, b: PNode) -> (bool, bool) {
        let mut ab = false;
        let mut ba = false;
        for e in &self.positive_edges {
            if e.directed {
                if e.a == a && e.b == b {
                    ab = true;
                }
                if e.a == b && e.b == a {
                    ba = true;
                }
            }
        }
        (ab, ba)
    }
}

/// Incremental pattern construction (used by the parser, builtins, and
/// tests). Methods panic on structural errors — programmatic construction
/// bugs should fail loudly; the parser performs its own validation first.
pub struct PatternBuilder {
    pattern: Pattern,
}

impl PatternBuilder {
    /// Add a node with variable name `var`; returns its id.
    ///
    /// # Panics
    /// If `var` already exists.
    pub fn node(&mut self, var: &str) -> PNode {
        assert!(
            self.pattern.node_by_name(var).is_none(),
            "duplicate pattern variable ?{var}"
        );
        let id = PNode::from_index(self.pattern.var_names.len());
        self.pattern.var_names.push(var.to_string());
        self.pattern.labels.push(None);
        id
    }

    /// Get-or-create a node by variable name.
    pub fn node_or_existing(&mut self, var: &str) -> PNode {
        self.pattern
            .node_by_name(var)
            .unwrap_or_else(|| self.node(var))
    }

    /// Constrain `v`'s label.
    pub fn label(&mut self, v: PNode, label: Label) -> &mut Self {
        self.pattern.labels[v.index()] = Some(label);
        self
    }

    /// Add an undirected positive edge.
    pub fn edge(&mut self, a: PNode, b: PNode) -> &mut Self {
        self.push_edge(a, b, false, false)
    }

    /// Add a directed positive edge `a -> b`.
    pub fn directed_edge(&mut self, a: PNode, b: PNode) -> &mut Self {
        self.push_edge(a, b, true, false)
    }

    /// Add an undirected negated edge.
    pub fn negated_edge(&mut self, a: PNode, b: PNode) -> &mut Self {
        self.push_edge(a, b, false, true)
    }

    /// Add a directed negated edge `a -> b` must not exist.
    pub fn negated_directed_edge(&mut self, a: PNode, b: PNode) -> &mut Self {
        self.push_edge(a, b, true, true)
    }

    fn push_edge(&mut self, a: PNode, b: PNode, directed: bool, negated: bool) -> &mut Self {
        assert!(
            a != b,
            "pattern self-loop ?{0}-?{0}",
            self.pattern.var_name(a)
        );
        assert!(
            a.index() < self.pattern.num_nodes() && b.index() < self.pattern.num_nodes(),
            "edge references unknown pattern node"
        );
        let (a, b) = if !directed && b < a { (b, a) } else { (a, b) };
        let edge = PatternEdge { a, b, directed };
        let list = if negated {
            &mut self.pattern.negative_edges
        } else {
            &mut self.pattern.positive_edges
        };
        if !list.contains(&edge) {
            list.push(edge);
        }
        self
    }

    /// Attach a node predicate.
    pub fn node_predicate(&mut self, p: NodePredicate) -> &mut Self {
        self.pattern.node_predicates.push(p);
        self
    }

    /// Attach an edge predicate.
    pub fn edge_predicate(&mut self, p: EdgePredicate) -> &mut Self {
        self.pattern.edge_predicates.push(p);
        self
    }

    /// Declare a subpattern over `nodes`.
    ///
    /// # Panics
    /// If the name repeats or `nodes` is empty.
    pub fn subpattern(&mut self, name: &str, mut nodes: Vec<PNode>) -> &mut Self {
        assert!(!nodes.is_empty(), "empty subpattern {name}");
        assert!(
            self.pattern.subpattern(name).is_none(),
            "duplicate subpattern {name}"
        );
        nodes.sort_unstable();
        nodes.dedup();
        self.pattern.subpatterns.push(Subpattern {
            name: name.to_string(),
            nodes,
        });
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// If the pattern has no nodes.
    pub fn build(self) -> Pattern {
        assert!(self.pattern.num_nodes() > 0, "pattern with no nodes");
        self.pattern
    }

    /// Non-panicking variant of [`Self::build`], for the parser.
    pub fn build_checked(self) -> Result<Pattern, String> {
        if self.pattern.num_nodes() == 0 {
            return Err("pattern declares no nodes".to_string());
        }
        Ok(self.pattern)
    }

    /// Read-only view of the pattern under construction.
    pub fn peek_pattern(&self) -> &Pattern {
        &self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Pattern {
        let mut b = Pattern::builder("tri");
        let a = b.node("A");
        let c = b.node("B");
        let d = b.node("C");
        b.edge(a, c).edge(c, d).edge(a, d);
        b.build()
    }

    #[test]
    fn basic_structure() {
        let p = triangle();
        assert_eq!(p.name(), "tri");
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.positive_edges().len(), 3);
        assert!(p.is_connected());
        assert!(!p.is_labeled());
        assert!(!p.has_directed_edges());
        assert_eq!(p.neighbors(PNode(0)), vec![PNode(1), PNode(2)]);
        assert_eq!(p.degree(PNode(0)), 2);
        assert!(p.has_positive_edge(PNode(0), PNode(2)));
        assert!(p.has_positive_edge(PNode(2), PNode(0)));
    }

    #[test]
    fn node_lookup_by_name() {
        let p = triangle();
        assert_eq!(p.node_by_name("B"), Some(PNode(1)));
        assert_eq!(p.node_by_name("Z"), None);
        assert_eq!(p.var_name(PNode(2)), "C");
    }

    #[test]
    fn duplicate_undirected_edges_collapse() {
        let mut b = Pattern::builder("p");
        let a = b.node("A");
        let c = b.node("B");
        b.edge(a, c).edge(c, a);
        let p = b.build();
        assert_eq!(p.positive_edges().len(), 1);
    }

    #[test]
    fn directed_edges_and_requirements() {
        let mut b = Pattern::builder("p");
        let a = b.node("A");
        let c = b.node("B");
        b.directed_edge(a, c);
        let p = b.build();
        assert!(p.has_directed_edges());
        assert_eq!(p.directed_requirements(a, c), (true, false));
        assert_eq!(p.directed_requirements(c, a), (false, true));
    }

    #[test]
    fn disconnected_pattern_detected() {
        let mut b = Pattern::builder("p");
        b.node("A");
        b.node("B");
        let p = b.build();
        assert!(!p.is_connected());
        // single node is connected
        let mut b = Pattern::builder("q");
        b.node("A");
        assert!(b.build().is_connected());
    }

    #[test]
    fn labels_and_subpatterns() {
        let mut b = Pattern::builder("p");
        let a = b.node("A");
        let c = b.node("B");
        b.edge(a, c);
        b.label(a, Label(2));
        b.subpattern("mid", vec![c, c]);
        let p = b.build();
        assert_eq!(p.label(a), Some(Label(2)));
        assert_eq!(p.label(c), None);
        assert!(p.is_labeled());
        let sp = p.subpattern("mid").unwrap();
        assert_eq!(sp.nodes, vec![c]); // deduped
        assert!(p.subpattern("other").is_none());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut b = Pattern::builder("p");
        let a = b.node("A");
        b.edge(a, a);
    }

    #[test]
    #[should_panic(expected = "duplicate pattern variable")]
    fn duplicate_variable_panics() {
        let mut b = Pattern::builder("p");
        b.node("A");
        b.node("A");
    }
}
