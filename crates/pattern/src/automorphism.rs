//! Pattern automorphisms.
//!
//! The paper counts *matches* — subgraphs of `G` isomorphic to `P` — not
//! embeddings (variable assignments). A match on node set `S` corresponds
//! to `|Aut(P)|` embeddings, where `Aut(P)` is the pattern's automorphism
//! group. The matcher enumerates embeddings; the census layer deduplicates
//! by canonicalizing each embedding under `Aut(P)`.
//!
//! An automorphism here must preserve *everything that affects match
//! validity*: positive edges (with direction), negated edges (with
//! direction), label constraints, and predicates (mapped syntactically).
//! Patterns are tiny, so a pruned backtracking search over permutations
//! is more than fast enough.

use crate::model::{PNode, Pattern, PatternEdge};
use crate::predicate::{NodePredicate, PredRhs};

/// Compute the automorphism group of `p` as a list of permutations
/// (`perm[v.index()]` = image of `v`). The identity is always included.
pub fn automorphism_group(p: &Pattern) -> Vec<Vec<PNode>> {
    let n = p.num_nodes();
    let mut result = Vec::new();
    let mut perm: Vec<Option<PNode>> = vec![None; n];
    let mut used = vec![false; n];
    search(p, 0, &mut perm, &mut used, &mut result);
    debug_assert!(result
        .iter()
        .any(|perm| perm.iter().enumerate().all(|(i, &v)| v.index() == i)));
    result
}

fn search(
    p: &Pattern,
    depth: usize,
    perm: &mut Vec<Option<PNode>>,
    used: &mut Vec<bool>,
    result: &mut Vec<Vec<PNode>>,
) {
    let n = p.num_nodes();
    if depth == n {
        let full: Vec<PNode> = perm.iter().map(|v| v.unwrap()).collect();
        if preserves_all(p, &full) {
            result.push(full);
        }
        return;
    }
    let v = PNode::from_index(depth);
    for cand_idx in 0..n {
        if used[cand_idx] {
            continue;
        }
        let w = PNode::from_index(cand_idx);
        if !compatible(p, v, w, perm) {
            continue;
        }
        perm[depth] = Some(w);
        used[cand_idx] = true;
        search(p, depth + 1, perm, used, result);
        perm[depth] = None;
        used[cand_idx] = false;
    }
}

/// Local pruning: `w` can be the image of `v` only if label constraints
/// match, degrees match, and edges to already-assigned nodes are preserved.
fn compatible(p: &Pattern, v: PNode, w: PNode, perm: &[Option<PNode>]) -> bool {
    if p.label(v) != p.label(w) {
        return false;
    }
    if p.degree(v) != p.degree(w) {
        return false;
    }
    for e in p.positive_edges() {
        let (other, is_src) = if e.a == v {
            (e.b, true)
        } else if e.b == v {
            (e.a, false)
        } else {
            continue;
        };
        if let Some(Some(img_other)) = perm.get(other.index()).copied() {
            let (src, dst) = if is_src {
                (w, img_other)
            } else {
                (img_other, w)
            };
            let found = p.positive_edges().iter().any(|f| {
                if e.directed {
                    f.directed && f.a == src && f.b == dst
                } else {
                    !f.directed && ((f.a == src && f.b == dst) || (f.a == dst && f.b == src))
                }
            });
            if !found {
                return false;
            }
        }
    }
    true
}

/// Full check on a complete permutation: positive edges bijectively map to
/// positive edges, negated edges to negated edges, and every predicate maps
/// to a predicate already present.
fn preserves_all(p: &Pattern, perm: &[PNode]) -> bool {
    let map = |v: PNode| perm[v.index()];
    let edge_in = |list: &[PatternEdge], e: &PatternEdge| -> bool {
        list.iter().any(|f| {
            if e.directed {
                f.directed && f.a == e.a && f.b == e.b
            } else {
                !f.directed && ((f.a == e.a && f.b == e.b) || (f.a == e.b && f.b == e.a))
            }
        })
    };
    for e in p.positive_edges() {
        let mapped = PatternEdge {
            a: map(e.a),
            b: map(e.b),
            directed: e.directed,
        };
        if !edge_in(p.positive_edges(), &mapped) {
            return false;
        }
    }
    for e in p.negative_edges() {
        let mapped = PatternEdge {
            a: map(e.a),
            b: map(e.b),
            directed: e.directed,
        };
        if !edge_in(p.negative_edges(), &mapped) {
            return false;
        }
    }
    for pred in p.node_predicates() {
        let mapped = NodePredicate {
            node: map(pred.node),
            attr: pred.attr.clone(),
            op: pred.op,
            rhs: match &pred.rhs {
                PredRhs::Const(v) => PredRhs::Const(v.clone()),
                PredRhs::NodeAttr(o, a) => PredRhs::NodeAttr(map(*o), a.clone()),
            },
        };
        if !p.node_predicates().contains(&mapped) {
            return false;
        }
    }
    for pred in p.edge_predicates() {
        let mut mapped = pred.clone();
        mapped.a = map(pred.a);
        mapped.b = map(pred.b);
        let mut swapped = mapped.clone();
        std::mem::swap(&mut swapped.a, &mut swapped.b);
        if !p.edge_predicates().contains(&mapped) && !p.edge_predicates().contains(&swapped) {
            return false;
        }
    }
    // Subpatterns must map onto themselves, otherwise two embeddings of the
    // same subgraph could disagree about which nodes anchor the census.
    for sp in p.subpatterns() {
        let mut mapped: Vec<PNode> = sp.nodes.iter().map(|&v| map(v)).collect();
        mapped.sort_unstable();
        if mapped != sp.nodes {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Pattern;

    #[test]
    fn triangle_has_six_automorphisms() {
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 6);
    }

    #[test]
    fn path3_has_two() {
        let p = Pattern::parse("PATTERN p { ?A-?B; ?B-?C; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 2);
    }

    #[test]
    fn square_has_eight() {
        let p = Pattern::parse("PATTERN s { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 8);
    }

    #[test]
    fn clique4_has_24() {
        let p = Pattern::parse("PATTERN k4 { ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 24);
    }

    #[test]
    fn labels_break_symmetry() {
        let p = Pattern::parse(
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=1]; [?B.LABEL=2]; [?C.LABEL=2]; }",
        )
        .unwrap();
        // Only A fixed; B and C swap.
        assert_eq!(automorphism_group(&p).len(), 2);
    }

    #[test]
    fn directed_cycle_has_rotations_only() {
        let p = Pattern::parse("PATTERN c { ?A->?B; ?B->?C; ?C->?A; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 3);
    }

    #[test]
    fn directed_path_is_rigid() {
        let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 1);
    }

    #[test]
    fn negated_edges_respected() {
        // A-B, B-C with A!-C: swapping A and C is a symmetry; A<->B is not.
        let p = Pattern::parse("PATTERN p { ?A-?B; ?B-?C; ?A!-?C; }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 2);
    }

    #[test]
    fn subpattern_pins_nodes() {
        // Triangle with subpattern {A}: only automorphisms fixing A survive.
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN s {?A;} }").unwrap();
        assert_eq!(automorphism_group(&p).len(), 2);
    }

    #[test]
    fn join_predicates_respected() {
        // A-B with [?A.LABEL=?B.LABEL] is symmetric...
        let p = Pattern::parse("PATTERN e { ?A-?B; [?A.LABEL=?B.LABEL]; }").unwrap();
        // ...but the mapped predicate is [?B.LABEL=?A.LABEL], which is not
        // syntactically present, so only the identity survives. This is the
        // documented conservative behaviour: over-counting never happens,
        // and symmetric predicate pairs can be written explicitly.
        assert_eq!(automorphism_group(&p).len(), 1);

        let sym = Pattern::parse("PATTERN e { ?A-?B; [?A.LABEL=?B.LABEL]; [?B.LABEL=?A.LABEL]; }")
            .unwrap();
        assert_eq!(automorphism_group(&sym).len(), 2);
    }

    #[test]
    fn identity_always_present() {
        let p = Pattern::parse("PATTERN p { ?A; }").unwrap();
        let g = automorphism_group(&p);
        assert_eq!(g, vec![vec![PNode(0)]]);
    }
}
