//! Barabási–Albert preferential attachment.

use ego_graph::{Graph, GraphBuilder, Label, NodeId};
use rand::Rng;

/// Generate a Barabási–Albert graph with `n` nodes, each new node
/// attaching `m` edges to existing nodes with probability proportional to
/// degree. With `m = 5` this matches the paper's `|E| = 5 |V|` datasets.
///
/// The first `m` nodes form a seed clique-free core: node `i < m` exists
/// without edges; node `m` connects to all of them; subsequent nodes use
/// preferential attachment via the standard repeated-endpoints trick.
///
/// All nodes carry [`Label::UNLABELED`]; use
/// [`crate::labeler::assign_random_labels`] for labeled experiments.
///
/// # Panics
/// If `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m > 0, "m must be positive");
    assert!(n > m, "need more nodes ({n}) than edges per node ({m})");
    let mut b = GraphBuilder::undirected().with_capacity(n, n * m);
    b.add_nodes(n, Label::UNLABELED);

    // `endpoints` holds one entry per edge endpoint, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Node m connects to each of 0..m once, seeding the degree pool.
    let first = NodeId::from_index(m);
    for i in 0..m {
        let t = NodeId::from_index(i);
        b.add_edge(first, t);
        endpoints.push(first);
        endpoints.push(t);
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        let src = NodeId::from_index(v);
        chosen.clear();
        // Sample m distinct targets degree-proportionally (rejection on
        // duplicates; collisions are rare once the pool is large).
        let mut guard = 0;
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 50 * m {
                // Degenerate tiny pools: fall back to any not-yet-chosen node.
                for u in 0..v {
                    let u = NodeId::from_index(u);
                    if !chosen.contains(&u) {
                        chosen.push(u);
                        break;
                    }
                }
            }
        }
        for &t in &chosen {
            b.add_edge(src, t);
            endpoints.push(src);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn node_and_edge_counts() {
        let g = barabasi_albert(500, 5, &mut rng(7));
        assert_eq!(g.num_nodes(), 500);
        // m edges per node after the seed: m*(n - m - 1) + m.
        assert_eq!(g.num_edges(), 5 * (500 - 5 - 1) + 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = barabasi_albert(200, 3, &mut rng(42));
        let g2 = barabasi_albert(200, 3, &mut rng(42));
        assert_eq!(g1.num_edges(), g2.num_edges());
        for n in g1.node_ids() {
            assert_eq!(g1.neighbors(n), g2.neighbors(n));
        }
        let g3 = barabasi_albert(200, 3, &mut rng(43));
        let same = g1.node_ids().all(|n| g1.neighbors(n) == g3.neighbors(n));
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 5, &mut rng(1));
        let max_deg = g.max_degree();
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        // Hubs should far exceed the average degree.
        assert!((max_deg as f64) > 4.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn connected() {
        let g = barabasi_albert(300, 2, &mut rng(5));
        assert_eq!(ego_graph::stats::connected_components(&g), 1);
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_tiny_n() {
        barabasi_albert(3, 5, &mut rng(0));
    }

    #[test]
    fn m1_is_a_tree() {
        let g = barabasi_albert(100, 1, &mut rng(9));
        assert_eq!(g.num_edges(), 99);
        assert_eq!(ego_graph::stats::connected_components(&g), 1);
        assert_eq!(ego_graph::stats::total_triangles(&g), 0);
    }
}
