//! Label and attribute decoration for generated graphs.

use ego_graph::{AttrValue, Graph, GraphBuilder, Label};
use rand::Rng;

/// Return a copy of `g` with labels drawn uniformly from `0..num_labels`
/// ("For labeled graphs, the labels are generated randomly", Section V).
pub fn assign_random_labels<R: Rng>(g: &Graph, num_labels: u16, rng: &mut R) -> Graph {
    assert!(num_labels > 0);
    rebuild(g, |b| {
        for n in g.node_ids() {
            b.set_label(n, Label(rng.gen_range(0..num_labels)));
        }
    })
}

/// Return a copy of `g` with each edge given a `sign` attribute of `+1`
/// with probability `p_positive`, else `-1` — the signed networks of the
/// structural-balance application (Section I).
pub fn assign_random_signs<R: Rng>(g: &Graph, p_positive: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p_positive));
    rebuild(g, |b| {
        for (a, c) in g.edges() {
            let sign = if rng.gen_bool(p_positive) {
                1i64
            } else {
                -1i64
            };
            b.set_edge_attr(a, c, "sign", sign);
        }
    })
}

/// Return a copy of `g` where each node gets an integer attribute `name`
/// drawn uniformly from `range`.
pub fn assign_random_int_attr<R: Rng>(
    g: &Graph,
    name: &str,
    range: std::ops::Range<i64>,
    rng: &mut R,
) -> Graph {
    rebuild(g, |b| {
        for n in g.node_ids() {
            b.set_node_attr(n, name, AttrValue::Int(rng.gen_range(range.clone())));
        }
    })
}

/// Copy `g` into a builder (structure, labels, and node attributes are not
/// carried — labels only), apply `f`, rebuild.
fn rebuild(g: &Graph, f: impl FnOnce(&mut GraphBuilder)) -> Graph {
    let mut b = if g.is_directed() {
        GraphBuilder::directed()
    } else {
        GraphBuilder::undirected()
    };
    b = b.with_capacity(g.num_nodes(), g.num_edges());
    for n in g.node_ids() {
        b.add_node(g.label(n));
    }
    for (a, c) in g.edges() {
        b.add_edge(a, c);
    }
    // Carry existing attributes forward.
    for name in g.node_attrs().attribute_names() {
        for (n, v) in g.node_attrs().column(name) {
            b.set_node_attr(n, name, v.clone());
        }
    }
    for name in g.edge_attrs().attribute_names() {
        for (a, c) in g.edges() {
            if let Some(v) = g.edge_attr(a, c, name) {
                b.set_edge_attr(a, c, name, v.clone());
            }
        }
    }
    f(&mut b);
    b.build()
}

/// Number of nodes carrying each label (diagnostics for label balance).
pub fn label_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.num_labels() as usize];
    for n in g.node_ids() {
        hist[g.label(n).index()] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{barabasi_albert, rng};
    use ego_graph::NodeId;

    #[test]
    fn labels_roughly_uniform() {
        let g = barabasi_albert(2000, 3, &mut rng(0));
        let lg = assign_random_labels(&g, 4, &mut rng(1));
        assert_eq!(lg.num_labels(), 4);
        let hist = label_histogram(&lg);
        assert_eq!(hist.iter().sum::<usize>(), 2000);
        for &c in &hist {
            assert!((350..=650).contains(&c), "unbalanced: {hist:?}");
        }
        // Structure preserved.
        assert_eq!(lg.num_edges(), g.num_edges());
        for n in g.node_ids() {
            assert_eq!(lg.neighbors(n), g.neighbors(n));
        }
    }

    #[test]
    fn signs_cover_all_edges() {
        let g = barabasi_albert(100, 2, &mut rng(0));
        let sg = assign_random_signs(&g, 0.7, &mut rng(2));
        let mut pos = 0;
        let mut neg = 0;
        for (a, c) in sg.edges() {
            match sg.edge_attr(a, c, "sign") {
                Some(AttrValue::Int(1)) => pos += 1,
                Some(AttrValue::Int(-1)) => neg += 1,
                other => panic!("missing sign: {other:?}"),
            }
        }
        assert_eq!(pos + neg, sg.num_edges());
        assert!(pos > neg);
    }

    #[test]
    fn int_attr_in_range() {
        let g = barabasi_albert(50, 2, &mut rng(0));
        let ag = assign_random_int_attr(&g, "age", 18..65, &mut rng(3));
        for n in ag.node_ids() {
            match ag.node_attr(n, "age") {
                Some(AttrValue::Int(v)) => assert!((18..65).contains(v)),
                other => panic!("missing age: {other:?}"),
            }
        }
    }

    #[test]
    fn decorations_stack() {
        let g = barabasi_albert(50, 2, &mut rng(0));
        let g = assign_random_labels(&g, 3, &mut rng(1));
        let g = assign_random_signs(&g, 0.5, &mut rng(2));
        let g = assign_random_int_attr(&g, "age", 0..10, &mut rng(3));
        // All three decorations present.
        assert!(g.num_labels() <= 3);
        let (a, c) = g.edges().next().unwrap();
        assert!(g.edge_attr(a, c, "sign").is_some());
        assert!(g.node_attr(NodeId(0), "age").is_some());
    }
}
