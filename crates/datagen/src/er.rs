//! Erdős–Rényi random graphs.

use ego_graph::{FastHashSet, Graph, GraphBuilder, Label, NodeId};
use rand::Rng;

/// `G(n, m)`: exactly `m` distinct edges chosen uniformly among all node
/// pairs.
///
/// # Panics
/// If `m` exceeds the number of possible edges.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let possible = n * n.saturating_sub(1) / 2;
    assert!(m <= possible, "m={m} exceeds {possible} possible edges");
    let mut b = GraphBuilder::undirected().with_capacity(n, m);
    b.add_nodes(n, Label::UNLABELED);
    let mut seen: FastHashSet<(u32, u32)> = FastHashSet::default();
    // Rejection sampling is fine for sparse graphs (the census workloads);
    // for dense requests fall back to explicit enumeration.
    if m * 3 < possible {
        while seen.len() < m {
            let a = rng.gen_range(0..n as u32);
            let c = rng.gen_range(0..n as u32);
            if a == c {
                continue;
            }
            let key = (a.min(c), a.max(c));
            if seen.insert(key) {
                b.add_edge(NodeId(key.0), NodeId(key.1));
            }
        }
    } else {
        let mut all: Vec<(u32, u32)> = Vec::with_capacity(possible);
        for a in 0..n as u32 {
            for c in (a + 1)..n as u32 {
                all.push((a, c));
            }
        }
        // Partial Fisher-Yates.
        for i in 0..m {
            let j = rng.gen_range(i..all.len());
            all.swap(i, j);
            b.add_edge(NodeId(all[i].0), NodeId(all[i].1));
        }
    }
    b.build()
}

/// `G(n, p)`: each pair independently an edge with probability `p`.
pub fn erdos_renyi_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::undirected();
    b.add_nodes(n, Label::UNLABELED);
    if p >= 1.0 {
        for a in 0..n {
            for c in (a + 1)..n {
                b.add_edge(NodeId::from_index(a), NodeId::from_index(c));
            }
        }
        return b.build();
    }
    if p > 0.0 && n > 1 {
        // Geometric skipping (Batagelj & Brandes): iterate only over
        // realized edges in the lower triangle (w < v).
        let log1p = (1.0 - p).ln();
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        while v < n as i64 {
            let r: f64 = rng.gen(); // [0, 1)
            let skip = ((1.0 - r).ln() / log1p).floor() as i64;
            w += 1 + skip.max(0);
            while w >= v && v < n as i64 {
                w -= v;
                v += 1;
            }
            if v < n as i64 {
                b.add_edge(NodeId(w as u32), NodeId(v as u32));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, &mut rng(3));
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_dense_path() {
        // 10 nodes, 45 possible; ask for 40 (dense branch).
        let g = erdos_renyi_gnm(10, 40, &mut rng(3));
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn gnm_complete() {
        let g = erdos_renyi_gnm(8, 28, &mut rng(0));
        assert_eq!(g.num_edges(), 28);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_too_many_edges() {
        erdos_renyi_gnm(4, 100, &mut rng(0));
    }

    #[test]
    fn gnp_expected_density() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng(11));
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn gnp_zero_and_determinism() {
        let g = erdos_renyi_gnp(50, 0.0, &mut rng(1));
        assert_eq!(g.num_edges(), 0);
        let a = erdos_renyi_gnp(100, 0.1, &mut rng(5));
        let b = erdos_renyi_gnp(100, 0.1, &mut rng(5));
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
