//! # ego-datagen
//!
//! Synthetic graph and workload generators for the experimental
//! evaluation (Section V).
//!
//! * [`ba`] — Barabási–Albert preferential attachment, the paper's
//!   generator ("synthetic database graphs generated according to the
//!   preferential attachment model"); `m = 5` reproduces the paper's
//!   `|E| = 5 |V|` setting.
//! * [`er`] — Erdős–Rényi `G(n, m)` / `G(n, p)` for robustness tests.
//! * [`ws`] — Watts–Strogatz small-world graphs (high clustering, so
//!   triangle-heavy census workloads).
//! * [`labeler`] — uniform random labels ("labels are generated
//!   randomly"), attribute decoration, and ±1 edge signs for the
//!   structural-balance application.
//! * [`dblp`] — a community-structured temporal co-authorship generator
//!   standing in for the paper's DBLP snapshot (SIGMOD/VLDB/ICDE
//!   2001–2010), which is not available offline. It produces a train
//!   graph (years 0..split) and test pairs (new collaborations in
//!   years split..horizon), preserving what the link prediction
//!   experiment exercises: skewed collaboration degree, triadic closure,
//!   and temporally persistent communities.
//!
//! All generators are deterministic given a seed.

pub mod ba;
pub mod dblp;
pub mod er;
pub mod labeler;
pub mod ws;

pub use ba::barabasi_albert;
pub use dblp::{DblpConfig, DblpData};
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use labeler::{assign_random_labels, assign_random_signs};
pub use ws::watts_strogatz;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Create the crate's deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
