//! Watts–Strogatz small-world graphs.
//!
//! High clustering with short paths — a useful stress workload for
//! triangle-census queries, complementing the paper's preferential
//! attachment graphs.

use ego_graph::{Graph, GraphBuilder, Label, NodeId};
use rand::Rng;

/// Generate a Watts–Strogatz graph: a ring of `n` nodes each connected to
/// its `k` nearest neighbors on each side (so initial degree `2k`), with
/// every edge rewired to a uniform random target with probability `beta`.
///
/// # Panics
/// If `n <= 2 * k` or `k == 0`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(k > 0, "k must be positive");
    assert!(n > 2 * k, "need n > 2k (got n={n}, k={k})");
    assert!((0.0..=1.0).contains(&beta));
    let mut b = GraphBuilder::undirected().with_capacity(n, n * k);
    b.add_nodes(n, Label::UNLABELED);
    for i in 0..n {
        for d in 1..=k {
            let j = (i + d) % n;
            if rng.gen_bool(beta) {
                // Rewire: keep source, pick a random non-self target. The
                // builder dedupes any accidental parallel edge, matching
                // the usual "skip duplicates" formulation closely enough
                // for workload purposes.
                let mut t = rng.gen_range(0..n);
                while t == i {
                    t = rng.gen_range(0..n);
                }
                b.add_edge(NodeId::from_index(i), NodeId::from_index(t));
            } else {
                b.add_edge(NodeId::from_index(i), NodeId::from_index(j));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use ego_graph::stats;

    #[test]
    fn ring_lattice_when_beta_zero() {
        let g = watts_strogatz(20, 2, 0.0, &mut rng(0));
        assert_eq!(g.num_edges(), 40);
        for nid in g.node_ids() {
            assert_eq!(g.degree(nid), 4);
        }
        // Ring lattice with k=2 has triangles everywhere.
        assert!(stats::average_clustering(&g) > 0.4);
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let ordered = watts_strogatz(500, 3, 0.0, &mut rng(1));
        let chaotic = watts_strogatz(500, 3, 1.0, &mut rng(1));
        assert!(stats::average_clustering(&ordered) > stats::average_clustering(&chaotic));
    }

    #[test]
    fn edge_count_upper_bound() {
        // Rewiring can only merge into existing edges, never add.
        let g = watts_strogatz(100, 4, 0.5, &mut rng(2));
        assert!(g.num_edges() <= 400);
        assert!(g.num_edges() > 300); // few collisions expected
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn rejects_small_ring() {
        watts_strogatz(4, 2, 0.0, &mut rng(0));
    }
}
