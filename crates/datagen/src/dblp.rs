//! Synthetic DBLP-like temporal co-authorship data.
//!
//! The paper's link prediction experiment (Section V-B) uses SIGMOD/VLDB/
//! ICDE publications from 2001–2010: co-authorship from 2001–2005 predicts
//! collaborations in 2006–2010. That snapshot is not available offline, so
//! this generator produces a synthetic collaboration network with the
//! properties the experiment depends on:
//!
//! * **Communities** — authors belong to research communities; papers are
//!   written mostly within a community (occasionally across), so common
//!   neighborhoods carry signal about future links.
//! * **Skewed productivity** — authors are chosen per paper with
//!   probability proportional to (1 + past papers), giving the heavy-tail
//!   collaboration degrees of real DBLP.
//! * **Temporal persistence** — the same communities generate papers in
//!   both the train and test periods, so structure observed early
//!   predicts later collaborations.
//!
//! Papers are author cliques of 2–5 (real database venues average ~3
//! authors/paper).

use ego_graph::{FastHashSet, Graph, GraphBuilder, Label, NodeId};
use rand::Rng;

/// Configuration for the generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of authors.
    pub num_authors: usize,
    /// Number of research communities.
    pub num_communities: usize,
    /// Papers generated per year.
    pub papers_per_year: usize,
    /// Total years; years `0..split_year` are train, the rest test.
    pub horizon_years: usize,
    /// First test year.
    pub split_year: usize,
    /// Probability a paper draws one author from a foreign community.
    pub cross_community_prob: f64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            num_authors: 2000,
            num_communities: 40,
            papers_per_year: 600,
            horizon_years: 10,
            split_year: 5,
            cross_community_prob: 0.1,
        }
    }
}

/// The generated dataset.
#[derive(Clone, Debug)]
pub struct DblpData {
    /// Co-authorship graph over the training period (node = author).
    pub train: Graph,
    /// Pairs collaborating in the test period that did **not** collaborate
    /// during training — the positives to predict. Normalized `(a, b)`
    /// with `a < b`, sorted.
    pub test_new_edges: Vec<(NodeId, NodeId)>,
    /// Community of each author (exposed for analysis; labels in the train
    /// graph are `community % 4` to keep a small label alphabet).
    pub communities: Vec<u16>,
}

/// Generate a dataset.
pub fn generate<R: Rng>(cfg: &DblpConfig, rng: &mut R) -> DblpData {
    assert!(cfg.num_authors >= 10);
    assert!(cfg.num_communities >= 1);
    assert!(cfg.split_year > 0 && cfg.split_year < cfg.horizon_years);

    let n = cfg.num_authors;
    let communities: Vec<u16> = (0..n)
        .map(|_| rng.gen_range(0..cfg.num_communities as u16))
        .collect();
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_communities];
    for (i, &c) in communities.iter().enumerate() {
        members[c as usize].push(i as u32);
    }
    // Guard against empty communities in tiny configs.
    for (c, m) in members.iter_mut().enumerate() {
        if m.is_empty() {
            m.push((c % n) as u32);
        }
    }

    // Author weights for preferential selection: 1 + papers written.
    let mut weight: Vec<u64> = vec![1; n];

    let mut train_edges: FastHashSet<(u32, u32)> = FastHashSet::default();
    let mut test_edges: FastHashSet<(u32, u32)> = FastHashSet::default();

    let mut coauthors: Vec<u32> = Vec::with_capacity(5);
    for year in 0..cfg.horizon_years {
        let is_train = year < cfg.split_year;
        for _ in 0..cfg.papers_per_year {
            let comm = rng.gen_range(0..cfg.num_communities);
            let team_size = rng.gen_range(2..=5usize);
            coauthors.clear();
            // Weighted sampling within the community (linear scan — member
            // lists are small); rejection on duplicates.
            let pool = &members[comm];
            let total_w: u64 = pool.iter().map(|&a| weight[a as usize]).sum();
            let mut guard = 0;
            while coauthors.len() < team_size.min(pool.len()) && guard < 200 {
                guard += 1;
                let mut pick = rng.gen_range(0..total_w);
                let mut chosen = pool[0];
                for &a in pool {
                    let w = weight[a as usize];
                    if pick < w {
                        chosen = a;
                        break;
                    }
                    pick -= w;
                }
                if !coauthors.contains(&chosen) {
                    coauthors.push(chosen);
                }
            }
            // Occasionally pull in a foreign collaborator.
            if rng.gen_bool(cfg.cross_community_prob) {
                let mut f = rng.gen_range(0..n as u32);
                let mut guard = 0;
                while coauthors.contains(&f) && guard < 20 {
                    f = rng.gen_range(0..n as u32);
                    guard += 1;
                }
                if !coauthors.contains(&f) {
                    coauthors.push(f);
                }
            }
            if coauthors.len() < 2 {
                continue;
            }
            for &a in &coauthors {
                weight[a as usize] += 1;
            }
            for i in 0..coauthors.len() {
                for j in (i + 1)..coauthors.len() {
                    let (x, y) = (
                        coauthors[i].min(coauthors[j]),
                        coauthors[i].max(coauthors[j]),
                    );
                    if is_train {
                        train_edges.insert((x, y));
                    } else {
                        test_edges.insert((x, y));
                    }
                }
            }
        }
    }

    let mut b = GraphBuilder::undirected().with_capacity(n, train_edges.len());
    for &c in &communities {
        b.add_node(Label(c % 4));
    }
    for &(x, y) in &train_edges {
        b.add_edge(NodeId(x), NodeId(y));
    }
    let train = b.build();

    let mut test_new_edges: Vec<(NodeId, NodeId)> = test_edges
        .iter()
        .filter(|e| !train_edges.contains(e))
        .map(|&(x, y)| (NodeId(x), NodeId(y)))
        .collect();
    test_new_edges.sort_unstable();

    DblpData {
        train,
        test_new_edges,
        communities,
    }
}

impl DblpData {
    /// Is `(a, b)` a new collaboration in the test period?
    pub fn is_positive(&self, a: NodeId, b: NodeId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.test_new_edges.binary_search(&key).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn small_cfg() -> DblpConfig {
        DblpConfig {
            num_authors: 300,
            num_communities: 10,
            papers_per_year: 100,
            horizon_years: 10,
            split_year: 5,
            cross_community_prob: 0.1,
        }
    }

    #[test]
    fn generates_nonempty_train_and_test() {
        let d = generate(&small_cfg(), &mut rng(7));
        assert_eq!(d.train.num_nodes(), 300);
        assert!(d.train.num_edges() > 100);
        assert!(!d.test_new_edges.is_empty());
    }

    #[test]
    fn test_edges_are_new() {
        let d = generate(&small_cfg(), &mut rng(7));
        for &(a, b) in &d.test_new_edges {
            assert!(!d.train.has_undirected_edge(a, b), "({a:?},{b:?}) in train");
            assert!(d.is_positive(a, b));
            assert!(d.is_positive(b, a));
        }
    }

    #[test]
    fn deterministic() {
        let d1 = generate(&small_cfg(), &mut rng(3));
        let d2 = generate(&small_cfg(), &mut rng(3));
        assert_eq!(d1.train.num_edges(), d2.train.num_edges());
        assert_eq!(d1.test_new_edges, d2.test_new_edges);
    }

    #[test]
    fn collaboration_degrees_are_skewed() {
        // Use a sparse config: large communities that papers cannot
        // saturate, so preferential selection has room to concentrate.
        let cfg = DblpConfig {
            num_authors: 2000,
            num_communities: 10,
            papers_per_year: 150,
            ..small_cfg()
        };
        let d = generate(&cfg, &mut rng(5));
        let avg = 2.0 * d.train.num_edges() as f64 / d.train.num_nodes() as f64;
        assert!(
            d.train.max_degree() as f64 > 2.5 * avg,
            "max {} vs avg {avg}",
            d.train.max_degree()
        );
    }

    #[test]
    fn community_structure_visible_in_clustering() {
        let d = generate(&small_cfg(), &mut rng(5));
        // Clique-per-paper within communities gives strong clustering.
        assert!(ego_graph::stats::average_clustering(&d.train) > 0.15);
    }

    #[test]
    fn common_neighbors_predict_links() {
        // The core sanity property behind Figure 4(h): pairs with common
        // train-graph neighbors are far more likely to be positives than
        // random pairs.
        let d = generate(&small_cfg(), &mut rng(9));
        let g = &d.train;
        let mut with_common = 0usize;
        let mut with_common_pos = 0usize;
        for a in g.node_ids() {
            for b in g.node_ids() {
                if b <= a || g.has_undirected_edge(a, b) {
                    continue;
                }
                let common =
                    ego_graph::neighborhood::intersect_sorted(g.neighbors(a), g.neighbors(b));
                if common.len() >= 2 {
                    with_common += 1;
                    if d.is_positive(a, b) {
                        with_common_pos += 1;
                    }
                }
            }
        }
        let base_rate =
            d.test_new_edges.len() as f64 / ((g.num_nodes() * (g.num_nodes() - 1)) / 2) as f64;
        let signal_rate = with_common_pos as f64 / with_common.max(1) as f64;
        assert!(
            signal_rate > 5.0 * base_rate,
            "signal {signal_rate} vs base {base_rate}"
        );
    }
}
