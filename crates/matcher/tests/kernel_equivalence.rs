//! Matcher-level kernel equivalence: the CN matcher's match lists must be
//! bit-identical whichever set-intersection kernel is forced and however
//! many threads shard the candidate/extraction phases. This is the
//! acceptance test for the kernel rewiring — any divergence between
//! merge, gallop, bitset, and adaptive dispatch shows up as a differing
//! embedding list here.

use ego_graph::setops::{self, Kernel};
use ego_graph::{Graph, GraphBuilder, Label, NodeId};
use ego_matcher::parallel::enumerate_parallel;
use ego_matcher::{MatchStats, MatcherKind};
use ego_pattern::Pattern;
use proptest::prelude::*;
use std::sync::Mutex;

/// The kernel override is process-global; tests that force kernels must
/// not interleave.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn circulant(n: u32, offsets: &[u32], labels: u16) -> Graph {
    let mut b = GraphBuilder::undirected();
    for i in 0..n {
        b.add_node(Label((i % labels as u32) as u16));
    }
    for i in 0..n {
        for &d in offsets {
            b.add_edge(NodeId(i), NodeId((i + d) % n));
        }
    }
    b.build()
}

fn patterns() -> Vec<Pattern> {
    [
        "PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }",
        "PATTERN wedge { ?A-?B; ?B-?C; ?A!-?C; }",
        "PATTERN ltri { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=0]; }",
        "PATTERN clq4 { ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; }",
    ]
    .iter()
    .map(|t| Pattern::parse(t).unwrap())
    .collect()
}

#[test]
fn forced_kernels_and_thread_counts_are_bit_identical() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let g = circulant(120, &[1, 2, 4, 9], 3);
    for p in &patterns() {
        // Reference: merge kernel, sequential.
        setops::set_kernel(Kernel::Merge);
        let mut reference = ego_matcher::find_embeddings(&g, p, MatcherKind::CandidateNeighbors);
        reference.sort_unstable();

        for kernel in [
            Kernel::Merge,
            Kernel::Gallop,
            Kernel::Bitset,
            Kernel::Adaptive,
        ] {
            setops::set_kernel(kernel);
            for threads in [1, 2, 4, 8] {
                let got = enumerate_parallel(&g, p, threads);
                assert_eq!(
                    got,
                    reference,
                    "pattern={} kernel={} threads={threads}",
                    p.name(),
                    kernel.name()
                );
            }
        }
    }
    setops::set_kernel(Kernel::Adaptive);
}

#[test]
fn scan_accounting_is_kernel_and_thread_invariant() {
    let _guard = KERNEL_LOCK.lock().unwrap();
    let g = circulant(90, &[1, 3, 5], 2);
    let p = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();

    setops::set_kernel(Kernel::Merge);
    let mut base = MatchStats::default();
    ego_matcher::parallel::enumerate_parallel_with_stats(&g, &p, 1, &mut base);

    for kernel in [Kernel::Gallop, Kernel::Bitset, Kernel::Adaptive] {
        setops::set_kernel(kernel);
        for threads in [1, 4] {
            let mut s = MatchStats::default();
            ego_matcher::parallel::enumerate_parallel_with_stats(&g, &p, threads, &mut s);
            // The kernel choice changes HOW an intersection runs, never
            // how much match work exists.
            assert_eq!(s.initial_candidates, base.initial_candidates);
            assert_eq!(s.pruned_candidates, base.pruned_candidates);
            assert_eq!(s.raw_embeddings, base.raw_embeddings);
            assert_eq!(
                s.extension_candidates_scanned,
                base.extension_candidates_scanned,
                "kernel={} threads={threads}",
                kernel.name()
            );
            assert!(s.setops.total_calls() > 0, "kernel counters must tally");
        }
    }
    setops::set_kernel(Kernel::Adaptive);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized graphs: CN match lists stay identical across kernels
    /// and thread counts (the adaptive dispatcher crosses its gallop and
    /// bitset thresholds at different points on different graphs, so this
    /// exercises mixed dispatch paths).
    #[test]
    fn random_graphs_bit_identical(
        n in 8u32..60,
        raw_edges in prop::collection::vec((any::<u32>(), any::<u32>()), 5..150),
        labels in 1u16..4,
    ) {
        let _guard = KERNEL_LOCK.lock().unwrap();
        let mut b = GraphBuilder::undirected();
        for i in 0..n {
            b.add_node(Label((i % labels as u32) as u16));
        }
        for (x, y) in raw_edges {
            let a = NodeId(x % n);
            let c = NodeId(y % n);
            if a != c {
                b.add_edge(a, c);
            }
        }
        let g = b.build();
        let p = Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();

        setops::set_kernel(Kernel::Merge);
        let mut reference = ego_matcher::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
        reference.sort_unstable();
        for kernel in [Kernel::Gallop, Kernel::Bitset, Kernel::Adaptive] {
            setops::set_kernel(kernel);
            for threads in [1, 3] {
                let got = enumerate_parallel(&g, &p, threads);
                prop_assert_eq!(&got, &reference, "kernel={} threads={}", kernel.name(), threads);
            }
        }
        setops::set_kernel(Kernel::Adaptive);
    }
}
