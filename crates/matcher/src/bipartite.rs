//! Maximum bipartite matching (Kuhn's augmenting-path algorithm).
//!
//! Used by the GQL-style baseline's *semi-perfect matching* refinement:
//! a candidate `n` for pattern node `v` survives only if `v`'s pattern
//! neighbors can be matched one-to-one with distinct candidate neighbors
//! of `n`. The left side (pattern neighbors) has at most a handful of
//! vertices, so Kuhn's O(V·E) is effectively free.

/// Compute the size of a maximum matching in a bipartite graph given as
/// `adj[l]` = right-vertex indices adjacent to left vertex `l`.
/// `right_size` is the number of right vertices.
pub fn max_bipartite_matching(adj: &[Vec<usize>], right_size: usize) -> usize {
    let mut match_right: Vec<Option<usize>> = vec![None; right_size];
    let mut matched = 0;
    let mut visited = vec![false; right_size];
    for l in 0..adj.len() {
        visited.iter_mut().for_each(|v| *v = false);
        if try_kuhn(l, adj, &mut match_right, &mut visited) {
            matched += 1;
        }
    }
    matched
}

fn try_kuhn(
    l: usize,
    adj: &[Vec<usize>],
    match_right: &mut [Option<usize>],
    visited: &mut [bool],
) -> bool {
    for &r in &adj[l] {
        if visited[r] {
            continue;
        }
        visited[r] = true;
        if match_right[r].is_none() || try_kuhn(match_right[r].unwrap(), adj, match_right, visited)
        {
            match_right[r] = Some(l);
            return true;
        }
    }
    false
}

/// Does a matching saturating every left vertex exist?
pub fn has_perfect_left_matching(adj: &[Vec<usize>], right_size: usize) -> bool {
    max_bipartite_matching(adj, right_size) == adj.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_square() {
        // 2 left, 2 right, crossing edges.
        let adj = vec![vec![0, 1], vec![0, 1]];
        assert_eq!(max_bipartite_matching(&adj, 2), 2);
        assert!(has_perfect_left_matching(&adj, 2));
    }

    #[test]
    fn contention_for_single_right() {
        let adj = vec![vec![0], vec![0]];
        assert_eq!(max_bipartite_matching(&adj, 1), 1);
        assert!(!has_perfect_left_matching(&adj, 1));
    }

    #[test]
    fn augmenting_path_needed() {
        // l0 -> {r0}, l1 -> {r0, r1}: greedy could match l1-r0 first; the
        // augmenting path must reroute.
        let adj = vec![vec![0, 1], vec![0]];
        assert_eq!(max_bipartite_matching(&adj, 2), 2);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(max_bipartite_matching(&[], 0), 0);
        assert!(has_perfect_left_matching(&[], 0));
        let adj = vec![vec![]];
        assert_eq!(max_bipartite_matching(&adj, 3), 0);
        assert!(!has_perfect_left_matching(&adj, 3));
    }

    #[test]
    fn larger_random_structure() {
        // Chain structure forcing a cascade of augmentations:
        // l_i -> {r_i, r_{i+1}} for i in 0..4, l_4 -> {r_0}.
        let adj = vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0]];
        assert_eq!(max_bipartite_matching(&adj, 5), 5);
    }
}
