//! GraphQL-style baseline matcher.
//!
//! Reimplements the essence of He & Singh's GraphQL (SIGMOD 2008), the
//! comparator of the paper's Figures 4(a)/4(b), whose binaries are not
//! available:
//!
//! 1. profile-based candidate filtering (identical front end to CN);
//! 2. iterative refinement by **semi-perfect matching**: candidate `n`
//!    for pattern node `v` survives only if a bipartite matching exists
//!    that assigns every pattern neighbor `v'` of `v` a *distinct*
//!    graph neighbor of `n` drawn from `C(v')`;
//! 3. backtracking search that, at each extension step, scans the full
//!    candidate set `C(v_{i+1})` and tests adjacency against the already
//!    matched nodes — the cost the paper's candidate-neighbor sets avoid
//!    ("this check requires scanning over comparatively large candidate
//!    sets").
//!
//! The semi-perfect-matching refinement prunes *more aggressively per
//! candidate* than CN's emptiness test (matching vs. mere non-emptiness),
//! mirroring the paper's remark that their approach "does not prune as
//! aggressively for some types of query patterns" yet wins overall.

use crate::bipartite::has_perfect_left_matching;
use crate::candidates::CandidateSpace;
use crate::filter::passes_filters;
use crate::stats::MatchStats;
use ego_graph::profile::ProfileIndex;
use ego_graph::{Graph, NodeId};
use ego_pattern::{Pattern, SearchOrder};

/// Enumerate all embeddings of `p` in `g` with the GQL-style algorithm.
pub fn enumerate(g: &Graph, p: &Pattern, stats: &mut MatchStats) -> Vec<Vec<NodeId>> {
    let profiles = ProfileIndex::build(g);
    enumerate_with_profiles(g, p, &profiles, stats)
}

/// [`enumerate`] reusing a prebuilt profile index.
pub fn enumerate_with_profiles(
    g: &Graph,
    p: &Pattern,
    profiles: &ProfileIndex,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    let mut cs = CandidateSpace::enumerate(g, p, profiles, stats);
    refine(g, p, &mut cs, stats);
    search_over(g, p, &cs, stats)
}

/// Semi-perfect-matching refinement to a fixpoint.
fn refine(g: &Graph, p: &Pattern, cs: &mut CandidateSpace, stats: &mut MatchStats) {
    let mut passes = 0;
    loop {
        passes += 1;
        let mut changed = false;
        for v in p.nodes() {
            let vi = v.index();
            let pn = cs.pneigh[vi].clone();
            if pn.is_empty() {
                continue;
            }
            for ci in 0..cs.cands[vi].len() {
                if !cs.alive[vi][ci] {
                    continue;
                }
                let n = cs.cands[vi][ci];
                // Bipartite graph: left = pattern neighbors, right = graph
                // neighbors of n; edge when the graph neighbor is an alive
                // candidate for that pattern neighbor.
                let gneigh = g.neighbors(n);
                let adj: Vec<Vec<usize>> = pn
                    .iter()
                    .map(|&vp| {
                        gneigh
                            .iter()
                            .enumerate()
                            .filter(|&(_, &m)| cs.is_alive(vp, m))
                            .map(|(ri, _)| ri)
                            .collect()
                    })
                    .collect();
                if !has_perfect_left_matching(&adj, gneigh.len()) {
                    cs.alive[vi][ci] = false;
                    cs.alive_bits[vi].remove(n);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    stats.prune_iterations = passes;
    stats.pruned_candidates = cs
        .alive
        .iter()
        .map(|a| a.iter().filter(|&&x| x).count())
        .sum();
}

/// Backtracking search over full candidate sets. Exposed for the
/// SPath-style matcher, which shares this extraction.
pub(crate) fn search_over(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    let order = SearchOrder::new(p);
    let np = p.num_nodes();
    let mut out = Vec::new();
    let mut assignment = vec![NodeId(0); np];
    // Pre-collect alive candidate lists per pattern node.
    let alive_lists: Vec<Vec<NodeId>> = p
        .nodes()
        .map(|v| cs.alive_candidates(v).collect())
        .collect();

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        p: &Pattern,
        order: &SearchOrder,
        alive_lists: &[Vec<NodeId>],
        depth: usize,
        assignment: &mut Vec<NodeId>,
        out: &mut Vec<Vec<NodeId>>,
        stats: &mut MatchStats,
    ) {
        let np = p.num_nodes();
        let v = order.order[depth];
        // Scan the FULL candidate set of v (the GQL extension cost).
        for &n in &alive_lists[v.index()] {
            stats.extension_candidates_scanned += 1;
            // Injectivity.
            if (0..depth).any(|d| assignment[order.order[d].index()] == n) {
                continue;
            }
            // Adjacency (with direction) to every already-matched pattern
            // neighbor.
            let ok = order.backward[depth].iter().all(|&j| {
                let vj = order.order[j];
                let nj = assignment[vj.index()];
                edge_satisfied(g, p, vj, nj, v, n)
            });
            if !ok {
                continue;
            }
            assignment[v.index()] = n;
            if depth + 1 == np {
                stats.raw_embeddings += 1;
                if passes_filters(g, p, assignment) {
                    stats.filtered_embeddings += 1;
                    out.push(assignment.clone());
                }
            } else {
                stats.partial_matches += 1;
                dfs(g, p, order, alive_lists, depth + 1, assignment, out, stats);
            }
        }
    }

    dfs(
        g,
        p,
        &order,
        &alive_lists,
        0,
        &mut assignment,
        &mut out,
        stats,
    );
    out
}

/// Is the pattern edge between `vj` (matched to `nj`) and `v` (tentatively
/// `n`) satisfied in the graph, including direction?
fn edge_satisfied(
    g: &Graph,
    p: &Pattern,
    vj: ego_pattern::PNode,
    nj: NodeId,
    v: ego_pattern::PNode,
    n: NodeId,
) -> bool {
    if !g.is_directed() {
        return g.has_undirected_edge(nj, n);
    }
    let (jv, vj_rev) = p.directed_requirements(vj, v);
    match (jv, vj_rev) {
        (true, true) => g.has_directed_edge(nj, n) && g.has_directed_edge(n, nj),
        (true, false) => g.has_directed_edge(nj, n),
        (false, true) => g.has_directed_edge(n, nj),
        (false, false) => g.has_undirected_edge(nj, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use ego_graph::{GraphBuilder, Label};
    use ego_pattern::builtin;

    fn two_triangles() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(5, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn agrees_with_cn_on_triangles() {
        let g = two_triangles();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let mut a = crate::find_embeddings(&g, &p, MatcherKind::GqlStyle);
        let mut b = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_with_cn_on_builtins_random_graph() {
        // Deterministic pseudo-random graph without pulling in `rand`:
        // a circulant graph with labels from a modular rule.
        let n = 60u32;
        let mut b = GraphBuilder::undirected();
        for i in 0..n {
            b.add_node(Label((i % 4) as u16));
        }
        for i in 0..n {
            for &d in &[1u32, 2, 5, 9] {
                b.add_edge(NodeId(i), NodeId((i + d) % n));
            }
        }
        let g = b.build();
        for p in builtin::figure3() {
            let mut e1 = crate::find_embeddings(&g, &p, MatcherKind::GqlStyle);
            let mut e2 = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
            e1.sort();
            e2.sort();
            assert_eq!(e1, e2, "pattern {}", p.name());
        }
    }

    #[test]
    fn semi_perfect_matching_prunes_multiplicity() {
        // Pattern: node with two distinct label-1 neighbors. Graph node 0
        // has only ONE label-1 neighbor but two label-0 ones.
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0)); // 0
        b.add_node(Label(1)); // 1
        b.add_node(Label(0)); // 2
        b.add_node(Label(0)); // 3
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(0), NodeId(3));
        let g = b.build();
        let p = Pattern::parse("PATTERN p { ?H-?X; ?H-?Y; [?X.LABEL=1]; [?Y.LABEL=1]; }").unwrap();
        let embs = crate::find_embeddings(&g, &p, MatcherKind::GqlStyle);
        assert!(embs.is_empty());
    }

    #[test]
    fn directed_agreement() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(6, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (3, 4), (4, 5)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        let g = b.build();
        let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; ?A!->?C; }").unwrap();
        let mut e1 = crate::find_embeddings(&g, &p, MatcherKind::GqlStyle);
        let mut e2 = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
        e1.sort();
        e2.sort();
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), 1); // only 3->4->5 lacks the closing edge
    }

    #[test]
    fn gql_scans_more_extension_candidates_than_cn() {
        let g = two_triangles();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let mut s_gql = MatchStats::default();
        let mut s_cn = MatchStats::default();
        crate::find_embeddings_with_stats(&g, &p, MatcherKind::GqlStyle, &mut s_gql);
        crate::find_embeddings_with_stats(&g, &p, MatcherKind::CandidateNeighbors, &mut s_cn);
        assert!(
            s_gql.extension_candidates_scanned >= s_cn.extension_candidates_scanned,
            "gql {} < cn {}",
            s_gql.extension_candidates_scanned,
            s_cn.extension_candidates_scanned
        );
    }
}
