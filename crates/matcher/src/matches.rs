//! Match representation and automorphism-deduplication.

use ego_graph::{FastHashSet, NodeId};
use ego_pattern::{automorphism_group, PNode, Pattern};

/// One distinct match: a representative embedding
/// (`nodes[v.index()]` = image of pattern node `v`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternMatch {
    /// Images indexed by pattern node.
    pub nodes: Vec<NodeId>,
}

impl PatternMatch {
    /// Image of pattern node `v` (the paper's `μ(v, M)`).
    #[inline]
    pub fn image(&self, v: PNode) -> NodeId {
        self.nodes[v.index()]
    }

    /// The match's node set, sorted and deduplicated. (Distinct pattern
    /// nodes always map to distinct graph nodes, so this equals `nodes`
    /// sorted.)
    pub fn node_set(&self) -> Vec<NodeId> {
        let mut s = self.nodes.clone();
        s.sort_unstable();
        s
    }
}

/// All distinct matches of a pattern in a graph.
#[derive(Clone, Debug, Default)]
pub struct MatchList {
    matches: Vec<PatternMatch>,
}

impl MatchList {
    /// Deduplicate raw embeddings by the automorphism group of `p`,
    /// keeping one canonical representative per orbit.
    pub fn from_embeddings(p: &Pattern, embeddings: Vec<Vec<NodeId>>) -> Self {
        let auts = automorphism_group(p);
        if auts.len() <= 1 {
            return MatchList {
                matches: embeddings
                    .into_iter()
                    .map(|nodes| PatternMatch { nodes })
                    .collect(),
            };
        }
        let mut seen: FastHashSet<Vec<NodeId>> = FastHashSet::default();
        let mut matches = Vec::with_capacity(embeddings.len() / auts.len());
        let mut permuted = vec![NodeId(0); p.num_nodes()];
        for emb in embeddings {
            // Canonical form: the lexicographically smallest permutation of
            // the embedding under the automorphism group.
            let mut canon: Option<Vec<NodeId>> = None;
            for aut in &auts {
                // aut maps v -> aut[v]; the permuted embedding assigns to v
                // the image of aut[v].
                for (vi, &img_v) in aut.iter().enumerate() {
                    permuted[vi] = emb[img_v.index()];
                }
                match &canon {
                    None => canon = Some(permuted.clone()),
                    Some(c) if permuted < *c => canon = Some(permuted.clone()),
                    _ => {}
                }
            }
            let canon = canon.expect("group is nonempty");
            if seen.insert(canon.clone()) {
                matches.push(PatternMatch { nodes: canon });
            }
        }
        MatchList { matches }
    }

    /// Construct directly from already-distinct matches.
    pub fn from_matches(matches: Vec<PatternMatch>) -> Self {
        MatchList { matches }
    }

    /// Number of distinct matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True if no matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// The matches.
    pub fn matches(&self) -> &[PatternMatch] {
        &self.matches
    }

    /// Iterate matches.
    pub fn iter(&self) -> impl Iterator<Item = &PatternMatch> {
        self.matches.iter()
    }
}

impl std::ops::Index<usize> for MatchList {
    type Output = PatternMatch;
    fn index(&self, i: usize) -> &PatternMatch {
        &self.matches[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri_pattern() -> Pattern {
        Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap()
    }

    #[test]
    fn dedup_triangle_embeddings() {
        let p = tri_pattern();
        // All 6 permutations of {1,2,3} as embeddings of one triangle.
        let ids = [1u32, 2, 3];
        let mut embs = Vec::new();
        for a in 0..3 {
            for b in 0..3 {
                if b == a {
                    continue;
                }
                let c = 3 - a - b;
                embs.push(vec![NodeId(ids[a]), NodeId(ids[b]), NodeId(ids[c])]);
            }
        }
        let list = MatchList::from_embeddings(&p, embs);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].node_set(), vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn distinct_triangles_stay_distinct() {
        let p = tri_pattern();
        let embs = vec![
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(4), NodeId(5), NodeId(6)],
            vec![NodeId(3), NodeId(2), NodeId(1)],
        ];
        let list = MatchList::from_embeddings(&p, embs);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn rigid_pattern_skips_dedup() {
        let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; }").unwrap();
        let embs = vec![
            vec![NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(3), NodeId(2), NodeId(1)],
        ];
        // A directed path is rigid: both embeddings are distinct matches.
        let list = MatchList::from_embeddings(&p, embs);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn image_accessor() {
        let m = PatternMatch {
            nodes: vec![NodeId(9), NodeId(4)],
        };
        assert_eq!(m.image(PNode(0)), NodeId(9));
        assert_eq!(m.image(PNode(1)), NodeId(4));
        assert_eq!(m.node_set(), vec![NodeId(4), NodeId(9)]);
    }

    #[test]
    fn empty_list() {
        let p = tri_pattern();
        let list = MatchList::from_embeddings(&p, vec![]);
        assert!(list.is_empty());
        assert_eq!(list.iter().count(), 0);
    }
}
