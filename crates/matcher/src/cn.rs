//! The candidate-neighbor (CN) matching algorithm — Algorithm 1.
//!
//! After candidate enumeration, CN-set initialization, and simultaneous
//! pruning (all in [`crate::candidates`]), matches are extracted in a
//! forward manner along a connected-prefix order: the possible images of
//! `v_{i+1}` are the intersection of the candidate-neighbor sets
//! `CN(n_{j}, v_{j}, v_{i+1})` over the already-matched pattern neighbors
//! `v_j` of `v_{i+1}`. These sets are *small* after pruning, which is
//! where the orders-of-magnitude win over candidate-set scanning comes
//! from.

use crate::candidates::CandidateSpace;
use crate::filter::passes_filters;
use crate::stats::MatchStats;
use ego_graph::profile::ProfileIndex;
use ego_graph::{setops, FastHashSet, Graph, NodeId};
use ego_pattern::{Pattern, SearchOrder};

/// Reusable buffers for the forward-extraction phase: a pool of per-depth
/// candidate lists (returned on backtrack, taken on descent) and a
/// ping-pong buffer for chained intersections. One extraction allocates
/// at most `pattern depth + 1` vectors over its whole lifetime; batched
/// census runs share one scratch across all focal neighborhoods.
#[derive(Default)]
pub struct ExtractScratch {
    pool: Vec<Vec<NodeId>>,
    pub(crate) tmp: Vec<NodeId>,
}

impl ExtractScratch {
    /// Take a cleared buffer from the pool (or allocate one).
    pub(crate) fn take(&mut self) -> Vec<NodeId> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Return a buffer to the pool for reuse.
    pub(crate) fn give(&mut self, v: Vec<NodeId>) {
        self.pool.push(v);
    }
}

/// Enumerate all embeddings of `p` in `g` using the CN algorithm.
pub fn enumerate(g: &Graph, p: &Pattern, stats: &mut MatchStats) -> Vec<Vec<NodeId>> {
    let profiles = ProfileIndex::build(g);
    enumerate_with_profiles(g, p, &profiles, stats)
}

/// [`enumerate`] reusing a prebuilt profile index (the index depends only
/// on the graph, so census algorithms build it once per graph).
pub fn enumerate_with_profiles(
    g: &Graph,
    p: &Pattern,
    profiles: &ProfileIndex,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    enumerate_with_profiles_threads(g, p, profiles, stats, 1)
}

/// [`enumerate_with_profiles`] with the candidate-enumeration and CN-set
/// initialization phases sharded over `threads` workers (extraction runs
/// on the calling thread; [`crate::parallel`] shards that phase).
/// Results are bit-identical at any thread count.
pub fn enumerate_with_profiles_threads(
    g: &Graph,
    p: &Pattern,
    profiles: &ProfileIndex,
    stats: &mut MatchStats,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    let mut cs = CandidateSpace::enumerate_threads(g, p, profiles, stats, threads);
    cs.init_candidate_neighbors_threads(g, p, stats, threads);
    cs.prune(p, stats);
    let out = extract(g, p, &cs, stats);
    setops::record_global(&stats.setops);
    out
}

/// Step 4: forward extraction over the pruned candidate space.
fn extract(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    let order = SearchOrder::new(p);
    let mut scratch = ExtractScratch::default();
    extract_with(g, p, cs, &order, None, stats, &mut scratch)
}

/// Forward extraction with an optional membership restriction: when
/// `membership` is `Some(set)`, only embeddings whose every image lies in
/// the set are enumerated (candidates outside it are dropped at each
/// depth, so restricted extraction never walks the excluded space). This
/// is the batched-census entry point: the candidate space and search
/// order are built once per (graph, pattern) and reused across all
/// per-focal neighborhoods.
#[allow(clippy::too_many_arguments)]
pub(crate) fn extract_with(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    order: &SearchOrder,
    membership: Option<&FastHashSet<u32>>,
    stats: &mut MatchStats,
    scratch: &mut ExtractScratch,
) -> Vec<Vec<NodeId>> {
    let np = p.num_nodes();
    let mut out = Vec::new();
    // assignment indexed by pattern node id; usize::MAX sentinel via Option
    // avoided: track assigned prefix through `depth`.
    let mut assignment: Vec<NodeId> = vec![NodeId(0); np];
    let mut stack_iters: Vec<Vec<NodeId>> = Vec::with_capacity(np);

    // Depth-first product over per-depth candidate lists.
    let first = candidates_for_depth(g, p, cs, order, membership, 0, &assignment, stats, scratch);
    stack_iters.push(first);
    let mut cursor = vec![0usize; 1];

    while let Some(&depth_pos) = cursor.last() {
        let depth = cursor.len() - 1;
        let options = &stack_iters[depth];
        if depth_pos >= options.len() {
            if let Some(done) = stack_iters.pop() {
                scratch.give(done);
            }
            cursor.pop();
            if let Some(c) = cursor.last_mut() {
                *c += 1;
            }
            continue;
        }
        let n = options[depth_pos];
        // Injectivity: n must not already appear in the partial assignment.
        let v = order.order[depth];
        let dup = (0..depth).any(|d| assignment[order.order[d].index()] == n);
        if dup {
            *cursor.last_mut().unwrap() += 1;
            continue;
        }
        assignment[v.index()] = n;
        if depth + 1 == np {
            stats.raw_embeddings += 1;
            if passes_filters(g, p, &assignment) {
                stats.filtered_embeddings += 1;
                out.push(assignment.clone());
            }
            *cursor.last_mut().unwrap() += 1;
        } else {
            stats.partial_matches += 1;
            let next = candidates_for_depth(
                g,
                p,
                cs,
                order,
                membership,
                depth + 1,
                &assignment,
                stats,
                scratch,
            );
            stack_iters.push(next);
            cursor.push(0);
        }
    }
    while let Some(done) = stack_iters.pop() {
        scratch.give(done);
    }
    out
}

/// Possible images for the pattern node at `depth`: the intersection of
/// the candidate-neighbor sets of its already-matched pattern neighbors
/// (or the full alive candidate list when it has none — the first node,
/// or a new component of a disconnected pattern).
#[allow(clippy::too_many_arguments)]
fn candidates_for_depth(
    _g: &Graph,
    _p: &Pattern,
    cs: &CandidateSpace,
    order: &SearchOrder,
    membership: Option<&FastHashSet<u32>>,
    depth: usize,
    assignment: &[NodeId],
    stats: &mut MatchStats,
    scratch: &mut ExtractScratch,
) -> Vec<NodeId> {
    let v = order.order[depth];
    let back = &order.backward[depth];
    if back.is_empty() {
        let mut all = scratch.take();
        all.extend(cs.alive_candidates(v));
        stats.extension_candidates_scanned += all.len();
        if let Some(members) = membership {
            all.retain(|n| members.contains(&n.0));
        }
        return all;
    }
    // Start from the smallest CN list, then intersect with the rest
    // through the kernel layer, ping-ponging between two pooled buffers.
    let mut lists: Vec<&[NodeId]> = Vec::with_capacity(back.len());
    for &j in back {
        let vj = order.order[j];
        let nj = assignment[vj.index()];
        lists.push(cs.cn_list(vj, nj, v));
    }
    lists.sort_by_key(|l| l.len());
    let mut current = scratch.take();
    stats.extension_candidates_scanned += lists[0].len();
    if let [first, second, ..] = lists[..] {
        // Fuse the first two lists into one kernel call, skipping the
        // copy of lists[0] into `current`.
        stats.extension_candidates_scanned += second.len().min(first.len());
        setops::intersect_into(first, second, &mut current, &mut stats.setops);
    } else {
        current.extend_from_slice(lists[0]);
    }
    for l in lists.iter().skip(2) {
        if current.is_empty() {
            break;
        }
        stats.extension_candidates_scanned += l.len().min(current.len());
        setops::intersect_into(&current, l, &mut scratch.tmp, &mut stats.setops);
        std::mem::swap(&mut current, &mut scratch.tmp);
    }
    if let Some(members) = membership {
        current.retain(|n| members.contains(&n.0));
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use ego_graph::{GraphBuilder, Label};

    fn run(g: &Graph, p: &Pattern) -> Vec<Vec<NodeId>> {
        crate::find_embeddings(g, p, MatcherKind::CandidateNeighbors)
    }

    /// Two triangles sharing node 2: {0,1,2} and {2,3,4}.
    fn two_triangles() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(5, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn triangle_embeddings() {
        let g = two_triangles();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let embs = run(&g, &p);
        // 2 triangles × 6 automorphic embeddings.
        assert_eq!(embs.len(), 12);
        let matches = crate::find_matches(&g, &p, MatcherKind::CandidateNeighbors);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn single_node_pattern_matches_every_node() {
        let g = two_triangles();
        let p = Pattern::parse("PATTERN n { ?A; }").unwrap();
        assert_eq!(run(&g, &p).len(), 5);
    }

    #[test]
    fn single_edge_counts() {
        let g = two_triangles();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        // 6 edges × 2 orientations.
        assert_eq!(run(&g, &p).len(), 12);
        assert_eq!(
            crate::find_matches(&g, &p, MatcherKind::CandidateNeighbors).len(),
            6
        );
    }

    #[test]
    fn labeled_triangle() {
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(2));
        b.add_node(Label(1)); // decoy
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (0, 3)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        let g = b.build();
        let p = Pattern::parse(
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=0]; [?B.LABEL=1]; [?C.LABEL=2]; }",
        )
        .unwrap();
        let embs = run(&g, &p);
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn directed_two_path() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0)); // cycle
        let g = b.build();
        let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; }").unwrap();
        let embs = run(&g, &p);
        // Directed 2-paths in a 3-cycle: 0-1-2, 1-2-0, 2-0-1.
        assert_eq!(embs.len(), 3);
    }

    #[test]
    fn coordinator_triad_with_negation() {
        // 0->1->2 (open) and 3->4->5 with 3->5 (closed).
        let mut b = GraphBuilder::directed();
        b.add_nodes(6, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(3), NodeId(4));
        b.add_edge(NodeId(4), NodeId(5));
        b.add_edge(NodeId(3), NodeId(5));
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A->?B; ?B->?C; ?A!->?C; }").unwrap();
        let embs = run(&g, &p);
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn square_no_diagonals() {
        // 4-cycle 0-1-2-3 plus a diagonal-free structure; add one chord in a
        // second square to ensure only induced-4-cycle... note: pattern
        // census squares are NOT induced (chords allowed) per standard
        // subgraph-isomorphism semantics; verify chorded square still counts.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(4, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        let g = b.build();
        let p = Pattern::parse("PATTERN s { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }").unwrap();
        let m = crate::find_matches(&g, &p, MatcherKind::CandidateNeighbors);
        // The 4-cycle 0-1-2-3 exists; with the chord, cycles 0-1-2-0? that's
        // a triangle, not a square. Subgraph (non-induced) squares: 0123 only.
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn no_matches_in_sparse_graph() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        assert!(run(&g, &p).is_empty());
    }

    #[test]
    fn disconnected_pattern_cross_product() {
        // Pattern: an edge plus an isolated node.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let p = Pattern::parse("PATTERN p { ?A-?B; ?C; }").unwrap();
        let embs = run(&g, &p);
        // Edge images: (0,1) and (1,0); C can be any remaining node: 1 each.
        assert_eq!(embs.len(), 2);
        for e in &embs {
            let c = p.node_by_name("C").unwrap();
            assert_eq!(e[c.index()], NodeId(2));
        }
    }

    #[test]
    fn stats_populated() {
        let g = two_triangles();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let mut stats = MatchStats::default();
        let embs =
            crate::find_embeddings_with_stats(&g, &p, MatcherKind::CandidateNeighbors, &mut stats);
        assert_eq!(stats.raw_embeddings, embs.len());
        assert_eq!(stats.filtered_embeddings, embs.len());
        assert!(stats.initial_candidates > 0);
        assert!(stats.extension_candidates_scanned > 0);
        assert!(stats.prune_iterations >= 1);
    }

    #[test]
    fn injectivity_enforced() {
        // A path pattern of 3 in a single-edge graph could map A and C to
        // the same node without injectivity.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(2, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let p = Pattern::parse("PATTERN p { ?A-?B; ?B-?C; }").unwrap();
        assert!(run(&g, &p).is_empty());
    }
}
