//! Final filtering of candidate embeddings (footnote 1 of the paper):
//! negated edges, join predicates, and general attribute predicates are
//! applied after structural enumeration.

use ego_graph::{Graph, NodeId};
use ego_pattern::Pattern;

/// Does `assignment` satisfy every negated edge and predicate of `p`?
/// (Positive structure and label constraints are enforced upstream.)
pub fn passes_filters(g: &Graph, p: &Pattern, assignment: &[NodeId]) -> bool {
    for e in p.negative_edges() {
        let na = assignment[e.a.index()];
        let nb = assignment[e.b.index()];
        let exists = if e.directed {
            g.has_directed_edge(na, nb)
        } else {
            g.has_undirected_edge(na, nb)
        };
        if exists {
            return false;
        }
    }
    for pred in p.node_predicates() {
        if !pred.eval(g, assignment) {
            return false;
        }
    }
    for pred in p.edge_predicates() {
        if !pred.eval(g, assignment) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    /// 0 -> 1 -> 2 and 0 -> 2 (directed).
    fn transitive_triad() -> Graph {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(0), NodeId(2));
        b.build()
    }

    #[test]
    fn negated_directed_edge() {
        let g = transitive_triad();
        let p = Pattern::parse("PATTERN p { ?A->?B; ?B->?C; ?A!->?C; }").unwrap();
        // 0->1->2 has the 0->2 shortcut: fails. 1->2 then... only one
        // two-path exists; it fails the negation.
        assert!(!passes_filters(&g, &p, &[NodeId(0), NodeId(1), NodeId(2)]));
    }

    #[test]
    fn negated_directed_edge_passes_when_absent() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let p = Pattern::parse("PATTERN p { ?A->?B; ?B->?C; ?A!->?C; }").unwrap();
        assert!(passes_filters(&g, &p, &[NodeId(0), NodeId(1), NodeId(2)]));
    }

    #[test]
    fn negated_undirected_edge_blocks_either_direction() {
        let g = transitive_triad();
        let p = Pattern::parse("PATTERN p { ?A->?B; ?B->?C; ?A!-?C; }").unwrap();
        assert!(!passes_filters(&g, &p, &[NodeId(0), NodeId(1), NodeId(2)]));
    }

    #[test]
    fn node_and_edge_predicates() {
        let mut b = GraphBuilder::undirected();
        let x = b.add_node(Label(0));
        let y = b.add_node(Label(0));
        b.add_edge(x, y);
        b.set_node_attr(x, "age", 20i64);
        b.set_node_attr(y, "age", 30i64);
        b.set_edge_attr(x, y, "sign", 1i64);
        let g = b.build();

        let p =
            Pattern::parse("PATTERN p { ?A-?B; [?A.age<?B.age]; [EDGE(?A,?B).sign=1]; }").unwrap();
        assert!(passes_filters(&g, &p, &[NodeId(0), NodeId(1)]));
        assert!(!passes_filters(&g, &p, &[NodeId(1), NodeId(0)]));
    }

    #[test]
    fn no_filters_always_passes() {
        let g = transitive_triad();
        let p = Pattern::parse("PATTERN p { ?A->?B; }").unwrap();
        assert!(passes_filters(&g, &p, &[NodeId(0), NodeId(1)]));
    }
}
