//! # ego-matcher
//!
//! Subgraph pattern matching (Section III of the paper).
//!
//! Two exact matchers over the same candidate-filtering front end:
//!
//! * [`cn`] — the paper's algorithm (Algorithm 1), built around explicitly
//!   maintained **candidate neighbor sets** `CN(n, v, v')`: neighbors of a
//!   candidate `n` for pattern node `v` that can match `v`'s pattern
//!   neighbor `v'`. Candidate sets and candidate-neighbor sets are pruned
//!   simultaneously to a fixpoint, then matches are extracted by
//!   intersecting the (small) candidate-neighbor sets along a
//!   connected-prefix order.
//! * [`gql`] — a GraphQL-style baseline in the spirit of He & Singh
//!   (SIGMOD 2008): profile filtering plus *semi-perfect matching*
//!   refinement (a bipartite-matching feasibility check between pattern
//!   neighbors and candidate neighbors), followed by backtracking search
//!   that scans full candidate sets at every extension — precisely the
//!   cost the paper's CN sets avoid.
//!
//! Both enumerate **embeddings** (variable assignments). The paper counts
//! *matches* — distinct subgraphs — so [`find_matches`] deduplicates
//! embeddings by the pattern's automorphism group.
//!
//! ```
//! use ego_graph::{GraphBuilder, Label, NodeId};
//! use ego_matcher::{find_matches, MatcherKind};
//! use ego_pattern::Pattern;
//!
//! let mut b = GraphBuilder::undirected();
//! b.add_nodes(4, Label(0));
//! for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3)] {
//!     b.add_edge(NodeId(x), NodeId(y));
//! }
//! let g = b.build();
//! let tri = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
//!
//! let matches = find_matches(&g, &tri, MatcherKind::CandidateNeighbors);
//! assert_eq!(matches.len(), 1); // one triangle, not six embeddings
//! ```

pub mod bipartite;
pub mod candidates;
pub mod cn;
pub mod filter;
pub mod gql;
pub mod matches;
pub mod neighborhood;
pub mod parallel;
pub mod spath;
pub mod stats;

pub use cn::ExtractScratch;
pub use matches::{MatchList, PatternMatch};
pub use neighborhood::NeighborhoodMatcher;
pub use stats::MatchStats;

use ego_graph::{Graph, NodeId};
use ego_pattern::Pattern;

/// Which matching algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatcherKind {
    /// The paper's candidate-neighbor algorithm (Algorithm 1). Default.
    CandidateNeighbors,
    /// The GraphQL-style baseline (profiles + semi-perfect matching +
    /// candidate-set scans).
    GqlStyle,
    /// SPath-style: d-bounded neighborhood-signature filtering (the
    /// related-work comparator the paper lists as future work) with
    /// GQL-style extraction.
    SPathStyle,
}

/// Enumerate all embeddings of `p` in `g` (variable assignments
/// `assignment[v.index()] = image`). Embeddings related by pattern
/// automorphisms are all reported.
pub fn find_embeddings(g: &Graph, p: &Pattern, kind: MatcherKind) -> Vec<Vec<NodeId>> {
    let mut stats = MatchStats::default();
    find_embeddings_with_stats(g, p, kind, &mut stats)
}

/// [`find_embeddings`] with instrumentation.
pub fn find_embeddings_with_stats(
    g: &Graph,
    p: &Pattern,
    kind: MatcherKind,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    match kind {
        MatcherKind::CandidateNeighbors => cn::enumerate(g, p, stats),
        MatcherKind::GqlStyle => gql::enumerate(g, p, stats),
        MatcherKind::SPathStyle => spath::enumerate(g, p, stats),
    }
}

/// Find all **distinct matches** of `p` in `g`: embeddings deduplicated by
/// the pattern's automorphism group, so each matching subgraph is counted
/// once (the paper's definition of a match).
pub fn find_matches(g: &Graph, p: &Pattern, kind: MatcherKind) -> MatchList {
    let embeddings = find_embeddings(g, p, kind);
    MatchList::from_embeddings(p, embeddings)
}

/// [`find_matches`] with instrumentation.
pub fn find_matches_with_stats(
    g: &Graph,
    p: &Pattern,
    kind: MatcherKind,
    stats: &mut MatchStats,
) -> MatchList {
    let embeddings = find_embeddings_with_stats(g, p, kind, stats);
    MatchList::from_embeddings(p, embeddings)
}
