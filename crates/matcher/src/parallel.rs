//! Parallel match enumeration (an extension beyond the paper).
//!
//! The CN algorithm's extraction phase is a depth-first product over
//! per-depth candidate lists; different subtrees are independent, so the
//! first-level candidates can be sharded across threads. Candidate
//! enumeration and pruning run once (shared read-only), each worker
//! extracts its shard, and results are concatenated. Output order is
//! normalized by sorting, so results are identical to the sequential
//! matcher.

use crate::candidates::CandidateSpace;
use crate::filter::passes_filters;
use crate::stats::MatchStats;
use ego_graph::profile::ProfileIndex;
use ego_graph::{neighborhood, Graph, NodeId};
use ego_pattern::{Pattern, SearchOrder};

/// Enumerate all embeddings of `p` in `g` with the CN algorithm,
/// parallelizing extraction over `threads` workers.
pub fn enumerate_parallel(
    g: &Graph,
    p: &Pattern,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    let profiles = ProfileIndex::build(g);
    let mut stats = MatchStats::default();
    let mut cs = CandidateSpace::enumerate(g, p, &profiles, &mut stats);
    cs.init_candidate_neighbors(g, p);
    cs.prune(p, &mut stats);

    let order = SearchOrder::new(p);
    let roots: Vec<NodeId> = cs.alive_candidates(order.order[0]).collect();
    let threads = threads.max(1).min(roots.len().max(1));
    if threads <= 1 || roots.len() < 2 {
        let mut out = Vec::new();
        for &root in &roots {
            extract_subtree(g, p, &cs, &order, root, &mut out);
        }
        out.sort_unstable();
        return out;
    }

    let chunk = roots.len().div_ceil(threads);
    let mut out: Vec<Vec<NodeId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = roots
            .chunks(chunk)
            .map(|shard| {
                let cs = &cs;
                let order = &order;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    for &root in shard {
                        extract_subtree(g, p, cs, order, root, &mut local);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("matcher worker panicked"))
            .collect()
    });
    out.sort_unstable();
    out
}

/// Extract all embeddings whose first-order node maps to `root`.
fn extract_subtree(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    order: &SearchOrder,
    root: NodeId,
    out: &mut Vec<Vec<NodeId>>,
) {
    let np = p.num_nodes();
    let mut assignment = vec![NodeId(0); np];
    assignment[order.order[0].index()] = root;
    if np == 1 {
        if passes_filters(g, p, &assignment) {
            out.push(assignment);
        }
        return;
    }
    dfs(g, p, cs, order, 1, &mut assignment, out);
}

fn dfs(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    order: &SearchOrder,
    depth: usize,
    assignment: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    let np = p.num_nodes();
    let v = order.order[depth];
    let back = &order.backward[depth];
    let options: Vec<NodeId> = if back.is_empty() {
        cs.alive_candidates(v).collect()
    } else {
        let mut lists: Vec<&[NodeId]> = back
            .iter()
            .map(|&j| {
                let vj = order.order[j];
                cs.cn_list(vj, assignment[vj.index()], v)
            })
            .collect();
        lists.sort_by_key(|l| l.len());
        let mut cur = lists[0].to_vec();
        for l in &lists[1..] {
            if cur.is_empty() {
                break;
            }
            cur = neighborhood::intersect_sorted(&cur, l);
        }
        cur
    };
    for n in options {
        if (0..depth).any(|d| assignment[order.order[d].index()] == n) {
            continue;
        }
        assignment[v.index()] = n;
        if depth + 1 == np {
            if passes_filters(g, p, assignment) {
                out.push(assignment.clone());
            }
        } else {
            dfs(g, p, cs, order, depth + 1, assignment, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use ego_graph::{GraphBuilder, Label};

    fn circulant(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        for i in 0..n {
            b.add_node(Label((i % 3) as u16));
        }
        for i in 0..n {
            for &d in &[1u32, 2, 4] {
                b.add_edge(NodeId(i), NodeId((i + d) % n));
            }
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = circulant(80);
        for text in [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
            "PATTERN lt { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=0]; }",
            "PATTERN p { ?A-?B; ?B-?C; ?A!-?C; }",
            "PATTERN n { ?A; }",
        ] {
            let p = Pattern::parse(text).unwrap();
            let mut seq = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
            seq.sort_unstable();
            for threads in [1, 2, 4, 16] {
                let par = enumerate_parallel(&g, &p, threads);
                assert_eq!(par, seq, "{text} threads={threads}");
            }
        }
    }

    #[test]
    fn no_matches_case() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        assert!(enumerate_parallel(&g, &p, 4).is_empty());
    }

    #[test]
    fn more_threads_than_roots() {
        let g = circulant(12);
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let par = enumerate_parallel(&g, &p, 64);
        let mut seq = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
        seq.sort_unstable();
        assert_eq!(par, seq);
    }
}
