//! Parallel match enumeration (an extension beyond the paper).
//!
//! The CN algorithm's extraction phase is a depth-first product over
//! per-depth candidate lists; different subtrees are independent, so the
//! first-level candidates can be sharded across threads. Candidate
//! enumeration and CN-set initialization also shard across the same
//! thread count ([`CandidateSpace::enumerate_threads`] /
//! [`CandidateSpace::init_candidate_neighbors_threads`]); pruning runs
//! once (shared read-only), each worker extracts its shard with its own
//! [`ExtractScratch`], and results are concatenated. Output order is
//! normalized by sorting, so results are identical to the sequential
//! matcher.

use crate::candidates::CandidateSpace;
use crate::cn::ExtractScratch;
use crate::filter::passes_filters;
use crate::stats::MatchStats;
use ego_graph::profile::ProfileIndex;
use ego_graph::{setops, Graph, NodeId};
use ego_pattern::{Pattern, SearchOrder};

/// Enumerate all embeddings of `p` in `g` with the CN algorithm,
/// parallelizing extraction over `threads` workers.
pub fn enumerate_parallel(g: &Graph, p: &Pattern, threads: usize) -> Vec<Vec<NodeId>> {
    let mut stats = MatchStats::default();
    enumerate_parallel_with_stats(g, p, threads, &mut stats)
}

/// [`enumerate_parallel`] with instrumentation. The candidate/pruning
/// phase tallies into `stats` directly; extraction-phase counters (scans,
/// partials, embeddings) accumulate per worker and merge by addition, so
/// the totals match a sequential run over the same candidate space.
pub fn enumerate_parallel_with_stats(
    g: &Graph,
    p: &Pattern,
    threads: usize,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    let profiles = ProfileIndex::build(g);
    let mut cs = CandidateSpace::enumerate_threads(g, p, &profiles, stats, threads);
    cs.init_candidate_neighbors_threads(g, p, stats, threads);
    cs.prune(p, stats);

    let order = SearchOrder::new(p);
    let roots: Vec<NodeId> = cs.alive_candidates(order.order[0]).collect();
    let threads = threads.max(1).min(roots.len().max(1));
    if threads <= 1 || roots.len() < 2 {
        let mut out = Vec::new();
        let mut scratch = ExtractScratch::default();
        for &root in &roots {
            extract_subtree(g, p, &cs, &order, root, &mut out, stats, &mut scratch);
        }
        out.sort_unstable();
        setops::record_global(&stats.setops);
        return out;
    }

    let chunk = roots.len().div_ceil(threads);
    let results: Vec<(Vec<Vec<NodeId>>, MatchStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = roots
            .chunks(chunk)
            .map(|shard| {
                let cs = &cs;
                let order = &order;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut local_stats = MatchStats::default();
                    let mut scratch = ExtractScratch::default();
                    for &root in shard {
                        extract_subtree(
                            g,
                            p,
                            cs,
                            order,
                            root,
                            &mut local,
                            &mut local_stats,
                            &mut scratch,
                        );
                    }
                    (local, local_stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("matcher worker panicked"))
            .collect()
    });

    let mut out = Vec::new();
    for (local, local_stats) in results {
        out.extend(local);
        stats.extension_candidates_scanned += local_stats.extension_candidates_scanned;
        stats.partial_matches += local_stats.partial_matches;
        stats.raw_embeddings += local_stats.raw_embeddings;
        stats.filtered_embeddings += local_stats.filtered_embeddings;
        stats.setops.add(&local_stats.setops);
    }
    out.sort_unstable();
    setops::record_global(&stats.setops);
    out
}

/// Extract all embeddings whose first-order node maps to `root`.
#[allow(clippy::too_many_arguments)]
fn extract_subtree(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    order: &SearchOrder,
    root: NodeId,
    out: &mut Vec<Vec<NodeId>>,
    stats: &mut MatchStats,
    scratch: &mut ExtractScratch,
) {
    let np = p.num_nodes();
    let mut assignment = vec![NodeId(0); np];
    assignment[order.order[0].index()] = root;
    if np == 1 {
        stats.raw_embeddings += 1;
        if passes_filters(g, p, &assignment) {
            stats.filtered_embeddings += 1;
            out.push(assignment);
        }
        return;
    }
    dfs(g, p, cs, order, 1, &mut assignment, out, stats, scratch);
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    p: &Pattern,
    cs: &CandidateSpace,
    order: &SearchOrder,
    depth: usize,
    assignment: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
    stats: &mut MatchStats,
    scratch: &mut ExtractScratch,
) {
    let np = p.num_nodes();
    let v = order.order[depth];
    let back = &order.backward[depth];
    let mut options = scratch.take();
    if back.is_empty() {
        options.extend(cs.alive_candidates(v));
        stats.extension_candidates_scanned += options.len();
    } else {
        let mut lists: Vec<&[NodeId]> = back
            .iter()
            .map(|&j| {
                let vj = order.order[j];
                cs.cn_list(vj, assignment[vj.index()], v)
            })
            .collect();
        lists.sort_by_key(|l| l.len());
        stats.extension_candidates_scanned += lists[0].len();
        if let [first, second, ..] = lists[..] {
            stats.extension_candidates_scanned += second.len().min(first.len());
            setops::intersect_into(first, second, &mut options, &mut stats.setops);
        } else {
            options.extend_from_slice(lists[0]);
        }
        for l in lists.iter().skip(2) {
            if options.is_empty() {
                break;
            }
            stats.extension_candidates_scanned += l.len().min(options.len());
            setops::intersect_into(&options, l, &mut scratch.tmp, &mut stats.setops);
            std::mem::swap(&mut options, &mut scratch.tmp);
        }
    }
    for &n in &options {
        if (0..depth).any(|d| assignment[order.order[d].index()] == n) {
            continue;
        }
        assignment[v.index()] = n;
        if depth + 1 == np {
            stats.raw_embeddings += 1;
            if passes_filters(g, p, assignment) {
                stats.filtered_embeddings += 1;
                out.push(assignment.clone());
            }
        } else {
            stats.partial_matches += 1;
            dfs(g, p, cs, order, depth + 1, assignment, out, stats, scratch);
        }
    }
    scratch.give(options);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use ego_graph::{GraphBuilder, Label};

    fn circulant(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        for i in 0..n {
            b.add_node(Label((i % 3) as u16));
        }
        for i in 0..n {
            for &d in &[1u32, 2, 4] {
                b.add_edge(NodeId(i), NodeId((i + d) % n));
            }
        }
        b.build()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = circulant(80);
        for text in [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; }",
            "PATTERN lt { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=0]; }",
            "PATTERN p { ?A-?B; ?B-?C; ?A!-?C; }",
            "PATTERN n { ?A; }",
        ] {
            let p = Pattern::parse(text).unwrap();
            let mut seq = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
            seq.sort_unstable();
            for threads in [1, 2, 4, 16] {
                let par = enumerate_parallel(&g, &p, threads);
                assert_eq!(par, seq, "{text} threads={threads}");
            }
        }
    }

    #[test]
    fn stats_are_reported_and_thread_invariant() {
        let g = circulant(60);
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let mut base = MatchStats::default();
        let seq = enumerate_parallel_with_stats(&g, &p, 1, &mut base);
        assert!(base.initial_candidates > 0);
        assert!(base.extension_candidates_scanned > 0);
        assert_eq!(base.filtered_embeddings, seq.len());
        for threads in [2, 4, 8] {
            let mut s = MatchStats::default();
            let out = enumerate_parallel_with_stats(&g, &p, threads, &mut s);
            assert_eq!(out, seq);
            // Work partitioning must not change the total work done.
            assert_eq!(s.raw_embeddings, base.raw_embeddings, "threads={threads}");
            assert_eq!(s.filtered_embeddings, base.filtered_embeddings);
            assert_eq!(s.partial_matches, base.partial_matches);
            assert_eq!(
                s.extension_candidates_scanned, base.extension_candidates_scanned,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn no_matches_case() {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        assert!(enumerate_parallel(&g, &p, 4).is_empty());
    }

    #[test]
    fn more_threads_than_roots() {
        let g = circulant(12);
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let par = enumerate_parallel(&g, &p, 64);
        let mut seq = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
        seq.sort_unstable();
        assert_eq!(par, seq);
    }
}
