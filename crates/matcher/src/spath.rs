//! SPath-style matcher: neighborhood-signature candidate filtering.
//!
//! The paper's related work singles out SPath (Zhao & Han, VLDB 2010) —
//! "an indexing technique that is based on neighborhood signatures and
//! shortest paths" — and lists a comprehensive comparison as future work.
//! This module provides that comparator: a matcher whose candidate filter
//! is the *d-bounded neighborhood signature*
//!
//! ```text
//! sig(n)[d][l] = |{ m : d(n, m) ≤ d, label(m) = l }|      d = 1..=D
//! ```
//!
//! a strictly stronger filter than the 1-hop profiles of Section III-A:
//! a database node `n` can host pattern node `v` only if, for every
//! radius `d` and label `l`, the pattern's own d-bounded signature is
//! contained in `n`'s (pattern distances upper-bound match distances, so
//! containment is a sound necessary condition). Extraction then follows
//! the same candidate-set scan as the GQL baseline — isolating the
//! *filtering* contribution of signatures, which is what SPath's index
//! brings relative to profiles.

use crate::candidates::CandidateSpace;
use crate::stats::MatchStats;
use ego_graph::bfs::BfsScratch;
use ego_graph::profile::ProfileIndex;
use ego_graph::{Graph, Label, NodeId};
use ego_pattern::analysis::{PatternAnalysis, UNREACHABLE};
use ego_pattern::{PNode, Pattern};

/// Signature radius. SPath uses small radii (index size grows fast);
/// D = 2 captures most of the pruning power on labeled graphs.
pub const SIGNATURE_RADIUS: u32 = 2;

/// The d-bounded neighborhood signature index: for every node, label
/// counts of the ball of radius 1..=D (cumulative).
pub struct SignatureIndex {
    num_labels: usize,
    radius: u32,
    /// Row-major: `sig[((n * D) + (d-1)) * L + l]`.
    sig: Vec<u32>,
}

impl SignatureIndex {
    /// Build the index with radius `radius`. O(Σ_n |ball_D(n)|).
    pub fn build(g: &Graph, radius: u32) -> Self {
        let num_labels = g.num_labels() as usize;
        let d_max = radius as usize;
        let mut sig = vec![0u32; g.num_nodes() * d_max * num_labels];
        let mut scratch = BfsScratch::new(g.num_nodes());
        let mut ball = Vec::new();
        for n in g.node_ids() {
            ball.clear();
            scratch.bounded_bfs(g, n, radius, &mut ball);
            let base = n.index() * d_max * num_labels;
            for &m in &ball {
                if m == n {
                    continue;
                }
                let d = scratch.distance(m) as usize; // 1..=D
                let l = g.label(m).index();
                // Cumulative: a node at distance d is inside every ball of
                // radius >= d.
                for dd in d..=d_max {
                    sig[base + (dd - 1) * num_labels + l] += 1;
                }
            }
        }
        SignatureIndex {
            num_labels,
            radius,
            sig,
        }
    }

    /// Count of label-`l` nodes within distance `d` (1-based) of `n`.
    #[inline]
    pub fn count(&self, n: NodeId, d: u32, l: Label) -> u32 {
        debug_assert!(d >= 1 && d <= self.radius);
        let d_max = self.radius as usize;
        self.sig[(n.index() * d_max + (d as usize - 1)) * self.num_labels + l.index()]
    }
}

/// The pattern-side requirement: for pattern node `v`, how many
/// label-constrained pattern nodes sit within pattern distance `d`.
/// Unconstrained pattern nodes contribute no label requirement (they can
/// match anything), mirroring the profile filter's conservatism.
fn pattern_signature(
    p: &Pattern,
    analysis: &PatternAnalysis,
    v: PNode,
    radius: u32,
    num_labels: usize,
) -> Vec<u32> {
    let d_max = radius as usize;
    let mut req = vec![0u32; d_max * num_labels];
    for u in p.nodes() {
        if u == v {
            continue;
        }
        let Some(l) = p.label(u) else { continue };
        if l.index() >= num_labels {
            // A label absent from the graph: handled by the candidate
            // filter rejecting everything (requirement can't be met).
            continue;
        }
        let d = analysis.distance(v, u);
        if d == UNREACHABLE || d > radius {
            continue;
        }
        let d = d.max(1) as usize;
        for dd in d..=d_max {
            req[(dd - 1) * num_labels + l.index()] += 1;
        }
    }
    req
}

/// Enumerate all embeddings of `p` in `g` with signature-filtered
/// candidates and GQL-style extraction.
pub fn enumerate(g: &Graph, p: &Pattern, stats: &mut MatchStats) -> Vec<Vec<NodeId>> {
    let profiles = ProfileIndex::build(g);
    enumerate_with_profiles(g, p, &profiles, stats)
}

/// [`enumerate`] reusing a prebuilt profile index. The signature index is
/// built here at the pattern's needed radius; for repeated queries over
/// one graph build it once and call [`enumerate_with_index`].
pub fn enumerate_with_profiles(
    g: &Graph,
    p: &Pattern,
    profiles: &ProfileIndex,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    let sig_radius = SIGNATURE_RADIUS.min(longest_pattern_distance(p).max(1));
    let sigs = SignatureIndex::build(g, sig_radius);
    enumerate_with_index(g, p, profiles, &sigs, stats)
}

/// Enumerate with a prebuilt signature index (the production shape:
/// SPath's index is computed once per graph and persisted).
pub fn enumerate_with_index(
    g: &Graph,
    p: &Pattern,
    profiles: &ProfileIndex,
    sigs: &SignatureIndex,
    stats: &mut MatchStats,
) -> Vec<Vec<NodeId>> {
    // Start from the profile-filtered candidates...
    let mut cs = CandidateSpace::enumerate(g, p, profiles, stats);
    // ...then tighten with d-bounded signatures.
    let sig_radius = sigs.radius.min(longest_pattern_distance(p).max(1));
    let analysis = PatternAnalysis::new(p);
    let num_labels = g.num_labels() as usize;
    for v in p.nodes() {
        let req = pattern_signature(p, &analysis, v, sig_radius, num_labels);
        let vi = v.index();
        for ci in 0..cs.cands[vi].len() {
            if !cs.alive[vi][ci] {
                continue;
            }
            let n = cs.cands[vi][ci];
            let ok = (1..=sig_radius).all(|d| {
                (0..num_labels).all(|l| {
                    let need = req[(d as usize - 1) * num_labels + l];
                    need == 0 || sigs.count(n, d, Label(l as u16)) >= need
                })
            });
            if !ok {
                cs.alive[vi][ci] = false;
                cs.alive_bits[vi].remove(n);
            }
        }
    }
    stats.pruned_candidates = cs
        .alive
        .iter()
        .map(|a| a.iter().filter(|&&x| x).count())
        .sum();
    // Extraction identical to the GQL baseline (candidate-set scans), so
    // any performance difference against GQL isolates the signature
    // filter's effect.
    crate::gql::search_over(g, p, &cs, stats)
}

fn longest_pattern_distance(p: &Pattern) -> u32 {
    let analysis = PatternAnalysis::new(p);
    let mut best = 0;
    for a in p.nodes() {
        for b in p.nodes() {
            let d = analysis.distance(a, b);
            if d != UNREACHABLE {
                best = best.max(d);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use ego_graph::GraphBuilder;

    fn labeled_graph() -> Graph {
        // Triangle 0(L0)-1(L1)-2(L2), pendant 3(L1) on 0, far pair 4(L0)-5(L1).
        let mut b = GraphBuilder::undirected();
        for l in [0u16, 1, 2, 1, 0, 1] {
            b.add_node(Label(l));
        }
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (0, 3), (4, 5)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    #[test]
    fn signature_counts() {
        let g = labeled_graph();
        let idx = SignatureIndex::build(&g, 2);
        // Node 3 at d=1 sees {0 (L0)}; at d<=2 sees {0, 1(L1), 2(L2)}.
        assert_eq!(idx.count(NodeId(3), 1, Label(0)), 1);
        assert_eq!(idx.count(NodeId(3), 1, Label(1)), 0);
        assert_eq!(idx.count(NodeId(3), 2, Label(1)), 1);
        assert_eq!(idx.count(NodeId(3), 2, Label(2)), 1);
        // Node 4 sees only node 5 at any radius.
        assert_eq!(idx.count(NodeId(4), 2, Label(1)), 1);
        assert_eq!(idx.count(NodeId(4), 2, Label(0)), 0);
    }

    #[test]
    fn agrees_with_cn_on_labeled_patterns() {
        let g = labeled_graph();
        for text in [
            "PATTERN t { ?A-?B; ?B-?C; ?A-?C; [?A.LABEL=0]; [?B.LABEL=1]; [?C.LABEL=2]; }",
            "PATTERN e { ?A-?B; [?A.LABEL=0]; [?B.LABEL=1]; }",
            "PATTERN p { ?A-?B; ?B-?C; }",
            "PATTERN n { ?A; }",
        ] {
            let p = Pattern::parse(text).unwrap();
            let mut a = crate::find_embeddings(&g, &p, MatcherKind::SPathStyle);
            let mut b = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{text}");
        }
    }

    #[test]
    fn signatures_prune_beyond_profiles() {
        // Pattern: L0 node with an L2 node two hops away. Node 4 (L0)
        // passes the 1-hop profile filter for ?A (it has an L1 neighbor,
        // like node 0) but its 2-ball contains no L2 — the signature
        // filter kills it before search.
        let g = labeled_graph();
        let p = Pattern::parse(
            "PATTERN far { ?A-?B; ?B-?C; [?A.LABEL=0]; [?B.LABEL=1]; [?C.LABEL=2]; }",
        )
        .unwrap();
        let mut stats_sig = MatchStats::default();
        let embs =
            crate::find_embeddings_with_stats(&g, &p, MatcherKind::SPathStyle, &mut stats_sig);
        assert_eq!(embs.len(), 1); // 0-1-2 only
        let mut stats_gql = MatchStats::default();
        crate::find_embeddings_with_stats(&g, &p, MatcherKind::GqlStyle, &mut stats_gql);
        assert!(
            stats_sig.pruned_candidates <= stats_gql.initial_candidates,
            "signature filter should not add candidates"
        );
    }

    #[test]
    fn directed_and_negated_agree() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(5, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (3, 4)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        let g = b.build();
        let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; ?A!->?C; }").unwrap();
        let mut a = crate::find_embeddings(&g, &p, MatcherKind::SPathStyle);
        let mut c = crate::find_embeddings(&g, &p, MatcherKind::CandidateNeighbors);
        a.sort();
        c.sort();
        assert_eq!(a, c);
    }
}
