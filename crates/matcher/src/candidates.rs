//! Candidate enumeration and candidate-neighbor sets (Sections III-A/B/C).
//!
//! Both phases run on the `ego_graph::setops` kernel layer: CN-set
//! initialization intersects each candidate's adjacency with the neighbor
//! candidate set through a build-once/intersect-many [`NodeBitset`] (or
//! the merge/gallop kernels when the set is too small to amortize a
//! build), and the prune fixpoint filters CN lists through per-node alive
//! bitsets instead of hash lookups. Both phases also parallelize over
//! deterministic shards — contiguous node ranges for enumeration,
//! contiguous candidate ranges for CN initialization — so the assembled
//! results are bit-identical to the sequential order at any thread count.

use crate::stats::MatchStats;
use ego_graph::profile::{NodeProfile, ProfileIndex};
use ego_graph::setops::{self, NodeBitset, SetOpStats};
use ego_graph::{Graph, NodeId};
use ego_pattern::{PNode, Pattern};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Below this many graph nodes the parallel enumeration shards are not
/// worth their thread spawns.
const PAR_MIN_NODES: usize = 4096;

/// Minimum candidates per CN-initialization task (smaller tasks drown in
/// claim overhead).
const CN_TASK_MIN: usize = 256;

/// The candidate space shared by both matchers: per pattern node `v`, the
/// candidate list `C(v)`; for the CN matcher additionally the candidate
/// neighbor sets `CN(n, v, v')`.
pub struct CandidateSpace {
    /// Pattern neighbor lists: `pneigh[v.index()]` = sorted pattern
    /// neighbors of `v` through positive edges.
    pub pneigh: Vec<Vec<PNode>>,
    /// `cands[v.index()]` = sorted candidate node list `C(v)`.
    pub cands: Vec<Vec<NodeId>>,
    /// `alive[v.index()][ci]` = candidate at position `ci` still viable.
    pub alive: Vec<Vec<bool>>,
    /// Bitset membership of alive candidates, for O(1) `n ∈ C(v)` checks
    /// and kernel-level CN filtering during the prune fixpoint.
    pub alive_bits: Vec<NodeBitset>,
    /// `cn[v.index()][j][ci]` = CN(cands\[v\]\[ci\], v, pneigh\[v\]\[j\]),
    /// sorted. Populated only by [`CandidateSpace::init_candidate_neighbors`].
    pub cn: Vec<Vec<Vec<Vec<NodeId>>>>,
}

impl CandidateSpace {
    /// Step 1 (Section III-A): enumerate candidates per pattern node using
    /// label constraints, degree, and profile containment.
    pub fn enumerate(
        g: &Graph,
        p: &Pattern,
        profiles: &ProfileIndex,
        stats: &mut MatchStats,
    ) -> Self {
        Self::enumerate_threads(g, p, profiles, stats, 1)
    }

    /// [`CandidateSpace::enumerate`] sharded over `threads` workers: each
    /// worker filters a contiguous node-id range for every pattern node,
    /// and the per-range lists concatenate in range order — candidate
    /// lists are bit-identical to the sequential scan.
    pub fn enumerate_threads(
        g: &Graph,
        p: &Pattern,
        profiles: &ProfileIndex,
        stats: &mut MatchStats,
        threads: usize,
    ) -> Self {
        let np = p.num_nodes();
        let pneigh: Vec<Vec<PNode>> = p.nodes().map(|v| p.neighbors(v)).collect();

        // Pattern node profiles over *label-constrained* neighbors only:
        // an unconstrained pattern neighbor can match any label, so it
        // contributes to the degree requirement but not to any label bucket.
        let pattern_profiles: Vec<NodeProfile> = p
            .nodes()
            .map(|v| {
                NodeProfile::from_neighbor_labels(
                    pneigh[v.index()].iter().filter_map(|&w| p.label(w)),
                )
            })
            .collect();

        let n = g.num_nodes();
        let threads = threads.max(1).min(n.max(1));
        let cands: Vec<Vec<NodeId>> = if threads <= 1 || n < PAR_MIN_NODES {
            enumerate_range(g, p, &pneigh, &pattern_profiles, profiles, 0..n as u32)
        } else {
            let chunk = n.div_ceil(threads) as u32;
            let ranges: Vec<std::ops::Range<u32>> = (0..n as u32)
                .step_by(chunk as usize)
                .map(|start| start..(start + chunk).min(n as u32))
                .collect();
            let partials: Vec<Vec<Vec<NodeId>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .into_iter()
                    .map(|range| {
                        let pneigh = &pneigh;
                        let pattern_profiles = &pattern_profiles;
                        scope.spawn(move || {
                            enumerate_range(g, p, pneigh, pattern_profiles, profiles, range)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("candidate enumeration worker panicked"))
                    .collect()
            });
            let mut merged: Vec<Vec<NodeId>> = vec![Vec::new(); np];
            for partial in partials {
                for (vi, list) in partial.into_iter().enumerate() {
                    merged[vi].extend(list);
                }
            }
            merged
        };
        for list in &cands {
            stats.initial_candidates += list.len();
        }

        let alive: Vec<Vec<bool>> = cands.iter().map(|c| vec![true; c.len()]).collect();
        let alive_bits: Vec<NodeBitset> = cands
            .iter()
            .map(|c| NodeBitset::from_sorted(g.num_nodes(), c))
            .collect();

        CandidateSpace {
            pneigh,
            cands,
            alive,
            alive_bits,
            cn: vec![Vec::new(); np],
        }
    }

    /// The adjacency list of `n` relevant for the pattern pair `(v, v')`,
    /// honoring edge direction: if the pattern requires `v -> v'`, images
    /// of `v'` must be out-neighbors of `n`; `v' -> v` requires
    /// in-neighbors; both require both; an undirected pattern edge accepts
    /// any adjacency. Borrows straight from the CSR except for the
    /// both-directions case, which intersects into `scratch`.
    fn relation_adjacency<'a>(
        g: &'a Graph,
        p: &Pattern,
        n: NodeId,
        v: PNode,
        vp: PNode,
        scratch: &'a mut Vec<NodeId>,
        stats: &mut SetOpStats,
    ) -> &'a [NodeId] {
        if !g.is_directed() {
            return g.neighbors(n);
        }
        let (ab, ba) = p.directed_requirements(v, vp);
        match (ab, ba) {
            (true, true) => {
                setops::intersect_into(g.out_neighbors(n), g.in_neighbors(n), scratch, stats);
                scratch
            }
            (true, false) => g.out_neighbors(n),
            (false, true) => g.in_neighbors(n),
            (false, false) => g.neighbors(n),
        }
    }

    /// Step 2 (Section III-B): initialize `CN(n, v, v') = C(v') ∩ N(n)`
    /// for every candidate and pattern-neighbor pair.
    pub fn init_candidate_neighbors(&mut self, g: &Graph, p: &Pattern) {
        let mut stats = MatchStats::default();
        self.init_candidate_neighbors_threads(g, p, &mut stats, 1);
    }

    /// [`CandidateSpace::init_candidate_neighbors`] on the kernel layer,
    /// sharded over `threads` workers. Candidate sets that get
    /// intersected many times are materialized once as [`NodeBitset`]s
    /// (shared read-only across workers); each worker claims contiguous
    /// candidate ranges of `(v, v')` pairs and fills pre-ordered slots,
    /// so the CN lists are bit-identical at any thread count.
    pub fn init_candidate_neighbors_threads(
        &mut self,
        g: &Graph,
        p: &Pattern,
        stats: &mut MatchStats,
        threads: usize,
    ) {
        // Build-once bitsets per pattern node whose candidate set is
        // reused enough: reuse count = how many intersections will hit
        // C(v'), summed over pattern nodes that neighbor v'.
        let np = p.num_nodes();
        let mut reuse = vec![0usize; np];
        for vi in 0..np {
            for &vp in &self.pneigh[vi] {
                reuse[vp.index()] += self.cands[vi].len();
            }
        }
        let vp_bits: Vec<Option<NodeBitset>> = (0..np)
            .map(|vpi| {
                if reuse[vpi] > 0 && setops::bitset_pays_off(reuse[vpi], self.cands[vpi].len()) {
                    Some(NodeBitset::from_sorted(g.num_nodes(), &self.cands[vpi]))
                } else {
                    None
                }
            })
            .collect();

        // Flatten the work into tasks: (v, pattern-neighbor index,
        // contiguous candidate range).
        struct Task {
            vi: usize,
            j: usize,
            range: std::ops::Range<usize>,
        }
        let threads = threads.max(1);
        let total: usize = (0..np)
            .map(|vi| self.cands[vi].len() * self.pneigh[vi].len())
            .sum();
        let task_size = (total.div_ceil(threads * 4)).max(CN_TASK_MIN);
        let mut tasks = Vec::new();
        for vi in 0..np {
            for j in 0..self.pneigh[vi].len() {
                let len = self.cands[vi].len();
                let mut start = 0;
                loop {
                    let end = (start + task_size).min(len);
                    tasks.push(Task {
                        vi,
                        j,
                        range: start..end,
                    });
                    if end == len {
                        break;
                    }
                    start = end;
                }
            }
        }

        let run_task = |t: &Task, sstats: &mut SetOpStats| -> Vec<Vec<NodeId>> {
            let v = PNode(t.vi as u8);
            let vp = self.pneigh[t.vi][t.j];
            let cvp = &self.cands[vp.index()];
            let bits = vp_bits[vp.index()].as_ref();
            let mut adj_scratch = Vec::new();
            self.cands[t.vi][t.range.clone()]
                .iter()
                .map(|&n| {
                    let adj = Self::relation_adjacency(g, p, n, v, vp, &mut adj_scratch, sstats);
                    let mut out = Vec::new();
                    if let Some(bits) = bits {
                        sstats.bitset_calls += 1;
                        bits.filter_into(adj, &mut out);
                    } else {
                        setops::intersect_into(adj, cvp, &mut out, sstats);
                    }
                    out
                })
                .collect()
        };

        let workers = threads.min(tasks.len().max(1));
        let mut cn: Vec<Vec<Vec<Vec<NodeId>>>> = (0..np)
            .map(|vi| {
                (0..self.pneigh[vi].len())
                    .map(|_| vec![Vec::new(); self.cands[vi].len()])
                    .collect()
            })
            .collect();
        if workers <= 1 {
            let mut sstats = SetOpStats::default();
            for t in &tasks {
                let lists = run_task(t, &mut sstats);
                for (offset, list) in lists.into_iter().enumerate() {
                    cn[t.vi][t.j][t.range.start + offset] = list;
                }
            }
            stats.setops.add(&sstats);
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<OnceLock<(Vec<Vec<NodeId>>, SetOpStats)>> =
                tasks.iter().map(|_| OnceLock::new()).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let next = &next;
                    let slots = &slots;
                    let tasks = &tasks;
                    let run_task = &run_task;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let mut sstats = SetOpStats::default();
                        let lists = run_task(&tasks[i], &mut sstats);
                        slots[i]
                            .set((lists, sstats))
                            .expect("CN task slot written twice");
                    });
                }
            });
            for (t, slot) in tasks.iter().zip(slots) {
                let (lists, sstats) = slot.into_inner().expect("CN task never ran");
                stats.setops.add(&sstats);
                for (offset, list) in lists.into_iter().enumerate() {
                    cn[t.vi][t.j][t.range.start + offset] = list;
                }
            }
        }
        self.cn = cn;
    }

    /// Step 3 (Section III-C): simultaneously prune candidates whose CN
    /// sets are empty and CN entries that left the candidate sets, until a
    /// fixpoint. Returns the number of passes.
    ///
    /// CN filtering runs through the per-node alive bitsets — a
    /// 2-instruction membership test per entry, in place, no allocation.
    pub fn prune(&mut self, p: &Pattern, stats: &mut MatchStats) -> usize {
        let mut passes = 0;
        loop {
            passes += 1;
            let mut changed = false;

            // Kill candidates with an empty CN set for some pattern neighbor.
            for v in p.nodes() {
                let vi = v.index();
                for ci in 0..self.cands[vi].len() {
                    if !self.alive[vi][ci] {
                        continue;
                    }
                    let dead = self.cn[vi].iter().any(|lists| lists[ci].is_empty());
                    if dead {
                        self.alive[vi][ci] = false;
                        self.alive_bits[vi].remove(self.cands[vi][ci]);
                        changed = true;
                    }
                }
            }

            // Drop CN entries that are no longer candidates for v'.
            for v in p.nodes() {
                let vi = v.index();
                for (j, &vp) in self.pneigh[vi].iter().enumerate() {
                    let bits = &self.alive_bits[vp.index()];
                    for ci in 0..self.cands[vi].len() {
                        if !self.alive[vi][ci] {
                            continue;
                        }
                        let list = &mut self.cn[vi][j][ci];
                        stats.setops.bitset_calls += 1;
                        stats.setops.saved_allocs += 1; // in-place, no realloc
                        if bits.retain_sorted(list) > 0 {
                            changed = true;
                        }
                    }
                }
            }

            if !changed {
                break;
            }
        }
        stats.prune_iterations = passes;
        stats.pruned_candidates = self
            .alive
            .iter()
            .map(|a| a.iter().filter(|&&x| x).count())
            .sum();
        passes
    }

    /// Alive candidates of `v`, in sorted order.
    pub fn alive_candidates(&self, v: PNode) -> impl Iterator<Item = NodeId> + '_ {
        let vi = v.index();
        self.cands[vi]
            .iter()
            .zip(&self.alive[vi])
            .filter(|&(_, &a)| a)
            .map(|(&n, _)| n)
    }

    /// Position of `n` within `C(v)` (None if absent).
    pub fn position(&self, v: PNode, n: NodeId) -> Option<usize> {
        self.cands[v.index()].binary_search(&n).ok()
    }

    /// Index of `vp` within `v`'s pattern-neighbor list.
    pub fn neighbor_index(&self, v: PNode, vp: PNode) -> Option<usize> {
        self.pneigh[v.index()].iter().position(|&w| w == vp)
    }

    /// The pruned `CN(n, v, v')` list. Panics if `n ∉ C(v)` or `v'` is not
    /// a pattern neighbor of `v`.
    pub fn cn_list(&self, v: PNode, n: NodeId, vp: PNode) -> &[NodeId] {
        let ci = self.position(v, n).expect("n is a candidate of v");
        let j = self
            .neighbor_index(v, vp)
            .expect("v' is a pattern neighbor");
        &self.cn[v.index()][j][ci]
    }

    /// Is `n` an alive candidate for `v`?
    pub fn is_alive(&self, v: PNode, n: NodeId) -> bool {
        self.alive_bits[v.index()].contains(n)
    }
}

/// Filter the node-id range `[range.start, range.end)` against every
/// pattern node's label/degree/profile constraints, returning per-pattern-
/// node candidate lists for that range (sorted, since ids scan in order).
fn enumerate_range(
    g: &Graph,
    p: &Pattern,
    pneigh: &[Vec<PNode>],
    pattern_profiles: &[NodeProfile],
    profiles: &ProfileIndex,
    range: std::ops::Range<u32>,
) -> Vec<Vec<NodeId>> {
    let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); p.num_nodes()];
    for v in p.nodes() {
        let vi = v.index();
        let need_label = p.label(v);
        let need_degree = pneigh[vi].len();
        let needle = &pattern_profiles[vi];
        let list = &mut cands[vi];
        for id in range.clone() {
            let n = NodeId(id);
            if let Some(l) = need_label {
                if g.label(n) != l {
                    continue;
                }
            }
            if g.degree(n) < need_degree {
                continue;
            }
            if !profiles.contains(n, needle) {
                continue;
            }
            list.push(n);
        }
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    /// Triangle 0(L0)-1(L1)-2(L2) plus pendant 3(L1) on node 0.
    fn labeled_graph() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(2));
        b.add_node(Label(1));
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2), (0, 3)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    fn space(g: &Graph, p: &Pattern) -> (CandidateSpace, MatchStats) {
        let profiles = ProfileIndex::build(g);
        let mut stats = MatchStats::default();
        let mut cs = CandidateSpace::enumerate(g, p, &profiles, &mut stats);
        cs.init_candidate_neighbors(g, p);
        cs.prune(p, &mut stats);
        (cs, stats)
    }

    #[test]
    fn label_constraint_filters_candidates() {
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?A-?B; [?A.LABEL=1]; [?B.LABEL=2]; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        // ?A must be label 1 AND adjacent to a label-2 node: only node 1.
        assert_eq!(cs.alive_candidates(a).collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(cs.alive_candidates(b).collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn profile_filter_counts_multiplicity() {
        // Pattern: hub with two label-1 neighbors. Node 0 has exactly two
        // label-1 neighbors (1 and 3); node 2 has only one.
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?H-?X; ?H-?Y; [?X.LABEL=1]; [?Y.LABEL=1]; }").unwrap();
        let (cs, _) = space(&g, &p);
        let h = p.node_by_name("H").unwrap();
        assert_eq!(cs.alive_candidates(h).collect::<Vec<_>>(), vec![NodeId(0)]);
    }

    #[test]
    fn cn_sets_contain_only_viable_neighbors() {
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?A-?B; [?B.LABEL=2]; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        // CN(0, A, B) = neighbors of 0 that are candidates for B (= {2}).
        assert_eq!(cs.cn_list(a, NodeId(0), b), &[NodeId(2)]);
        // Node 3 (pendant, only neighbor is 0 with label 0) dies for A.
        assert!(!cs.is_alive(a, NodeId(3)));
    }

    #[test]
    fn pruning_cascades() {
        // Path graph 0-1-2 all label 0; pattern = triangle (unlabeled):
        // initially every node with degree>=2 is a candidate (node 1), but
        // pruning must empty everything (no triangle exists).
        let mut bld = GraphBuilder::undirected();
        bld.add_nodes(3, Label(0));
        bld.add_edge(NodeId(0), NodeId(1));
        bld.add_edge(NodeId(1), NodeId(2));
        let g = bld.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let (cs, stats) = space(&g, &p);
        for v in p.nodes() {
            assert_eq!(cs.alive_candidates(v).count(), 0, "node {v:?}");
        }
        assert!(stats.prune_iterations >= 1);
        assert_eq!(stats.pruned_candidates, 0);
    }

    #[test]
    fn directed_relation_neighbors() {
        // 0 -> 1, 2 -> 1. Pattern ?A->?B.
        let mut bld = GraphBuilder::directed();
        bld.add_nodes(3, Label(0));
        bld.add_edge(NodeId(0), NodeId(1));
        bld.add_edge(NodeId(2), NodeId(1));
        let g = bld.build();
        let p = Pattern::parse("PATTERN d { ?A->?B; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        let a_cands: Vec<_> = cs.alive_candidates(a).collect();
        assert_eq!(a_cands, vec![NodeId(0), NodeId(2)]);
        assert_eq!(cs.alive_candidates(b).collect::<Vec<_>>(), vec![NodeId(1)]);
        // CN of A-candidates towards B only contains out-neighbors.
        assert_eq!(cs.cn_list(a, NodeId(0), b), &[NodeId(1)]);
    }

    #[test]
    fn neighbor_and_position_lookups() {
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?A-?B; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        assert_eq!(cs.neighbor_index(a, b), Some(0));
        assert!(cs.position(a, NodeId(0)).is_some());
        assert_eq!(cs.position(a, NodeId(99)), None);
    }
}
