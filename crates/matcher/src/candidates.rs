//! Candidate enumeration and candidate-neighbor sets (Sections III-A/B/C).

use crate::stats::MatchStats;
use ego_graph::profile::{NodeProfile, ProfileIndex};
use ego_graph::{neighborhood, FastHashSet, Graph, NodeId};
use ego_pattern::{PNode, Pattern};

/// The candidate space shared by both matchers: per pattern node `v`, the
/// candidate list `C(v)`; for the CN matcher additionally the candidate
/// neighbor sets `CN(n, v, v')`.
pub struct CandidateSpace {
    /// Pattern neighbor lists: `pneigh[v.index()]` = sorted pattern
    /// neighbors of `v` through positive edges.
    pub pneigh: Vec<Vec<PNode>>,
    /// `cands[v.index()]` = sorted candidate node list `C(v)`.
    pub cands: Vec<Vec<NodeId>>,
    /// `alive[v.index()][ci]` = candidate at position `ci` still viable.
    pub alive: Vec<Vec<bool>>,
    /// Membership of alive candidates, for O(1) `n ∈ C(v)` checks.
    pub in_c: Vec<FastHashSet<u32>>,
    /// `cn[v.index()][j][ci]` = CN(cands\[v\]\[ci\], v, pneigh\[v\]\[j\]),
    /// sorted. Populated only by [`CandidateSpace::init_candidate_neighbors`].
    pub cn: Vec<Vec<Vec<Vec<NodeId>>>>,
}

impl CandidateSpace {
    /// Step 1 (Section III-A): enumerate candidates per pattern node using
    /// label constraints, degree, and profile containment.
    pub fn enumerate(
        g: &Graph,
        p: &Pattern,
        profiles: &ProfileIndex,
        stats: &mut MatchStats,
    ) -> Self {
        let np = p.num_nodes();
        let pneigh: Vec<Vec<PNode>> = p.nodes().map(|v| p.neighbors(v)).collect();

        // Pattern node profiles over *label-constrained* neighbors only:
        // an unconstrained pattern neighbor can match any label, so it
        // contributes to the degree requirement but not to any label bucket.
        let pattern_profiles: Vec<NodeProfile> = p
            .nodes()
            .map(|v| {
                NodeProfile::from_neighbor_labels(
                    pneigh[v.index()].iter().filter_map(|&w| p.label(w)),
                )
            })
            .collect();

        let mut cands: Vec<Vec<NodeId>> = vec![Vec::new(); np];
        for v in p.nodes() {
            let vi = v.index();
            let need_label = p.label(v);
            let need_degree = pneigh[vi].len();
            let needle = &pattern_profiles[vi];
            let list = &mut cands[vi];
            for n in g.node_ids() {
                if let Some(l) = need_label {
                    if g.label(n) != l {
                        continue;
                    }
                }
                if g.degree(n) < need_degree {
                    continue;
                }
                if !profiles.contains(n, needle) {
                    continue;
                }
                list.push(n);
            }
            stats.initial_candidates += list.len();
        }

        let alive: Vec<Vec<bool>> = cands.iter().map(|c| vec![true; c.len()]).collect();
        let in_c: Vec<FastHashSet<u32>> = cands
            .iter()
            .map(|c| c.iter().map(|n| n.0).collect())
            .collect();

        CandidateSpace {
            pneigh,
            cands,
            alive,
            in_c,
            cn: vec![Vec::new(); np],
        }
    }

    /// The adjacency list of `n` relevant for the pattern pair `(v, v')`,
    /// honoring edge direction: if the pattern requires `v -> v'`, images
    /// of `v'` must be out-neighbors of `n`; `v' -> v` requires
    /// in-neighbors; both require both; an undirected pattern edge accepts
    /// any adjacency.
    fn relation_neighbors(g: &Graph, p: &Pattern, n: NodeId, v: PNode, vp: PNode) -> Vec<NodeId> {
        if !g.is_directed() {
            return g.neighbors(n).to_vec();
        }
        let (ab, ba) = p.directed_requirements(v, vp);
        match (ab, ba) {
            (true, true) => neighborhood::intersect_sorted(g.out_neighbors(n), g.in_neighbors(n)),
            (true, false) => g.out_neighbors(n).to_vec(),
            (false, true) => g.in_neighbors(n).to_vec(),
            (false, false) => g.neighbors(n).to_vec(),
        }
    }

    /// Step 2 (Section III-B): initialize `CN(n, v, v') = C(v') ∩ N(n)`
    /// for every candidate and pattern-neighbor pair.
    pub fn init_candidate_neighbors(&mut self, g: &Graph, p: &Pattern) {
        for v in p.nodes() {
            let vi = v.index();
            let mut per_neighbor = Vec::with_capacity(self.pneigh[vi].len());
            for &vp in &self.pneigh[vi] {
                let cvp = &self.cands[vp.index()];
                let lists: Vec<Vec<NodeId>> = self.cands[vi]
                    .iter()
                    .map(|&n| {
                        let adj = Self::relation_neighbors(g, p, n, v, vp);
                        neighborhood::intersect_sorted(&adj, cvp)
                    })
                    .collect();
                per_neighbor.push(lists);
            }
            self.cn[vi] = per_neighbor;
        }
    }

    /// Step 3 (Section III-C): simultaneously prune candidates whose CN
    /// sets are empty and CN entries that left the candidate sets, until a
    /// fixpoint. Returns the number of passes.
    pub fn prune(&mut self, p: &Pattern, stats: &mut MatchStats) -> usize {
        let mut passes = 0;
        loop {
            passes += 1;
            let mut changed = false;

            // Kill candidates with an empty CN set for some pattern neighbor.
            for v in p.nodes() {
                let vi = v.index();
                for ci in 0..self.cands[vi].len() {
                    if !self.alive[vi][ci] {
                        continue;
                    }
                    let dead = self.cn[vi].iter().any(|lists| lists[ci].is_empty());
                    if dead {
                        self.alive[vi][ci] = false;
                        self.in_c[vi].remove(&self.cands[vi][ci].0);
                        changed = true;
                    }
                }
            }

            // Drop CN entries that are no longer candidates for v'.
            for v in p.nodes() {
                let vi = v.index();
                for (j, &vp) in self.pneigh[vi].iter().enumerate() {
                    let in_cvp = &self.in_c[vp.index()];
                    for ci in 0..self.cands[vi].len() {
                        if !self.alive[vi][ci] {
                            continue;
                        }
                        let list = &mut self.cn[vi][j][ci];
                        let before = list.len();
                        list.retain(|n| in_cvp.contains(&n.0));
                        if list.len() != before {
                            changed = true;
                        }
                    }
                }
            }

            if !changed {
                break;
            }
        }
        stats.prune_iterations = passes;
        stats.pruned_candidates = self
            .alive
            .iter()
            .map(|a| a.iter().filter(|&&x| x).count())
            .sum();
        passes
    }

    /// Alive candidates of `v`, in sorted order.
    pub fn alive_candidates(&self, v: PNode) -> impl Iterator<Item = NodeId> + '_ {
        let vi = v.index();
        self.cands[vi]
            .iter()
            .zip(&self.alive[vi])
            .filter(|&(_, &a)| a)
            .map(|(&n, _)| n)
    }

    /// Position of `n` within `C(v)` (None if absent).
    pub fn position(&self, v: PNode, n: NodeId) -> Option<usize> {
        self.cands[v.index()].binary_search(&n).ok()
    }

    /// Index of `vp` within `v`'s pattern-neighbor list.
    pub fn neighbor_index(&self, v: PNode, vp: PNode) -> Option<usize> {
        self.pneigh[v.index()].iter().position(|&w| w == vp)
    }

    /// The pruned `CN(n, v, v')` list. Panics if `n ∉ C(v)` or `v'` is not
    /// a pattern neighbor of `v`.
    pub fn cn_list(&self, v: PNode, n: NodeId, vp: PNode) -> &[NodeId] {
        let ci = self.position(v, n).expect("n is a candidate of v");
        let j = self
            .neighbor_index(v, vp)
            .expect("v' is a pattern neighbor");
        &self.cn[v.index()][j][ci]
    }

    /// Is `n` an alive candidate for `v`?
    pub fn is_alive(&self, v: PNode, n: NodeId) -> bool {
        self.in_c[v.index()].contains(&n.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    /// Triangle 0(L0)-1(L1)-2(L2) plus pendant 3(L1) on node 0.
    fn labeled_graph() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_node(Label(0));
        b.add_node(Label(1));
        b.add_node(Label(2));
        b.add_node(Label(1));
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2), (0, 3)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    fn space(g: &Graph, p: &Pattern) -> (CandidateSpace, MatchStats) {
        let profiles = ProfileIndex::build(g);
        let mut stats = MatchStats::default();
        let mut cs = CandidateSpace::enumerate(g, p, &profiles, &mut stats);
        cs.init_candidate_neighbors(g, p);
        cs.prune(p, &mut stats);
        (cs, stats)
    }

    #[test]
    fn label_constraint_filters_candidates() {
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?A-?B; [?A.LABEL=1]; [?B.LABEL=2]; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        // ?A must be label 1 AND adjacent to a label-2 node: only node 1.
        assert_eq!(cs.alive_candidates(a).collect::<Vec<_>>(), vec![NodeId(1)]);
        assert_eq!(cs.alive_candidates(b).collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn profile_filter_counts_multiplicity() {
        // Pattern: hub with two label-1 neighbors. Node 0 has exactly two
        // label-1 neighbors (1 and 3); node 2 has only one.
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?H-?X; ?H-?Y; [?X.LABEL=1]; [?Y.LABEL=1]; }").unwrap();
        let (cs, _) = space(&g, &p);
        let h = p.node_by_name("H").unwrap();
        assert_eq!(cs.alive_candidates(h).collect::<Vec<_>>(), vec![NodeId(0)]);
    }

    #[test]
    fn cn_sets_contain_only_viable_neighbors() {
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?A-?B; [?B.LABEL=2]; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        // CN(0, A, B) = neighbors of 0 that are candidates for B (= {2}).
        assert_eq!(cs.cn_list(a, NodeId(0), b), &[NodeId(2)]);
        // Node 3 (pendant, only neighbor is 0 with label 0) dies for A.
        assert!(!cs.is_alive(a, NodeId(3)));
    }

    #[test]
    fn pruning_cascades() {
        // Path graph 0-1-2 all label 0; pattern = triangle (unlabeled):
        // initially every node with degree>=2 is a candidate (node 1), but
        // pruning must empty everything (no triangle exists).
        let mut bld = GraphBuilder::undirected();
        bld.add_nodes(3, Label(0));
        bld.add_edge(NodeId(0), NodeId(1));
        bld.add_edge(NodeId(1), NodeId(2));
        let g = bld.build();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let (cs, stats) = space(&g, &p);
        for v in p.nodes() {
            assert_eq!(cs.alive_candidates(v).count(), 0, "node {v:?}");
        }
        assert!(stats.prune_iterations >= 1);
        assert_eq!(stats.pruned_candidates, 0);
    }

    #[test]
    fn directed_relation_neighbors() {
        // 0 -> 1, 2 -> 1. Pattern ?A->?B.
        let mut bld = GraphBuilder::directed();
        bld.add_nodes(3, Label(0));
        bld.add_edge(NodeId(0), NodeId(1));
        bld.add_edge(NodeId(2), NodeId(1));
        let g = bld.build();
        let p = Pattern::parse("PATTERN d { ?A->?B; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        let a_cands: Vec<_> = cs.alive_candidates(a).collect();
        assert_eq!(a_cands, vec![NodeId(0), NodeId(2)]);
        assert_eq!(cs.alive_candidates(b).collect::<Vec<_>>(), vec![NodeId(1)]);
        // CN of A-candidates towards B only contains out-neighbors.
        assert_eq!(cs.cn_list(a, NodeId(0), b), &[NodeId(1)]);
    }

    #[test]
    fn neighbor_and_position_lookups() {
        let g = labeled_graph();
        let p = Pattern::parse("PATTERN p { ?A-?B; }").unwrap();
        let (cs, _) = space(&g, &p);
        let a = p.node_by_name("A").unwrap();
        let b = p.node_by_name("B").unwrap();
        assert_eq!(cs.neighbor_index(a, b), Some(0));
        assert!(cs.position(a, NodeId(0)).is_some());
        assert_eq!(cs.position(a, NodeId(99)), None);
    }
}
