//! Matcher instrumentation.
//!
//! Cheap counters that back the paper's explanation of *why* CN beats the
//! GQL-style baseline ("the speedups are attributable, in large part, to
//! the use of candidate neighbor sets"): the benches report extension
//! candidates scanned per algorithm.

use ego_graph::setops::SetOpStats;

/// Counters accumulated during one matcher run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidates that survived profile filtering, summed over pattern nodes.
    pub initial_candidates: usize,
    /// Candidates remaining after pruning/refinement.
    pub pruned_candidates: usize,
    /// Fixpoint iterations of the pruning loop.
    pub prune_iterations: usize,
    /// Nodes considered during match extension (the dominant cost:
    /// candidate-neighbor intersections for CN, candidate-set scans for GQL).
    pub extension_candidates_scanned: usize,
    /// Partial matches materialized.
    pub partial_matches: usize,
    /// Embeddings emitted (before final predicate filtering).
    pub raw_embeddings: usize,
    /// Embeddings surviving negation/predicate filters.
    pub filtered_embeddings: usize,
    /// Set-intersection kernel dispatch counters (merge vs gallop vs
    /// bitset, plus scratch-buffer reuse), accumulated across the
    /// candidate, prune, and extraction phases.
    pub setops: SetOpStats,
}

impl MatchStats {
    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = MatchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed_and_reset_works() {
        let mut s = MatchStats {
            initial_candidates: 5,
            ..Default::default()
        };
        assert_eq!(s.pruned_candidates, 0);
        s.reset();
        assert_eq!(s, MatchStats::default());
    }
}
