//! Reusable per-neighborhood matching for batched census execution.
//!
//! The census algorithms evaluate a pattern inside every focal node's
//! k-hop neighborhood. Re-running the full matcher per neighborhood
//! re-derives the candidate space (profile filtering, CN-set
//! initialization, simultaneous pruning) from scratch each time, even
//! though all of that depends only on the (graph, pattern) pair. A
//! [`NeighborhoodMatcher`] does the expensive derivation **once** and
//! then answers membership-restricted queries cheaply: extraction walks
//! the pruned candidate space but drops any candidate outside the
//! neighborhood's node set at every depth.
//!
//! Soundness: a match inside the induced subgraph `S(n, k)` is exactly a
//! global match whose images all lie in `S(n, k)` — induced subgraphs
//! preserve both positive and negative edge semantics, and the globally
//! pruned candidate space is complete for global matches, hence for the
//! restricted ones.

use crate::candidates::CandidateSpace;
use crate::cn::{self, ExtractScratch};
use crate::matches::MatchList;
use crate::stats::MatchStats;
use ego_graph::profile::ProfileIndex;
use ego_graph::{FastHashSet, Graph};
use ego_pattern::{automorphism_group, Pattern, SearchOrder};

/// Per-(graph, pattern) matching state reusable across many
/// neighborhoods: the pruned candidate space, the search order, and the
/// automorphism group (for embedding -> match conversion).
pub struct NeighborhoodMatcher<'g, 'p> {
    g: &'g Graph,
    p: &'p Pattern,
    cs: CandidateSpace,
    order: SearchOrder,
    aut_count: usize,
}

impl<'g, 'p> NeighborhoodMatcher<'g, 'p> {
    /// Build the matcher, deriving the candidate space from scratch.
    pub fn new(g: &'g Graph, p: &'p Pattern) -> Self {
        let profiles = ProfileIndex::build(g);
        Self::with_profiles(g, p, &profiles)
    }

    /// Build the matcher reusing a prebuilt profile index (batches build
    /// the index once per graph and share it across patterns).
    pub fn with_profiles(g: &'g Graph, p: &'p Pattern, profiles: &ProfileIndex) -> Self {
        Self::with_profiles_threads(g, p, profiles, 1)
    }

    /// [`NeighborhoodMatcher::with_profiles`] with the candidate
    /// enumeration and CN-set initialization phases sharded over
    /// `threads` workers. The derived candidate space is bit-identical
    /// at any thread count.
    pub fn with_profiles_threads(
        g: &'g Graph,
        p: &'p Pattern,
        profiles: &ProfileIndex,
        threads: usize,
    ) -> Self {
        let mut stats = MatchStats::default();
        let mut cs = CandidateSpace::enumerate_threads(g, p, profiles, &mut stats, threads);
        cs.init_candidate_neighbors_threads(g, p, &mut stats, threads);
        cs.prune(p, &mut stats);
        ego_graph::setops::record_global(&stats.setops);
        NeighborhoodMatcher {
            g,
            p,
            cs,
            order: SearchOrder::new(p),
            aut_count: automorphism_group(p).len().max(1),
        }
    }

    /// The pattern this matcher was built for.
    pub fn pattern(&self) -> &'p Pattern {
        self.p
    }

    /// Count the distinct matches whose node images all lie in
    /// `membership` (the neighborhood's node set).
    ///
    /// Every embedding's automorphic images stay inside the set, so each
    /// match contributes exactly `|Aut(p)|` restricted embeddings and the
    /// division below is exact.
    pub fn count_in(&self, membership: &FastHashSet<u32>) -> u64 {
        let mut scratch = ExtractScratch::default();
        self.count_in_scratch(membership, &mut scratch)
    }

    /// [`NeighborhoodMatcher::count_in`] with caller-owned scratch
    /// buffers: census loops evaluating thousands of neighborhoods reuse
    /// one [`ExtractScratch`] so per-depth candidate lists stop churning
    /// the allocator.
    pub fn count_in_scratch(
        &self,
        membership: &FastHashSet<u32>,
        scratch: &mut ExtractScratch,
    ) -> u64 {
        let mut stats = MatchStats::default();
        let embeddings = cn::extract_with(
            self.g,
            self.p,
            &self.cs,
            &self.order,
            Some(membership),
            &mut stats,
            scratch,
        );
        ego_graph::setops::record_global(&stats.setops);
        debug_assert_eq!(embeddings.len() % self.aut_count, 0);
        (embeddings.len() / self.aut_count) as u64
    }

    /// The distinct matches whose node images all lie in `membership`,
    /// deduplicated by the pattern's automorphism group.
    pub fn matches_in(&self, membership: &FastHashSet<u32>) -> MatchList {
        let mut scratch = ExtractScratch::default();
        self.matches_in_scratch(membership, &mut scratch)
    }

    /// [`NeighborhoodMatcher::matches_in`] with caller-owned scratch.
    pub fn matches_in_scratch(
        &self,
        membership: &FastHashSet<u32>,
        scratch: &mut ExtractScratch,
    ) -> MatchList {
        let mut stats = MatchStats::default();
        let embeddings = cn::extract_with(
            self.g,
            self.p,
            &self.cs,
            &self.order,
            Some(membership),
            &mut stats,
            scratch,
        );
        ego_graph::setops::record_global(&stats.setops);
        MatchList::from_embeddings(self.p, embeddings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatcherKind;
    use ego_graph::{GraphBuilder, Label, NodeId};

    /// Two triangles sharing node 2, plus a pendant at 4.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(6, Label(0));
        for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        b.build()
    }

    fn members(ids: &[u32]) -> FastHashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn restricted_counts_match_induced_subgraph() {
        let g = fixture();
        let p = Pattern::parse("PATTERN t { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        let m = NeighborhoodMatcher::new(&g, &p);
        // Full graph: both triangles.
        assert_eq!(m.count_in(&members(&[0, 1, 2, 3, 4, 5])), 2);
        // Only the first triangle's nodes.
        assert_eq!(m.count_in(&members(&[0, 1, 2])), 1);
        // Split across the two triangles: no complete triangle.
        assert_eq!(m.count_in(&members(&[0, 1, 3, 4])), 0);
        assert_eq!(m.count_in(&members(&[])), 0);
    }

    #[test]
    fn unrestricted_equals_global_matcher() {
        let g = fixture();
        let p = Pattern::parse("PATTERN e { ?A-?B; }").unwrap();
        let all: FastHashSet<u32> = (0..g.num_nodes() as u32).collect();
        let m = NeighborhoodMatcher::new(&g, &p);
        let global = crate::find_matches(&g, &p, MatcherKind::CandidateNeighbors);
        assert_eq!(m.count_in(&all), global.len() as u64);
        assert_eq!(m.matches_in(&all).len(), global.len());
    }

    #[test]
    fn rigid_directed_pattern() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let p = Pattern::parse("PATTERN d { ?A->?B; ?B->?C; }").unwrap();
        let m = NeighborhoodMatcher::new(&g, &p);
        assert_eq!(m.count_in(&members(&[0, 1, 2])), 1);
        assert_eq!(m.count_in(&members(&[0, 1])), 0);
    }
}
