//! Planner equivalence: executing through the cost-based planner
//! (`Algorithm::Auto`) must be bit-identical to forcing any concrete
//! census algorithm, on every execution path the planner steers —
//! single-aggregate `COUNTP`, `COUNTSP`, multi-aggregate batches, and
//! sharded focal ranges — across thread counts 1–4, and whether the
//! cost model runs on heuristic or `ANALYZE`-profiled statistics. The
//! planner may pick any algorithm and any batch grouping; none of those
//! choices is allowed to change a single result byte.

use ego_graph::{Graph, GraphBuilder, Label, NodeId};
use ego_query::{Algorithm, QueryEngine, ShardSpec, Table};
use proptest::prelude::*;

/// Every concrete algorithm the planner chooses between.
const FORCED: [Algorithm; 6] = [
    Algorithm::NdBaseline,
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::PtBaseline,
    Algorithm::PtRandom,
    Algorithm::PtOpt,
];

/// The statement shapes under test: plain COUNTP, COUNTSP with a
/// subpattern, and a multi-aggregate batch the batch-grouping pass
/// splits into per-algorithm stages.
const STATEMENTS: [&str; 3] = [
    "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes",
    "SELECT ID, COUNTSP(pair, tria, SUBGRAPH(ID, 1)) FROM nodes",
    "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)), COUNTP(wedge, SUBGRAPH(ID, 2)), \
     COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes",
];

fn random_graph(n: u32, raw_edges: &[(u32, u32)], labels: u16) -> Graph {
    let mut b = GraphBuilder::undirected();
    for i in 0..n {
        b.add_node(Label((i % labels as u32) as u16));
    }
    for &(x, y) in raw_edges {
        let a = NodeId(x % n);
        let c = NodeId(y % n);
        if a != c {
            b.add_edge(a, c);
        }
    }
    b.build()
}

fn engine(g: &Graph) -> QueryEngine<'_> {
    let mut e = QueryEngine::with_builtins(g);
    for def in [
        "PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }",
        "PATTERN wedge { ?A-?B; ?B-?C; ?A!-?C; }",
        "PATTERN tria { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN pair {?A; ?B;} }",
    ] {
        e.catalog_mut().define(def).unwrap();
    }
    e.set_seed(0xBEEF);
    e
}

/// The forced algorithms a statement shape supports: ND-BAS and
/// ND-DIFF cannot evaluate COUNTSP, so only the planner-eligible rest
/// are compared there.
fn supported(sql: &str) -> impl Iterator<Item = Algorithm> + '_ {
    FORCED.into_iter().filter(move |a| {
        !sql.contains("COUNTSP") || !matches!(a, Algorithm::NdBaseline | Algorithm::NdDiff)
    })
}

/// Run `sql` with the planner (Auto) and with every forced algorithm at
/// `threads`, asserting the result tables are identical. `label` names
/// the configuration in failure messages.
fn assert_equivalent(
    e: &mut QueryEngine<'_>,
    sql: &str,
    threads: usize,
    label: &str,
) -> Result<Table, TestCaseError> {
    e.set_threads(threads);
    e.set_algorithm(Algorithm::Auto);
    let planned = e.execute(sql);
    prop_assert!(planned.is_ok(), "{label}: planned run failed: {planned:?}");
    let planned = planned.unwrap();
    for forced in supported(sql) {
        e.set_algorithm(forced);
        let got = e.execute(sql);
        prop_assert!(got.is_ok(), "{label} algo={forced:?}: {got:?}");
        prop_assert_eq!(
            &got.unwrap(),
            &planned,
            "{} algo={:?} threads={} diverged from planned execution",
            label,
            forced,
            threads
        );
    }
    e.set_algorithm(Algorithm::Auto);
    Ok(planned)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized graphs: the planner's choices (algorithm, batch
    /// grouping, stats basis) never change results relative to any
    /// forced algorithm, sequential or parallel, whole-range or
    /// sharded.
    #[test]
    fn planned_execution_matches_every_forced_algorithm(
        n in 8u32..40,
        raw_edges in prop::collection::vec((any::<u32>(), any::<u32>()), 5..120),
        labels in 1u16..4,
    ) {
        let g = random_graph(n, &raw_edges, labels);
        let mut e = engine(&g);

        // Heuristic-stats planning first, across statement shapes and
        // thread counts.
        let mut heuristic: Vec<Table> = Vec::new();
        for sql in STATEMENTS {
            for threads in 1..=4usize {
                let t = assert_equivalent(&mut e, sql, threads, "heuristic")?;
                if threads == 1 {
                    heuristic.push(t);
                }
            }
        }

        // ANALYZE flips the planner onto profiled statistics (and may
        // flip its algorithm choice); results must not move.
        e.analyze().unwrap();
        for (i, sql) in STATEMENTS.iter().enumerate() {
            let t = assert_equivalent(&mut e, sql, 2, "analyzed")?;
            prop_assert_eq!(
                &t,
                &heuristic[i],
                "analyzed planning changed results for {}",
                sql
            );
        }

        // Sharded planning: each shard's slice is algorithm-invariant,
        // and the shards reassemble to the whole-range answer.
        let whole = &heuristic[0];
        let mut reassembled = 0usize;
        for index in 0..2u32 {
            e.set_focal_shard(Some(ShardSpec::new(index, 2).unwrap()));
            let t = assert_equivalent(&mut e, STATEMENTS[0], 2, "sharded")?;
            for row in t.rows() {
                prop_assert!(whole.rows().contains(row), "shard row missing from whole");
            }
            reassembled += t.num_rows();
        }
        e.set_focal_shard(None);
        prop_assert_eq!(reassembled, whole.num_rows());
    }
}
