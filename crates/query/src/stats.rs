//! Graph statistics for the cost-based planner, plus the planner's
//! bookkeeping counters.
//!
//! `ANALYZE` samples a degree/label/triangle profile of the graph into a
//! [`GraphStats`] snapshot, persisted as a text sidecar next to the graph
//! file (`graph.egb` → `graph.egb.stats`) and keyed by the graph
//! fingerprint so stale statistics are detected, reported, and ignored.
//! The optimizer's algorithm-selection pass turns a snapshot into
//! per-algorithm cost estimates (the paper's Fig-4 ND-vs-PT crossovers);
//! without one it falls back to a cheap structural heuristic.

use crate::error::QueryError;
use crate::table::Table;
use crate::value::Value;
use ego_census::Algorithm;
use ego_graph::setops::SetOpsTuning;
use ego_graph::{stats as gstats, Graph, NodeId};
use ego_pattern::Pattern;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shared slot holding the latest `ANALYZE` snapshot. Server sessions
/// point their engines at one slot so an `analyze` on any connection
/// feeds every session's planner immediately.
pub type StatsSlot = Arc<RwLock<Option<Arc<GraphStats>>>>;

/// How many nodes `ANALYZE` samples for clustering/triangle profiles.
pub const ANALYZE_SAMPLE: usize = 256;

/// Sidecar format version (first line: `egostats v<N>`).
const STATS_VERSION: u32 = 1;

/// A sampled statistical profile of one graph, keyed by its fingerprint.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// [`Graph::fingerprint`] of the profiled graph; a mismatch against
    /// the live graph marks this snapshot stale.
    pub fingerprint: u64,
    /// Node count.
    pub num_nodes: usize,
    /// Edge count.
    pub num_edges: usize,
    /// Directed graph?
    pub directed: bool,
    /// Distinct label count.
    pub num_labels: u16,
    /// Maximum (undirected-view) degree.
    pub max_degree: usize,
    /// Mean degree `2m/n` (or `m/n` directed inputs still traverse the
    /// undirected view, so the undirected mean is what matters).
    pub avg_degree: f64,
    /// Mean squared degree `E[d²]`, exact from the degree histogram.
    /// Captures degree skew: the match estimator branches by the mean
    /// excess degree `E[d²]/E[d] − 1`, which on hub-heavy graphs is far
    /// larger than `d̄` (and is what makes their match lists big).
    pub avg_sq_degree: f64,
    /// 90th-percentile degree, from the exact degree histogram.
    pub degree_p90: usize,
    /// Mean local clustering coefficient over the sample (exact when
    /// `sample_size == num_nodes`). The heuristic fallback substitutes a
    /// density proxy here.
    pub avg_clustering: f64,
    /// Mean per-node triangle count over the sample.
    pub avg_triangles: f64,
    /// How many nodes the clustering/triangle sample covered; `0` marks
    /// a heuristic (non-`ANALYZE`) profile.
    pub sample_size: usize,
}

impl GraphStats {
    /// Profile a graph: exact degree statistics (one `O(n)` pass) plus
    /// clustering/triangle counts over a deterministic evenly-strided
    /// sample of at most [`ANALYZE_SAMPLE`] nodes. Deterministic: equal
    /// graphs produce byte-equal profiles on every host.
    pub fn analyze(g: &Graph) -> GraphStats {
        let n = g.num_nodes();
        let mut s = Self::heuristic(g);
        let sample = n.min(ANALYZE_SAMPLE);
        if sample > 0 {
            // Even stride over the node-id range; deterministic and
            // insensitive to storage order.
            let mut cl = 0.0f64;
            let mut tri = 0.0f64;
            for i in 0..sample {
                let node = NodeId(((i * n) / sample) as u32);
                cl += gstats::local_clustering(g, node);
                tri += gstats::local_triangles(g, node) as f64;
            }
            s.avg_clustering = cl / sample as f64;
            s.avg_triangles = tri / sample as f64;
        }
        s.sample_size = sample;
        s
    }

    /// A cheap structural profile used when no `ANALYZE` snapshot is
    /// available (or the available one is stale): exact counts and
    /// degree histogram, with edge density standing in for the sampled
    /// clustering coefficient. `sample_size == 0` tags the result so
    /// the planner can report `heuristic` rather than `cost-model`.
    pub fn heuristic(g: &Graph) -> GraphStats {
        let n = g.num_nodes();
        let hist = gstats::degree_histogram(g);
        let total_degree: usize = hist.iter().enumerate().map(|(d, c)| d * c).sum();
        let total_sq_degree: usize = hist.iter().enumerate().map(|(d, c)| d * d * c).sum();
        let avg_degree = if n == 0 {
            0.0
        } else {
            total_degree as f64 / n as f64
        };
        let avg_sq_degree = if n == 0 {
            0.0
        } else {
            total_sq_degree as f64 / n as f64
        };
        // Density proxy: d̄/(n-1) is 1.0 on a clique and ~0 on a path,
        // which is the distinction the ND-vs-PT crossover needs.
        let density = if n > 1 {
            (avg_degree / (n - 1) as f64).min(1.0)
        } else {
            0.0
        };
        GraphStats {
            fingerprint: g.fingerprint(),
            num_nodes: n,
            num_edges: g.num_edges(),
            directed: g.is_directed(),
            num_labels: g.num_labels(),
            max_degree: hist.len().saturating_sub(1),
            avg_degree,
            avg_sq_degree,
            degree_p90: percentile(&hist, 0.90),
            avg_clustering: density,
            avg_triangles: 0.0,
            sample_size: 0,
        }
    }

    /// True when this snapshot does not describe the given live graph.
    pub fn is_stale(&self, live_fingerprint: u64) -> bool {
        self.fingerprint != live_fingerprint
    }

    /// Expected size of a radius-`k` neighborhood ball, capped at `n`.
    pub fn ball(&self, k: u32) -> f64 {
        let n = (self.num_nodes as f64).max(1.0);
        let d = self.avg_degree.max(1.0);
        let mut ball = 1.0f64;
        let mut frontier = 1.0f64;
        for _ in 0..k {
            frontier *= d;
            ball += frontier;
            if ball >= n {
                return n;
            }
        }
        ball.min(n)
    }

    /// Expected global match-list length for a pattern: `n` anchor
    /// choices, `d̄` for the first spanning-tree edge, then one mean
    /// excess-degree factor (`E[d²]/E[d] − 1`, the configuration-model
    /// branching rate) per further spanning edge, and one clustering
    /// factor per closing edge (the same shape as the paper's Fig-4
    /// crossover inputs). The excess-degree branching matters on
    /// degree-skewed graphs: a BA graph's wedge count is driven by
    /// `E[d²]`, and pricing it by `d̄²` undercounts matches by orders of
    /// magnitude, which mis-picks PT in exactly the dense hub-heavy
    /// regime ND wins.
    pub fn est_matches(&self, pattern: &Pattern) -> f64 {
        let v = pattern.num_nodes();
        let e = pattern.positive_edges().len();
        let n = self.num_nodes as f64;
        let d = self.avg_degree.max(1.0);
        // Legacy sidecars predate the second moment; fall back to d̄.
        let q = if self.avg_sq_degree > 0.0 {
            (self.avg_sq_degree / d - 1.0).max(1.0)
        } else {
            d
        };
        // A clustering coefficient of exactly 0 would zero every cyclic
        // pattern's estimate; keep a floor so costs stay ordered.
        let c = self.avg_clustering.clamp(1e-3, 1.0);
        let spanning = e.min(v.saturating_sub(1));
        let closing = e - spanning;
        let branch = if spanning == 0 {
            1.0
        } else {
            d * q.powi(spanning as i32 - 1)
        };
        n * branch * c.powi(closing as i32)
    }

    /// Derive adaptive set-intersection thresholds from graph shape:
    /// high degree skew rewards galloping earlier; dense graphs make
    /// bitset builds pay off sooner. Defaults are the measured-crossover
    /// constants in [`ego_graph::setops`].
    pub fn setops_tuning(&self) -> SetOpsTuning {
        let d = SetOpsTuning::default();
        let skew = self.max_degree as f64 / self.avg_degree.max(1.0);
        SetOpsTuning {
            gallop_ratio: if skew >= 32.0 {
                (d.gallop_ratio / 2).max(2)
            } else {
                d.gallop_ratio
            },
            bitset_min_reuse: if self.avg_degree >= 32.0 {
                (d.bitset_min_reuse / 2).max(2)
            } else {
                d.bitset_min_reuse
            },
            bitset_min_set: if self.avg_degree >= 32.0 {
                (d.bitset_min_set / 2).max(64)
            } else {
                d.bitset_min_set
            },
        }
    }

    /// The sidecar path for a graph file: the full file name plus a
    /// `.stats` suffix (`g.egb` → `g.egb.stats`), so text and binary
    /// forms of the same graph keep distinct snapshots.
    pub fn sidecar_path(graph_path: &Path) -> PathBuf {
        let mut os = graph_path.as_os_str().to_os_string();
        os.push(".stats");
        PathBuf::from(os)
    }

    /// Serialize as the text sidecar format (line-oriented `key value`;
    /// floats printed with Rust's shortest-roundtrip formatter, so
    /// load(save(s)) == s exactly).
    pub fn to_sidecar(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("egostats v{STATS_VERSION}\n"));
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        out.push_str(&format!("num_nodes {}\n", self.num_nodes));
        out.push_str(&format!("num_edges {}\n", self.num_edges));
        out.push_str(&format!("directed {}\n", self.directed));
        out.push_str(&format!("num_labels {}\n", self.num_labels));
        out.push_str(&format!("max_degree {}\n", self.max_degree));
        out.push_str(&format!("avg_degree {}\n", self.avg_degree));
        out.push_str(&format!("avg_sq_degree {}\n", self.avg_sq_degree));
        out.push_str(&format!("degree_p90 {}\n", self.degree_p90));
        out.push_str(&format!("avg_clustering {}\n", self.avg_clustering));
        out.push_str(&format!("avg_triangles {}\n", self.avg_triangles));
        out.push_str(&format!("sample_size {}\n", self.sample_size));
        out
    }

    /// Parse the text sidecar format. Unknown keys are ignored (forward
    /// compatibility); missing required keys or malformed values error.
    pub fn from_sidecar(text: &str) -> Result<GraphStats, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == format!("egostats v{STATS_VERSION}") => {}
            Some(h) => return Err(format!("unsupported stats header `{}`", h.trim())),
            None => return Err("empty stats sidecar".into()),
        }
        let mut s = GraphStats {
            fingerprint: 0,
            num_nodes: 0,
            num_edges: 0,
            directed: false,
            num_labels: 0,
            max_degree: 0,
            avg_degree: 0.0,
            avg_sq_degree: 0.0,
            degree_p90: 0,
            avg_clustering: 0.0,
            avg_triangles: 0.0,
            sample_size: 0,
        };
        let mut have_fp = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| format!("malformed stats line `{line}`"))?;
            let value = value.trim();
            let bad = |k: &str| format!("bad value for `{k}`: `{value}`");
            match key {
                "fingerprint" => {
                    s.fingerprint = u64::from_str_radix(value, 16).map_err(|_| bad(key))?;
                    have_fp = true;
                }
                "num_nodes" => s.num_nodes = value.parse().map_err(|_| bad(key))?,
                "num_edges" => s.num_edges = value.parse().map_err(|_| bad(key))?,
                "directed" => s.directed = value.parse().map_err(|_| bad(key))?,
                "num_labels" => s.num_labels = value.parse().map_err(|_| bad(key))?,
                "max_degree" => s.max_degree = value.parse().map_err(|_| bad(key))?,
                "avg_degree" => s.avg_degree = value.parse().map_err(|_| bad(key))?,
                "avg_sq_degree" => s.avg_sq_degree = value.parse().map_err(|_| bad(key))?,
                "degree_p90" => s.degree_p90 = value.parse().map_err(|_| bad(key))?,
                "avg_clustering" => s.avg_clustering = value.parse().map_err(|_| bad(key))?,
                "avg_triangles" => s.avg_triangles = value.parse().map_err(|_| bad(key))?,
                "sample_size" => s.sample_size = value.parse().map_err(|_| bad(key))?,
                _ => {} // forward compatibility
            }
        }
        if !have_fp {
            return Err("stats sidecar missing `fingerprint`".into());
        }
        Ok(s)
    }

    /// Write the sidecar next to a graph file.
    pub fn save(&self, path: &Path) -> Result<(), QueryError> {
        std::fs::write(path, self.to_sidecar())
            .map_err(|e| QueryError::Semantic(format!("cannot write {}: {e}", path.display())))
    }

    /// Load a sidecar; `Ok(None)` when the file does not exist, `Err`
    /// when it exists but cannot be parsed.
    pub fn load(path: &Path) -> Result<Option<GraphStats>, QueryError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(QueryError::Semantic(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        Self::from_sidecar(&text)
            .map(Some)
            .map_err(|e| QueryError::Semantic(format!("bad stats sidecar {}: {e}", path.display())))
    }

    /// Render as the two-column key/value table `ANALYZE` returns.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec!["statistic".into(), "value".into()]);
        let mut row = |k: &str, v: Value| t.push_row(vec![Value::Str(k.into()), v]);
        row(
            "fingerprint",
            Value::Str(format!("{:016x}", self.fingerprint)),
        );
        row("num_nodes", Value::Int(self.num_nodes as i64));
        row("num_edges", Value::Int(self.num_edges as i64));
        row("directed", Value::Bool(self.directed));
        row("num_labels", Value::Int(self.num_labels as i64));
        row("max_degree", Value::Int(self.max_degree as i64));
        row("avg_degree", Value::Float(self.avg_degree));
        row("avg_sq_degree", Value::Float(self.avg_sq_degree));
        row("degree_p90", Value::Int(self.degree_p90 as i64));
        row("avg_clustering", Value::Float(self.avg_clustering));
        row("avg_triangles", Value::Float(self.avg_triangles));
        row("sample_size", Value::Int(self.sample_size as i64));
        t
    }
}

/// The p-th percentile degree from a degree histogram.
fn percentile(hist: &[usize], p: f64) -> usize {
    let total: usize = hist.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * p).ceil() as usize;
    let mut seen = 0usize;
    for (d, c) in hist.iter().enumerate() {
        seen += c;
        if seen >= target {
            return d;
        }
    }
    hist.len().saturating_sub(1)
}

/// One census aggregate's cost-model inputs.
#[derive(Clone, Debug)]
pub struct CostJob {
    /// Pattern node count `|V_P|`.
    pub pattern_nodes: usize,
    /// Pattern positive-edge count.
    pub pattern_edges: usize,
    /// Neighborhood radius.
    pub k: u32,
    /// COUNTSP?
    pub subpattern: bool,
    /// Pattern carries node/edge attribute predicates?
    pub has_predicates: bool,
    /// Estimated global match-list length (from the estimator), possibly
    /// replaced by the exact cached length.
    pub est_matches: f64,
    /// Exact cached match-list length, if the census cache holds one.
    pub cached_matches: Option<usize>,
}

impl CostJob {
    /// Build from a resolved pattern + statement shape.
    pub fn new(stats: &GraphStats, pattern: &Pattern, k: u32, subpattern: bool) -> CostJob {
        CostJob {
            pattern_nodes: pattern.num_nodes(),
            pattern_edges: pattern.positive_edges().len(),
            k,
            subpattern,
            has_predicates: !pattern.node_predicates().is_empty()
                || !pattern.edge_predicates().is_empty(),
            est_matches: stats.est_matches(pattern),
            cached_matches: None,
        }
    }

    /// Match-list length the model should use: exact when cached.
    pub fn matches(&self) -> f64 {
        match self.cached_matches {
            Some(len) => len as f64,
            None => self.est_matches,
        }
    }

    /// Can this algorithm produce this job at all? Mirrors the batch
    /// planner's rejections (`ego_census::batch::resolve_mode`): ND-BAS
    /// serves neither COUNTSP nor predicated patterns, ND-DIFF no
    /// COUNTSP.
    pub fn supports(&self, algorithm: Algorithm) -> bool {
        match algorithm {
            Algorithm::NdBaseline => !self.subpattern && !self.has_predicates,
            Algorithm::NdDiff => !self.subpattern,
            _ => true,
        }
    }
}

/// All six concrete algorithms, in cost-model consideration order.
pub const CONSIDERED: [Algorithm; 6] = [
    Algorithm::NdPivot,
    Algorithm::NdDiff,
    Algorithm::NdBaseline,
    Algorithm::PtOpt,
    Algorithm::PtRandom,
    Algorithm::PtBaseline,
];

/// Estimated cost (abstract work units) of serving `jobs` over `focal`
/// focal nodes with one algorithm, with the ball size as the per-unit
/// traversal cost. The ND-PVOT / PT-OPT crossover is `m·v` vs `f`:
/// pattern-driven wins when the match list is smaller than the focal
/// set — the paper's "selective patterns" guidance. (An earlier
/// calibration discounted PT's traversal by the runtime chooser's
/// `PT_FACTOR`; `planner_bench` showed that underprices PT's per-match
/// ball work at paper scale, flipping a 50K-node BA census to PT at
/// ~3x the ND wall time, so PT now pays the full ball per match-list
/// entry.)
///
/// * ND sweeps every focal ball (`focal·ball(k)`), plus the one-off
///   global match-list computation (`m·v`) shared by PVOT/DIFF.
/// * PT relaxes each match image into the ball around it
///   (`m·v · ball(k)`), plus the same match-list term.
/// * The baselines pay their asymptotic penalties: ND-BAS re-matches
///   inside every ball instead of pivoting one global match list, so its
///   match term carries the per-ball inflation (`·(0.5+v)`); PT-BAS
///   scans every match against every focal ball.
/// * DIFF and RND carry small constant overheads versus PVOT/OPT so the
///   model breaks ties toward the paper's preferred variants.
pub fn estimate_cost(
    stats: &GraphStats,
    jobs: &[CostJob],
    focal: usize,
    algorithm: Algorithm,
) -> f64 {
    let f = focal as f64;
    jobs.iter()
        .map(|job| {
            let unit = stats.ball(job.k);
            let m = job.matches();
            let v = job.pattern_nodes.max(1) as f64;
            let match_list = m * v;
            match algorithm {
                Algorithm::NdPivot => f * unit + match_list,
                Algorithm::NdDiff => 1.15 * (f * unit + match_list),
                Algorithm::NdBaseline => f * unit + match_list * (0.5 + v),
                Algorithm::PtOpt => match_list * unit + match_list,
                Algorithm::PtRandom => 1.05 * (match_list * unit + match_list),
                Algorithm::PtBaseline => f * m.max(1.0) + match_list,
                // Auto is a directive, not an algorithm; it never appears
                // in the considered set.
                Algorithm::Auto => f64::INFINITY,
            }
        })
        .sum()
}

/// Rank every algorithm that can serve all `jobs`; the first entry is
/// the cheapest. Always non-empty (ND-PVOT serves everything).
pub fn rank_algorithms(
    stats: &GraphStats,
    jobs: &[CostJob],
    focal: usize,
) -> Vec<(Algorithm, f64)> {
    let mut ranked: Vec<(Algorithm, f64)> = CONSIDERED
        .iter()
        .filter(|a| jobs.iter().all(|j| j.supports(**a)))
        .map(|&a| (a, estimate_cost(stats, jobs, focal, a)))
        .collect();
    // Stable sort keeps CONSIDERED order on ties, so equal-cost picks
    // are deterministic across hosts.
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// Process-wide planner counters, shared across sessions by the server
/// and merged across workers by the shard router's default sum rule.
#[derive(Debug, Default)]
pub struct PlannerCounters {
    /// Optimized plans produced (statements + scripts).
    pub plans_built: AtomicU64,
    /// Optimizer passes that actually rewrote or annotated a plan.
    pub passes_fired: AtomicU64,
    /// Algorithm selections backed by a fresh `ANALYZE` snapshot.
    pub cost_model_hits: AtomicU64,
    /// Algorithm selections that fell back to the structural heuristic
    /// (no snapshot, or a stale one).
    pub heuristic_fallbacks: AtomicU64,
}

impl PlannerCounters {
    /// Sorted `(name, value)` rows for a stats table.
    pub fn snapshot(&self) -> [(&'static str, u64); 4] {
        [
            (
                "planner_cost_model_hits",
                self.cost_model_hits.load(Ordering::Relaxed),
            ),
            (
                "planner_heuristic_fallbacks",
                self.heuristic_fallbacks.load(Ordering::Relaxed),
            ),
            (
                "planner_passes_fired",
                self.passes_fired.load(Ordering::Relaxed),
            ),
            (
                "planner_plans_built",
                self.plans_built.load(Ordering::Relaxed),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    fn clique(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(n as usize, Label(0));
        for x in 0..n {
            for y in (x + 1)..n {
                b.add_edge(ego_graph::NodeId(x), ego_graph::NodeId(y));
            }
        }
        b.build()
    }

    fn path(n: u32) -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(n as usize, Label(0));
        for x in 0..n - 1 {
            b.add_edge(ego_graph::NodeId(x), ego_graph::NodeId(x + 1));
        }
        b.build()
    }

    #[test]
    fn analyze_profiles_exactly_on_small_graphs() {
        let g = clique(6);
        let s = GraphStats::analyze(&g);
        assert_eq!(s.num_nodes, 6);
        assert_eq!(s.num_edges, 15);
        assert_eq!(s.max_degree, 5);
        assert_eq!(s.sample_size, 6);
        assert!((s.avg_degree - 5.0).abs() < 1e-9);
        assert!(
            (s.avg_clustering - 1.0).abs() < 1e-9,
            "{}",
            s.avg_clustering
        );
        assert!(!s.is_stale(g.fingerprint()));
        assert!(s.is_stale(g.fingerprint() ^ 1));

        let p = GraphStats::analyze(&path(10));
        assert!(p.avg_clustering < 0.01, "{}", p.avg_clustering);
        assert_eq!(p.avg_triangles, 0.0);
    }

    #[test]
    fn heuristic_density_separates_clique_from_path() {
        let dense = GraphStats::heuristic(&clique(8));
        let sparse = GraphStats::heuristic(&path(40));
        assert_eq!(dense.sample_size, 0);
        assert!((dense.avg_clustering - 1.0).abs() < 1e-9);
        assert!(sparse.avg_clustering < 0.06, "{}", sparse.avg_clustering);
    }

    #[test]
    fn ball_saturates_at_n() {
        let s = GraphStats::analyze(&clique(8));
        assert!((s.ball(0) - 1.0).abs() < 1e-9);
        assert_eq!(s.ball(1), 8.0);
        assert_eq!(s.ball(4), 8.0);
        let p = GraphStats::analyze(&path(100));
        assert!(p.ball(1) < 4.0, "{}", p.ball(1));
    }

    #[test]
    fn sidecar_roundtrip_is_exact() {
        let s = GraphStats::analyze(&clique(7));
        let text = s.to_sidecar();
        let back = GraphStats::from_sidecar(&text).unwrap();
        assert_eq!(back, s);
        // Unknown keys tolerated, bad header and bad values rejected.
        assert!(GraphStats::from_sidecar(&format!("{text}future_key 1\n")).is_ok());
        assert!(GraphStats::from_sidecar("egostats v9\n").is_err());
        assert!(GraphStats::from_sidecar("egostats v1\nnum_nodes x\n").is_err());
        assert!(GraphStats::from_sidecar("egostats v1\nnum_nodes 3\n").is_err());
    }

    #[test]
    fn sidecar_path_appends_suffix() {
        assert_eq!(
            GraphStats::sidecar_path(Path::new("/tmp/g.egb")),
            PathBuf::from("/tmp/g.egb.stats")
        );
        assert_eq!(
            GraphStats::sidecar_path(Path::new("g.graph")),
            PathBuf::from("g.graph.stats")
        );
    }

    #[test]
    fn cost_model_crossover_favors_pt_on_selective_patterns() {
        let s = GraphStats::analyze(&path(50));
        // Few matches relative to the focal set → PT side must win
        // (the paper's selective-pattern guidance: m·v < focal).
        let mut job = CostJob {
            pattern_nodes: 3,
            pattern_edges: 3,
            k: 2,
            subpattern: false,
            has_predicates: false,
            est_matches: 2.0,
            cached_matches: None,
        };
        let ranked = rank_algorithms(&s, &[job.clone()], 40);
        assert_eq!(ranked[0].0, Algorithm::PtOpt, "{ranked:?}");
        // Unselective focal vs huge match list → ND side wins.
        job.est_matches = 10_000.0;
        let ranked = rank_algorithms(&s, &[job.clone()], 3);
        assert_eq!(ranked[0].0, Algorithm::NdPivot, "{ranked:?}");
        // Cached length overrides the estimate.
        job.cached_matches = Some(1);
        let ranked = rank_algorithms(&s, &[job], 40);
        assert_eq!(ranked[0].0, Algorithm::PtOpt, "{ranked:?}");
    }

    #[test]
    fn est_matches_tracks_degree_skew() {
        // Star: the wedge count is C(199,2) ≈ 19.7K, driven entirely by
        // the hub's second degree moment; a d̄²-based estimate (~800)
        // misses it by 25x and would mis-price the ND-vs-PT crossover
        // on any hub-heavy graph.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(200, Label(0));
        for x in 1..200u32 {
            b.add_edge(ego_graph::NodeId(0), ego_graph::NodeId(x));
        }
        let s = GraphStats::analyze(&b.build());
        let wedge = Pattern::parse("PATTERN w { ?A-?B; ?B-?C; ?A!-?C; }").unwrap();
        let est = s.est_matches(&wedge);
        assert!(est > 10_000.0, "{est}");
        // The uniform-degree path has no skew: excess degree ~1 keeps
        // the estimate near n·d̄.
        let p = GraphStats::analyze(&path(100));
        let est = p.est_matches(&wedge);
        assert!(est < 2.5 * p.num_nodes as f64 * p.avg_degree, "{est}");
    }

    #[test]
    fn validity_gates_mirror_batch_rejections() {
        let s = GraphStats::analyze(&clique(6));
        let job = CostJob {
            pattern_nodes: 3,
            pattern_edges: 3,
            k: 1,
            subpattern: true,
            has_predicates: false,
            est_matches: 5.0,
            cached_matches: None,
        };
        let algos: Vec<Algorithm> = rank_algorithms(&s, &[job], 6)
            .into_iter()
            .map(|(a, _)| a)
            .collect();
        assert!(!algos.contains(&Algorithm::NdBaseline));
        assert!(!algos.contains(&Algorithm::NdDiff));
        assert!(algos.contains(&Algorithm::NdPivot));
        assert!(algos.len() >= 4);
    }

    #[test]
    fn tuning_derivation_is_shape_sensitive() {
        let defaults = SetOpsTuning::default();
        let sparse = GraphStats::analyze(&path(40)).setops_tuning();
        assert_eq!(sparse, defaults);
        // A hub-and-spoke star has extreme degree skew.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(200, Label(0));
        for x in 1..200u32 {
            b.add_edge(ego_graph::NodeId(0), ego_graph::NodeId(x));
        }
        let star = GraphStats::analyze(&b.build()).setops_tuning();
        assert!(star.gallop_ratio < defaults.gallop_ratio);
    }

    #[test]
    fn counters_snapshot_rows_are_sorted() {
        let c = PlannerCounters::default();
        c.plans_built.fetch_add(3, Ordering::Relaxed);
        let rows = c.snapshot();
        let mut names: Vec<&str> = rows.iter().map(|(n, _)| *n).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(names, sorted);
        names.retain(|n| n.starts_with("planner_"));
        assert_eq!(names.len(), 4);
        assert_eq!(rows[3], ("planner_plans_built", 3));
    }
}
