//! The `SUBSCRIBE` statement surface: compiling a census statement into
//! a standing-query specification.
//!
//! A subscription is a single-table census SELECT whose projections are
//! the `ID` column and one or more census aggregates. The statement is
//! compiled **once**, at registration time: the WHERE clause (including
//! its seeded `RND()` stream) is evaluated into a frozen focal set, and
//! each aggregate is resolved against the catalog into an owned
//! [`ego_pattern::Pattern`] — so the standing query stays valid even if
//! the session later redefines the pattern name. Edge mutations never
//! change node attributes or the node set, so the frozen focal set is
//! exactly what re-evaluating the WHERE clause would produce.
//!
//! `ORDER BY` / `LIMIT` are rejected: notifications are *row deltas*
//! (focal, old, new), for which output ordering is meaningless.

use crate::value::Value;
use ego_graph::NodeId;
use ego_pattern::Pattern;

/// One compiled aggregate of a subscription.
#[derive(Clone, Debug)]
pub struct SubscriptionAgg {
    /// Projection column name, e.g. `COUNTP(tri, SUBGRAPH(ID, 1))` —
    /// notification rows reference it.
    pub column: String,
    /// The resolved pattern, owned (detached from the session catalog).
    pub pattern: Pattern,
    /// Canonical pattern DSL (cache and stats keys).
    pub pattern_dsl: String,
    /// Neighborhood radius.
    pub k: u32,
    /// `COUNTSP` subpattern name, if any.
    pub subpattern: Option<String>,
}

/// A compiled standing query: frozen focal set + resolved aggregates.
#[derive(Clone, Debug)]
pub struct SubscriptionSpec {
    /// The statement body (the SELECT, without the `SUBSCRIBE` verb).
    pub statement: String,
    /// Focal nodes, ascending (WHERE and focal shard applied).
    pub focal: Vec<NodeId>,
    /// The aggregates, in projection order.
    pub aggs: Vec<SubscriptionAgg>,
}

/// Does this statement start with the `SUBSCRIBE` verb?
pub fn is_subscribe_statement(sql: &str) -> bool {
    let word: String = sql
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    word.eq_ignore_ascii_case("SUBSCRIBE")
}

/// Strip a leading `SUBSCRIBE` verb, leaving the SELECT body. Statements
/// without the verb pass through unchanged (the server's `subscribe` op
/// makes the intent explicit, so the verb is optional there).
pub fn strip_subscribe(sql: &str) -> &str {
    let t = sql.trim_start();
    if is_subscribe_statement(t) {
        let n = t.chars().take_while(|c| c.is_ascii_alphabetic()).count();
        &t[n..]
    } else {
        t
    }
}

/// A changed row: one (focal, aggregate) pair whose count differs
/// between consecutive generations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangedRow {
    /// The focal node.
    pub focal: NodeId,
    /// Index into [`SubscriptionSpec::aggs`] / the subscription's
    /// column list.
    pub agg: usize,
    /// Count before the mutation batch.
    pub old: u64,
    /// Count after.
    pub new: u64,
}

impl ChangedRow {
    /// Render as a notification table row: `[focal, column, old, new]`.
    pub fn to_values(&self, columns: &[String]) -> Vec<Value> {
        vec![
            Value::Int(self.focal.0 as i64),
            Value::Str(columns[self.agg].clone()),
            Value::Int(self.old as i64),
            Value::Int(self.new as i64),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_verb_detection_and_strip() {
        assert!(is_subscribe_statement("  subscribe SELECT ID FROM nodes"));
        assert!(is_subscribe_statement("SUBSCRIBE SELECT 1"));
        assert!(!is_subscribe_statement("SELECT ID FROM nodes"));
        assert_eq!(
            strip_subscribe("SUBSCRIBE SELECT ID FROM nodes").trim(),
            "SELECT ID FROM nodes"
        );
        assert_eq!(
            strip_subscribe("SELECT ID FROM nodes"),
            "SELECT ID FROM nodes"
        );
    }

    #[test]
    fn changed_row_renders() {
        let r = ChangedRow {
            focal: NodeId(3),
            agg: 0,
            old: 1,
            new: 2,
        };
        let cols = vec!["COUNTP(tri, SUBGRAPH(ID, 1))".to_string()];
        assert_eq!(
            r.to_values(&cols),
            vec![
                Value::Int(3),
                Value::Str(cols[0].clone()),
                Value::Int(1),
                Value::Int(2)
            ]
        );
    }
}
