//! Canonical query keys for result caching.
//!
//! A census query's result is fully determined by (a) the statement's
//! semantic content — projections, neighborhood specs, focal selection
//! (WHERE), ordering, limit — and (b) the *definitions* of every pattern
//! it references, not their names. [`canonical_query_key`] renders both
//! into one string so a memoization layer (the `ego-server` result
//! cache) can recognize repeated queries regardless of keyword case,
//! whitespace, or how a referenced pattern was textually written:
//! patterns are resolved through the catalog and re-rendered with
//! [`ego_pattern::to_dsl`], the DSL's canonical printer.
//!
//! The key deliberately excludes the algorithm choice and thread count —
//! every algorithm family and thread count produces identical results
//! (test-enforced) — but callers must mix in anything else that can
//! change results, notably the graph fingerprint
//! ([`ego_graph::Graph::fingerprint`]) and the `RND()` seed.

use crate::ast::{BinOp, ColumnRef, Expr, NeighborhoodAst, Projection, SelectStmt, SortDir};
use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::parser::parse_query;
use crate::value::Value;
use std::fmt::Write;

/// Render `sql` into a canonical cache key, resolving every referenced
/// pattern through `catalog` to its canonical DSL.
///
/// Errors if the statement does not parse or references an unknown
/// pattern — the same errors executing it would raise, so a failed key
/// never hides a query that would have failed anyway.
pub fn canonical_query_key(sql: &str, catalog: &Catalog) -> Result<String, QueryError> {
    let stmt = parse_query(sql)?;
    let mut key = canonical_statement(&stmt);
    // Append referenced pattern definitions, sorted and deduplicated, so
    // `tri` in the key means one specific pattern, not whatever the
    // session happens to call `tri`.
    let mut names: Vec<&str> = stmt
        .projections
        .iter()
        .filter_map(|p| match p {
            Projection::Agg(a) => Some(a.pattern.as_str()),
            Projection::Column(_) => None,
        })
        .collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let pattern = catalog.require(name)?;
        write!(key, "|pattern {name}={}", ego_pattern::to_dsl(pattern)).unwrap();
    }
    Ok(key)
}

/// Canonical rendering of a parsed statement: uppercase keywords, single
/// spaces, lowercase aliases, fully parenthesized WHERE expression.
fn canonical_statement(stmt: &SelectStmt) -> String {
    let mut s = String::from("SELECT ");
    for (i, proj) in stmt.projections.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match proj {
            Projection::Column(c) => s.push_str(&col(c)),
            Projection::Agg(a) => {
                let nb = match &a.neighborhood {
                    NeighborhoodAst::Subgraph { node, k } => {
                        format!("SUBGRAPH({}, {k})", col(node))
                    }
                    NeighborhoodAst::Intersection { n1, n2, k } => {
                        format!("SUBGRAPH-INTERSECTION({}, {}, {k})", col(n1), col(n2))
                    }
                    NeighborhoodAst::Union { n1, n2, k } => {
                        format!("SUBGRAPH-UNION({}, {}, {k})", col(n1), col(n2))
                    }
                };
                match &a.subpattern {
                    Some(sp) => write!(s, "COUNTSP({sp}, {}, {nb})", a.pattern).unwrap(),
                    None => write!(s, "COUNTP({}, {nb})", a.pattern).unwrap(),
                }
            }
        }
    }
    s.push_str(" FROM ");
    for (i, t) in stmt.tables.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, "nodes AS {}", t.alias.to_ascii_lowercase()).unwrap();
    }
    if let Some(w) = &stmt.where_clause {
        write!(s, " WHERE {}", expr(w)).unwrap();
    }
    for (i, k) in stmt.order_by.iter().enumerate() {
        s.push_str(if i == 0 { " ORDER BY " } else { ", " });
        let dir = match k.dir {
            SortDir::Asc => "ASC",
            SortDir::Desc => "DESC",
        };
        write!(s, "{} {dir}", k.ordinal).unwrap();
    }
    if let Some(n) = stmt.limit {
        write!(s, " LIMIT {n}").unwrap();
    }
    s
}

fn col(c: &ColumnRef) -> String {
    // The id pseudo-column is case-insensitive; attribute names are not.
    let column = if c.is_id() {
        "ID".to_string()
    } else {
        c.column.clone()
    };
    match &c.table {
        Some(t) => format!("{}.{column}", t.to_ascii_lowercase()),
        None => column,
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => literal(v),
        Expr::Column(c) => col(c),
        Expr::Rnd => "RND()".into(),
        Expr::Binary { op, lhs, rhs } => {
            let op = match op {
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
            };
            format!("({} {op} {})", expr(lhs), expr(rhs))
        }
        Expr::Not(inner) => format!("(NOT {})", expr(inner)),
    }
}

fn literal(v: &Value) -> String {
    match v {
        // Strings are quoted and escaped so `'a'` can never collide with
        // a number or keyword rendering.
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        c.define("PATTERN one { ?A; }").unwrap();
        c
    }

    #[test]
    fn whitespace_and_case_insensitive() {
        let c = catalog();
        let a = canonical_query_key(
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE age >= 40",
            &c,
        )
        .unwrap();
        let b = canonical_query_key(
            "select   id,  countp(tri, subgraph(id, 1))\n from nodes  where age >= 40",
            &c,
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_definition_is_part_of_the_key() {
        let mut c1 = Catalog::new();
        c1.define("PATTERN p { ?A-?B; }").unwrap();
        let mut c2 = Catalog::new();
        c2.define("PATTERN p { ?A-?B; ?B-?C; }").unwrap();
        let sql = "SELECT ID, COUNTP(p, SUBGRAPH(ID, 1)) FROM nodes";
        assert_ne!(
            canonical_query_key(sql, &c1).unwrap(),
            canonical_query_key(sql, &c2).unwrap()
        );
        // Same definition under a different textual DSL spelling → same key.
        let mut c3 = Catalog::new();
        c3.define("PATTERN p {   ?A - ?B ; }").unwrap();
        assert_eq!(
            canonical_query_key(sql, &c1).unwrap(),
            canonical_query_key(sql, &c3).unwrap()
        );
    }

    #[test]
    fn distinct_queries_get_distinct_keys() {
        let c = catalog();
        let keys: Vec<String> = [
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes",
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes",
            "SELECT ID, COUNTP(one, SUBGRAPH(ID, 1)) FROM nodes",
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 3",
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY 2 DESC",
            "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes LIMIT 2",
            "SELECT n1.ID, n2.ID, COUNTP(one, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
             FROM nodes AS n1, nodes AS n2",
            "SELECT n1.ID, n2.ID, COUNTP(one, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) \
             FROM nodes AS n1, nodes AS n2",
        ]
        .iter()
        .map(|sql| canonical_query_key(sql, &c).unwrap())
        .collect();
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "keys {i} and {j} collide");
            }
        }
    }

    #[test]
    fn where_expression_canonicalizes() {
        let c = catalog();
        let a = canonical_query_key(
            "SELECT ID FROM nodes WHERE NOT (age < 10 OR age > 90) AND RND() < 0.5",
            &c,
        )
        .unwrap();
        assert!(a.contains("WHERE"), "{a}");
        assert!(a.contains("RND()"), "{a}");
        // String literals stay quoted.
        let b = canonical_query_key("SELECT ID FROM nodes WHERE dept = 'eng'", &c).unwrap();
        assert!(b.contains("'eng'"), "{b}");
    }

    #[test]
    fn unknown_pattern_errors() {
        let c = catalog();
        assert!(matches!(
            canonical_query_key("SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes", &c),
            Err(QueryError::UnknownPattern(_))
        ));
        assert!(canonical_query_key("SELECT FROM", &c).is_err());
    }
}
