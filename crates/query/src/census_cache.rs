//! Cross-statement census cache: match lists and count vectors keyed by
//! (pattern, neighborhood spec, graph fingerprint).
//!
//! The server's [`QueryCache`] caches *encoded result tables* keyed by
//! the canonical statement text — two different statements over the same
//! patterns never share anything through it. This cache sits one layer
//! deeper, inside the query executor, and stores the two reusable
//! intermediates of batched census execution:
//!
//! * **Match lists** — the global matches of a pattern, keyed by
//!   `(pattern DSL, graph fingerprint)`. Every algorithm except ND-BAS
//!   starts from this list; a hit feeds [`ego_census::run_batch_exec`]'s
//!   `provided` slot and skips global matching entirely.
//! * **Count vectors** — a finished census, keyed by
//!   `(pattern DSL, k, subpattern, focal-set hash, fingerprint)`. The
//!   algorithm, seed, and thread count are deliberately **not** part of
//!   the key: census counts are algorithm- and thread-invariant (a
//!   property the equivalence suite enforces), and the focal set — the
//!   only seed-dependent input — is hashed into the key directly.
//!
//! Both sides are independent LRU maps with an entry-count budget
//! (entries are `Arc`-shared with callers, so eviction never copies).
//!
//! `QueryCache` lives in `ego-server`; this type lives here because the
//! executor (which `ego-server` wraps) is what decides when a census can
//! be skipped or seeded from cache.

use ego_census::CountVector;
use ego_graph::NodeId;
use ego_matcher::MatchList;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One LRU side of the cache: string key -> shared value, recency
/// tracked by a monotone tick (same scheme as the server's byte-LRU,
/// but budgeted by entry count — values here are shared, not copied).
struct LruMap<V> {
    map: HashMap<String, (V, u64)>,
    recency: BTreeMap<u64, String>,
    tick: u64,
    capacity: usize,
}

impl<V: Clone> LruMap<V> {
    fn new(capacity: usize) -> Self {
        LruMap {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn touch(&mut self, key: &str) {
        let tick = self.tick;
        self.tick += 1;
        if let Some((_, t)) = self.map.get_mut(key) {
            let old = *t;
            *t = tick;
            self.recency.remove(&old);
            self.recency.insert(tick, key.to_string());
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let v = self.map.get(key).map(|(v, _)| v.clone())?;
        self.touch(key);
        Some(v)
    }

    fn peek(&self, key: &str) -> Option<V> {
        self.map.get(key).map(|(v, _)| v.clone())
    }

    fn put(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some((_, old_tick)) = self.map.remove(&key) {
            self.recency.remove(&old_tick);
        }
        let tick = self.tick;
        self.tick += 1;
        self.map.insert(key.clone(), (value, tick));
        self.recency.insert(tick, key);
        while self.map.len() > self.capacity {
            let (&oldest, _) = self.recency.iter().next().expect("non-empty recency");
            let victim = self.recency.remove(&oldest).expect("victim exists");
            self.map.remove(&victim);
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

/// Snapshot of cache occupancy and hit/miss counters (for the server's
/// STATS command and for benches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CensusCacheStats {
    pub match_entries: usize,
    /// Estimated resident bytes of cached match lists (4 bytes per
    /// match image) — the tier's byte occupancy, for budget-pressure
    /// observability alongside the result cache and the view registry.
    pub match_bytes: usize,
    pub match_hits: u64,
    pub match_misses: u64,
    pub count_entries: usize,
    /// Estimated resident bytes of cached count vectors (8 bytes per
    /// count + 1 per focal flag).
    pub count_bytes: usize,
    pub count_hits: u64,
    pub count_misses: u64,
    /// Times [`CensusCache::invalidate`] or
    /// [`CensusCache::retain_counts`] ran (graph mutations).
    pub invalidations: u64,
    /// Count entries that survived a dirty-set-aware invalidation
    /// (rekeyed to the new fingerprint instead of dropped).
    pub count_retained: u64,
}

/// Provenance of a cached count vector, kept alongside the entry so a
/// mutation can decide whether the entry is still exact: the counts are
/// unchanged iff no focal node is within `radius` union-graph hops of a
/// touched delta endpoint (`radius = None` means no bound — always
/// invalidate). See `ego-dynamic`'s dirty-radius rule: `k` for COUNTP,
/// `k + |V(p)| - 1` for COUNTSP over a connected pattern.
#[derive(Clone, Debug)]
pub struct CountMeta {
    /// Canonical pattern DSL (first key component).
    pub dsl: String,
    /// Neighborhood radius.
    pub k: u32,
    /// COUNTSP subpattern name, if any.
    pub subpattern: Option<String>,
    /// The focal set the counts cover, ascending.
    pub focal: std::sync::Arc<Vec<NodeId>>,
    /// Dirty radius bound; `None` = unbounded (disconnected COUNTSP).
    pub radius: Option<u32>,
}

/// Shared (thread-safe) cache of census intermediates. See the module
/// docs for the keying discipline.
pub struct CensusCache {
    matches: Mutex<LruMap<std::sync::Arc<MatchList>>>,
    #[allow(clippy::type_complexity)]
    counts: Mutex<
        LruMap<(
            std::sync::Arc<CountVector>,
            Option<std::sync::Arc<CountMeta>>,
        )>,
    >,
    match_hits: AtomicU64,
    match_misses: AtomicU64,
    count_hits: AtomicU64,
    count_misses: AtomicU64,
    invalidations: AtomicU64,
    count_retained: AtomicU64,
}

impl CensusCache {
    /// Cache holding up to `capacity` entries on each side (match lists
    /// and count vectors budgeted independently). `0` disables caching.
    pub fn new(capacity: usize) -> Self {
        CensusCache {
            matches: Mutex::new(LruMap::new(capacity)),
            counts: Mutex::new(LruMap::new(capacity)),
            match_hits: AtomicU64::new(0),
            match_misses: AtomicU64::new(0),
            count_hits: AtomicU64::new(0),
            count_misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            count_retained: AtomicU64::new(0),
        }
    }

    /// Key for a pattern's global match list.
    pub fn match_key(dsl: &str, fingerprint: u64) -> String {
        format!("{dsl}|fp={fingerprint:016x}")
    }

    /// Key for a finished census. The focal set is FNV-1a-hashed (the
    /// executor always produces it in ascending node order, so equal
    /// sets hash equally); algorithm/threads/seed are excluded — counts
    /// are invariant to all three.
    pub fn count_key(
        dsl: &str,
        k: u32,
        subpattern: Option<&str>,
        focal: &[NodeId],
        fingerprint: u64,
    ) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for n in focal {
            h ^= n.0 as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h ^= focal.len() as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
        format!(
            "{dsl}|k={k}|sp={}|focal={h:016x}|fp={fingerprint:016x}",
            subpattern.unwrap_or("-")
        )
    }

    /// Look up a match list (counts a hit or miss).
    pub fn get_matches(&self, key: &str) -> Option<std::sync::Arc<MatchList>> {
        let got = self.matches.lock().unwrap().get(key);
        match got {
            Some(v) => {
                self.match_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.match_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a match list.
    pub fn put_matches(&self, key: String, value: std::sync::Arc<MatchList>) {
        self.matches.lock().unwrap().put(key, value);
    }

    /// Look up a count vector (counts a hit or miss).
    pub fn get_counts(&self, key: &str) -> Option<std::sync::Arc<CountVector>> {
        let got = self.counts.lock().unwrap().get(key);
        match got {
            Some((v, _)) => {
                self.count_hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.count_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a count vector without provenance: the entry is dropped by
    /// any dirty-set-aware invalidation (it cannot prove itself clean).
    pub fn put_counts(&self, key: String, value: std::sync::Arc<CountVector>) {
        self.counts.lock().unwrap().put(key, (value, None));
    }

    /// Store a count vector with provenance, making it eligible to
    /// survive [`CensusCache::retain_counts`] across a mutation.
    pub fn put_counts_with_meta(
        &self,
        key: String,
        value: std::sync::Arc<CountVector>,
        meta: CountMeta,
    ) {
        self.counts
            .lock()
            .unwrap()
            .put(key, (value, Some(std::sync::Arc::new(meta))));
    }

    /// Non-counting, non-touching lookup — `EXPLAIN` uses these to
    /// report expected reuse without perturbing the statistics.
    pub fn peek_matches(&self, key: &str) -> Option<std::sync::Arc<MatchList>> {
        self.matches.lock().unwrap().peek(key)
    }

    /// Non-counting, non-touching count-vector lookup.
    pub fn peek_counts(&self, key: &str) -> bool {
        self.counts.lock().unwrap().peek(key).is_some()
    }

    /// The largest bounded dirty radius among count entries carrying
    /// provenance, for sizing one dirty-BFS that classifies them all.
    /// Entries without meta or with an unbounded radius don't contribute
    /// (they never survive a mutation anyway).
    pub fn max_count_radius(&self) -> u32 {
        let counts = self.counts.lock().unwrap();
        counts
            .map
            .values()
            .filter_map(|((_, meta), _)| meta.as_ref().and_then(|m| m.radius))
            .max()
            .unwrap_or(0)
    }

    /// Dirty-set-aware invalidation of the count side: every entry whose
    /// provenance proves it untouched by the mutation (`keep` returns
    /// `true` — typically "no focal node is dirty at the entry's
    /// radius") is **rekeyed** to `new_fingerprint` and kept; everything
    /// else — meta-less entries, unbounded radii, dirty focal sets — is
    /// dropped. The match side is NOT touched; pair with
    /// [`CensusCache::invalidate_matches`] (global match lists depend on
    /// the whole graph) unless the caller re-seeds maintained lists.
    pub fn retain_counts<F>(&self, new_fingerprint: u64, mut keep: F)
    where
        F: FnMut(&CountMeta) -> bool,
    {
        let mut counts = self.counts.lock().unwrap();
        let capacity = counts.capacity;
        let old = std::mem::replace(&mut *counts, LruMap::new(capacity));
        let mut retained = 0u64;
        // Reinsert in recency order so LRU ordering survives the sweep.
        for (_, key) in old.recency.iter() {
            let Some((value, _)) = old.map.get(key) else {
                continue;
            };
            let (cv, meta) = value;
            let Some(meta) = meta else { continue };
            if meta.radius.is_none() || !keep(meta) {
                continue;
            }
            let new_key = CensusCache::count_key(
                &meta.dsl,
                meta.k,
                meta.subpattern.as_deref(),
                &meta.focal,
                new_fingerprint,
            );
            counts.put(new_key, (cv.clone(), Some(meta.clone())));
            retained += 1;
        }
        drop(counts);
        self.count_retained.fetch_add(retained, Ordering::Relaxed);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every cached match list (global lists depend on the whole
    /// graph, so any edge mutation can change them).
    pub fn invalidate_matches(&self) {
        self.matches.lock().unwrap().clear();
    }

    /// Drop every cached entry and bump the invalidation counter. Called
    /// when the graph mutates. Strictly speaking stale entries are
    /// already unreachable — every key embeds the graph fingerprint — so
    /// this reclaims their memory and makes the invalidation observable,
    /// rather than restoring soundness.
    pub fn invalidate(&self) {
        self.matches.lock().unwrap().clear();
        self.counts.lock().unwrap().clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of occupancy and counters. Byte occupancy is estimated
    /// by walking the (entry-capped) maps, so the snapshot reflects the
    /// live contents rather than a drifting running total.
    pub fn stats(&self) -> CensusCacheStats {
        let (match_entries, match_bytes) = {
            let m = self.matches.lock().unwrap();
            let bytes = m
                .map
                .values()
                .map(|(v, _)| v.iter().map(|pm| pm.nodes.len() * 4).sum::<usize>())
                .sum();
            (m.len(), bytes)
        };
        let (count_entries, count_bytes) = {
            let c = self.counts.lock().unwrap();
            let bytes = c.map.values().map(|((cv, _), _)| cv.len() * 9).sum();
            (c.len(), bytes)
        };
        CensusCacheStats {
            match_entries,
            match_bytes,
            match_hits: self.match_hits.load(Ordering::Relaxed),
            match_misses: self.match_misses.load(Ordering::Relaxed),
            count_entries,
            count_bytes,
            count_hits: self.count_hits.load(Ordering::Relaxed),
            count_misses: self.count_misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            count_retained: self.count_retained.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn cv(n: usize) -> Arc<CountVector> {
        Arc::new(CountVector::new(n, vec![true; n]))
    }

    #[test]
    fn count_side_hit_miss_and_counters() {
        let c = CensusCache::new(8);
        let key = CensusCache::count_key("PATTERN t {}", 2, None, &[NodeId(0)], 7);
        assert!(c.get_counts(&key).is_none());
        c.put_counts(key.clone(), cv(3));
        let hit = c.get_counts(&key).unwrap();
        assert_eq!(hit.len(), 3);
        let s = c.stats();
        assert_eq!((s.count_hits, s.count_misses, s.count_entries), (1, 1, 1));
        // Byte occupancy tracks the live vector: 3 counts * 9 bytes.
        assert_eq!(s.count_bytes, 27);
        assert_eq!(s.match_bytes, 0);
    }

    #[test]
    fn invalidate_clears_both_sides_and_counts() {
        let c = CensusCache::new(8);
        c.put_counts("k1".into(), cv(2));
        c.put_matches("m1".into(), Arc::new(MatchList::default()));
        assert_eq!(c.stats().count_entries, 1);
        assert_eq!(c.stats().match_entries, 1);
        c.invalidate();
        let s = c.stats();
        assert_eq!(s.count_entries, 0);
        assert_eq!(s.match_entries, 0);
        assert_eq!(s.invalidations, 1);
        assert!(!c.peek_counts("k1"));
        // Re-population after an invalidation works normally.
        c.put_counts("k1".into(), cv(2));
        assert!(c.peek_counts("k1"));
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let c = CensusCache::new(2);
        c.put_counts("a".into(), cv(1));
        c.put_counts("b".into(), cv(1));
        assert!(c.get_counts("a").is_some()); // a is now most recent
        c.put_counts("c".into(), cv(1)); // evicts b
        assert!(c.peek_counts("a"));
        assert!(!c.peek_counts("b"));
        assert!(c.peek_counts("c"));
        assert_eq!(c.stats().count_entries, 2);
    }

    #[test]
    fn reinsert_same_key_replaces_without_growth() {
        let c = CensusCache::new(2);
        c.put_counts("k".into(), cv(1));
        c.put_counts("k".into(), cv(5));
        assert_eq!(c.stats().count_entries, 1);
        assert_eq!(c.get_counts("k").unwrap().len(), 5);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = CensusCache::new(0);
        c.put_counts("k".into(), cv(1));
        assert!(c.get_counts("k").is_none());
        assert_eq!(c.stats().count_entries, 0);
    }

    #[test]
    fn peek_does_not_count_or_touch() {
        let c = CensusCache::new(2);
        c.put_counts("a".into(), cv(1));
        c.put_counts("b".into(), cv(1));
        assert!(c.peek_counts("a")); // does NOT refresh a
        c.put_counts("c".into(), cv(1)); // so a is evicted
        assert!(!c.peek_counts("a"));
        let s = c.stats();
        assert_eq!((s.count_hits, s.count_misses), (0, 0));
    }

    #[test]
    fn focal_hash_distinguishes_sets() {
        let fp = 1;
        let a = CensusCache::count_key("p", 1, None, &[NodeId(0), NodeId(1)], fp);
        let b = CensusCache::count_key("p", 1, None, &[NodeId(0)], fp);
        let c = CensusCache::count_key("p", 1, None, &[NodeId(0), NodeId(2)], fp);
        assert_ne!(a, b);
        assert_ne!(a, c);
        let again = CensusCache::count_key("p", 1, None, &[NodeId(0), NodeId(1)], fp);
        assert_eq!(a, again);
        // Subpattern and fingerprint discriminate too.
        assert_ne!(
            CensusCache::count_key("p", 1, Some("s"), &[], fp),
            CensusCache::count_key("p", 1, None, &[], fp)
        );
        assert_ne!(
            CensusCache::count_key("p", 1, None, &[], 1),
            CensusCache::count_key("p", 1, None, &[], 2)
        );
    }
}
