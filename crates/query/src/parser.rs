//! Recursive-descent parser for census SQL.
//!
//! ```text
//! select     := SELECT proj (',' proj)* FROM table (',' table)* [WHERE expr]
//! proj       := agg | column
//! agg        := COUNTP '(' ident ',' nbhd ')'
//!             | COUNTSP '(' ident ',' ident ',' nbhd ')'
//! nbhd       := SUBGRAPH '(' column ',' int ')'
//!             | SUBGRAPH '-' INTERSECTION '(' column ',' column ',' int ')'
//!             | SUBGRAPH '-' UNION '(' column ',' column ',' int ')'
//! table      := ident [AS ident]           -- ident must be `nodes`
//! expr       := or_expr
//! or_expr    := and_expr (OR and_expr)*
//! and_expr   := not_expr (AND not_expr)*
//! not_expr   := NOT not_expr | cmp
//! cmp        := primary [cmpop primary]
//! primary    := literal | column | RND '(' ')' | '(' expr ')'
//! ```

use crate::ast::*;
use crate::error::QueryError;
use crate::lexer::{tokenize, Spanned, Tok};
use crate::value::Value;

/// Parse a SELECT statement.
pub fn parse_query(sql: &str) -> Result<SelectStmt, QueryError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Does this statement start with a mutation verb (`INSERT` / `DELETE`)?
/// Used to route statements between the read-only query engine and a
/// mutation host.
pub fn is_mutation_statement(sql: &str) -> bool {
    let word: String = sql
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    word.eq_ignore_ascii_case("INSERT") || word.eq_ignore_ascii_case("DELETE")
}

/// Does this statement start with the `ANALYZE` verb? `ANALYZE` takes no
/// arguments (the executor rejects trailing tokens with a clear error);
/// it profiles the engine's graph into planner statistics.
pub fn is_analyze_statement(sql: &str) -> bool {
    let word: String = sql
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    word.eq_ignore_ascii_case("ANALYZE")
}

/// Does this statement start with the `MATERIALIZE` verb?
pub fn is_materialize_statement(sql: &str) -> bool {
    let word: String = sql
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    word.eq_ignore_ascii_case("MATERIALIZE")
}

/// Does this statement start with the `DROP` verb (i.e. `DROP VIEW`)?
pub fn is_drop_view_statement(sql: &str) -> bool {
    let word: String = sql
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    word.eq_ignore_ascii_case("DROP")
}

/// Parse `MATERIALIZE <pattern> RADIUS k [SUBPATTERN sp] [MATCHES]`.
pub fn parse_materialize(sql: &str) -> Result<MaterializeStmt, QueryError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    p.expect_kw("MATERIALIZE")?;
    let pattern = p.ident()?;
    p.expect_kw("RADIUS")?;
    let k = p.radius()?;
    let subpattern = if p.eat_kw("SUBPATTERN") {
        Some(p.ident()?)
    } else {
        None
    };
    let matches = p.eat_kw("MATCHES");
    p.expect_eof()?;
    Ok(MaterializeStmt {
        pattern,
        k,
        subpattern,
        matches,
    })
}

/// Parse `DROP VIEW <pattern> RADIUS k [SUBPATTERN sp]`.
pub fn parse_drop_view(sql: &str) -> Result<DropViewStmt, QueryError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    p.expect_kw("DROP")?;
    p.expect_kw("VIEW")?;
    let pattern = p.ident()?;
    p.expect_kw("RADIUS")?;
    let k = p.radius()?;
    let subpattern = if p.eat_kw("SUBPATTERN") {
        Some(p.ident()?)
    } else {
        None
    };
    p.expect_eof()?;
    Ok(DropViewStmt {
        pattern,
        k,
        subpattern,
    })
}

/// Parse a mutation script: one or more `;`-separated
/// `INSERT EDGE (a, b)` / `DELETE EDGE (a, b)` statements.
pub fn parse_mutations(script: &str) -> Result<Vec<MutationStmt>, QueryError> {
    let stmts = crate::executor::split_statements(script);
    if stmts.is_empty() {
        return Err(QueryError::Semantic("empty mutation script".into()));
    }
    stmts.iter().map(|s| parse_mutation(s)).collect()
}

fn parse_mutation(sql: &str) -> Result<MutationStmt, QueryError> {
    let toks = tokenize(sql)?;
    let mut p = Parser { toks, pos: 0 };
    let kind = if p.eat_kw("INSERT") {
        MutationKind::InsertEdge
    } else if p.eat_kw("DELETE") {
        MutationKind::DeleteEdge
    } else {
        return Err(p.err(format!("expected `INSERT` or `DELETE`, found {}", p.peek())));
    };
    p.expect_kw("EDGE")?;
    p.expect(&Tok::LParen)?;
    let a = p.node_id()?;
    p.expect(&Tok::Comma)?;
    let b = p.node_id()?;
    p.expect(&Tok::RParen)?;
    p.expect_eof()?;
    Ok(MutationStmt { kind, a, b })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        let s = &self.toks[self.pos];
        QueryError::Syntax {
            line: s.line,
            col: s.col,
            message: message.into(),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), QueryError> {
        if self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), QueryError> {
        match self.peek() {
            Tok::Eof => Ok(()),
            other => Err(self.err(format!("trailing input: {other}"))),
        }
    }

    fn node_id(&mut self) -> Result<u32, QueryError> {
        match *self.peek() {
            Tok::Int(i) if (0..=u32::MAX as i64).contains(&i) => {
                self.bump();
                Ok(i as u32)
            }
            ref other => Err(self.err(format!("expected a node id, found {other}"))),
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, QueryError> {
        self.expect_kw("SELECT")?;
        let mut projections = vec![self.projection()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            projections.push(self.projection()?);
        }
        self.expect_kw("FROM")?;
        let mut tables = vec![self.table_ref()?];
        while self.peek() == &Tok::Comma {
            self.bump();
            tables.push(self.table_ref()?);
        }
        if tables.len() > 2 {
            return Err(self.err("at most two `nodes` tables are supported"));
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let ordinal = match self.peek().clone() {
                    Tok::Int(i) if i >= 1 && (i as usize) <= projections.len() => {
                        self.bump();
                        i as usize
                    }
                    other => {
                        return Err(self.err(format!(
                            "ORDER BY takes a 1-based projection ordinal                              (1..={}), found {other}",
                            projections.len()
                        )))
                    }
                };
                let dir = if self.eat_kw("DESC") {
                    SortDir::Desc
                } else {
                    self.eat_kw("ASC");
                    SortDir::Asc
                };
                order_by.push(OrderKey { ordinal, dir });
                if self.peek() != &Tok::Comma {
                    break;
                }
                self.bump();
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.peek().clone() {
                Tok::Int(i) if i >= 0 => {
                    self.bump();
                    Some(i as usize)
                }
                other => {
                    return Err(
                        self.err(format!("LIMIT takes a nonnegative integer, found {other}"))
                    )
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projections,
            tables,
            where_clause,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef, QueryError> {
        let name = self.ident()?;
        if !name.eq_ignore_ascii_case("nodes") {
            return Err(self.err(format!(
                "unknown table `{name}` (only `nodes` is available)"
            )));
        }
        let alias = if self.eat_kw("AS") {
            self.ident()?
        } else if let Tok::Ident(s) = self.peek().clone() {
            // Implicit alias: `FROM nodes n1` — but don't swallow clause
            // keywords.
            if !["WHERE", "ORDER", "LIMIT"]
                .iter()
                .any(|kw| s.eq_ignore_ascii_case(kw))
            {
                self.bump();
                s
            } else {
                name.clone()
            }
        } else {
            name.clone()
        };
        Ok(TableRef { alias })
    }

    fn projection(&mut self) -> Result<Projection, QueryError> {
        if self.is_kw("COUNTP") || self.is_kw("COUNTSP") {
            return Ok(Projection::Agg(self.agg_call()?));
        }
        Ok(Projection::Column(self.column_ref()?))
    }

    fn agg_call(&mut self) -> Result<AggCall, QueryError> {
        let is_sp = self.is_kw("COUNTSP");
        self.bump(); // the function name
        self.expect(&Tok::LParen)?;
        let subpattern = if is_sp {
            let sp = self.ident()?;
            self.expect(&Tok::Comma)?;
            Some(sp)
        } else {
            None
        };
        let pattern = self.ident()?;
        self.expect(&Tok::Comma)?;
        let neighborhood = self.neighborhood()?;
        self.expect(&Tok::RParen)?;
        Ok(AggCall {
            subpattern,
            pattern,
            neighborhood,
        })
    }

    fn neighborhood(&mut self) -> Result<NeighborhoodAst, QueryError> {
        self.expect_kw("SUBGRAPH")?;
        let variant = if self.peek() == &Tok::Minus {
            self.bump();
            let v = self.ident()?;
            match v.to_ascii_uppercase().as_str() {
                "INTERSECTION" => 1,
                "UNION" => 2,
                other => {
                    return Err(self.err(format!(
                        "expected INTERSECTION or UNION after `SUBGRAPH-`, found `{other}`"
                    )))
                }
            }
        } else {
            0
        };
        self.expect(&Tok::LParen)?;
        if variant == 0 {
            let node = self.column_ref()?;
            self.expect(&Tok::Comma)?;
            let k = self.radius()?;
            self.expect(&Tok::RParen)?;
            Ok(NeighborhoodAst::Subgraph { node, k })
        } else {
            let n1 = self.column_ref()?;
            self.expect(&Tok::Comma)?;
            let n2 = self.column_ref()?;
            self.expect(&Tok::Comma)?;
            let k = self.radius()?;
            self.expect(&Tok::RParen)?;
            if variant == 1 {
                Ok(NeighborhoodAst::Intersection { n1, n2, k })
            } else {
                Ok(NeighborhoodAst::Union { n1, n2, k })
            }
        }
    }

    fn radius(&mut self) -> Result<u32, QueryError> {
        match self.peek().clone() {
            Tok::Int(i) if i >= 0 => {
                self.bump();
                u32::try_from(i).map_err(|_| self.err("radius too large"))
            }
            other => Err(self.err(format!("expected nonnegative radius, found {other}"))),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, QueryError> {
        let first = self.ident()?;
        if self.peek() == &Tok::Dot {
            self.bump();
            let column = self.ident()?;
            Ok(ColumnRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                table: None,
                column: first,
            })
        }
    }

    // --- expressions ---

    fn expr(&mut self) -> Result<Expr, QueryError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, QueryError> {
        if self.eat_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.primary()?;
        let op = match self.peek() {
            Tok::Eq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.bump();
                let rhs = self.primary()?;
                Ok(Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                })
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, QueryError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(x)))
            }
            Tok::Minus => {
                self.bump();
                match self.peek().clone() {
                    Tok::Int(i) => {
                        self.bump();
                        Ok(Expr::Literal(Value::Int(-i)))
                    }
                    Tok::Float(x) => {
                        self.bump();
                        Ok(Expr::Literal(Value::Float(-x)))
                    }
                    other => Err(self.err(format!("expected number after `-`, found {other}"))),
                }
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("RND") => {
                self.bump();
                self.expect(&Tok::LParen)?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Rnd)
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("TRUE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("FALSE") => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Tok::Ident(_) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(self.err(format!("unexpected token {other} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row1() {
        let q = parse_query("SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes").unwrap();
        assert_eq!(q.projections.len(), 2);
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.tables[0].alias, "nodes");
        match &q.projections[1] {
            Projection::Agg(a) => {
                assert_eq!(a.pattern, "single_node");
                assert!(a.subpattern.is_none());
                assert_eq!(
                    a.neighborhood,
                    NeighborhoodAst::Subgraph {
                        node: ColumnRef {
                            table: None,
                            column: "ID".into()
                        },
                        k: 2
                    }
                );
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn table1_row2_pairwise() {
        let q = parse_query(
            "SELECT n1.ID, n2.ID, \
             COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
             FROM nodes AS n1, nodes AS n2",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.tables[0].alias, "n1");
        match &q.projections[2] {
            Projection::Agg(a) => {
                assert!(matches!(
                    a.neighborhood,
                    NeighborhoodAst::Intersection { k: 1, .. }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn table1_row4_countsp() {
        let q = parse_query("SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes")
            .unwrap();
        match &q.projections[1] {
            Projection::Agg(a) => {
                assert_eq!(a.subpattern.as_deref(), Some("coordinator"));
                assert_eq!(a.pattern, "triad");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_rnd_predicate() {
        let q = parse_query("SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes WHERE RND() < 0.2")
            .unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary {
                op: BinOp::Lt,
                lhs,
                rhs,
            } => {
                assert_eq!(*lhs, Expr::Rnd);
                assert_eq!(*rhs, Expr::Literal(Value::Float(0.2)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn where_boolean_logic() {
        let q = parse_query(
            "SELECT ID FROM nodes WHERE (age >= 30 AND dept = 'db') OR NOT active = TRUE",
        )
        .unwrap();
        assert!(matches!(
            q.where_clause.unwrap(),
            Expr::Binary { op: BinOp::Or, .. }
        ));
    }

    #[test]
    fn pair_where_id_comparison() {
        let q = parse_query(
            "SELECT n1.ID, n2.ID, COUNTP(e, SUBGRAPH-UNION(n1.ID, n2.ID, 2)) \
             FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn negative_literal() {
        let q = parse_query("SELECT ID FROM nodes WHERE score > -3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { rhs, .. } => assert_eq!(*rhs, Expr::Literal(Value::Int(-3))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT FROM nodes").is_err());
        assert!(parse_query("SELECT ID FROM edges").is_err());
        assert!(parse_query("SELECT ID FROM nodes, nodes, nodes").is_err());
        // `FROM nodes extra` is a legal implicit alias; genuine trailing
        // garbage must still error.
        assert!(parse_query("SELECT ID FROM nodes 123").is_err());
        assert!(parse_query("SELECT ID FROM nodes WHERE ID = 0 ) ").is_err());
        assert!(parse_query("SELECT COUNTP(p, SUBGRAPH(ID, -1)) FROM nodes").is_err());
        assert!(parse_query("SELECT COUNTP(p, SUBGRAPH-SIDEWAYS(ID, 1)) FROM nodes").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn implicit_alias() {
        let q = parse_query("SELECT n1.ID FROM nodes n1 WHERE n1.ID = 0").unwrap();
        assert_eq!(q.tables[0].alias, "n1");
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_query("select id from nodes where rnd() < 0.5").unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn mutation_script_parses() {
        let ms = parse_mutations("INSERT EDGE (4, 6); delete edge (0, 1);").unwrap();
        assert_eq!(
            ms,
            vec![
                MutationStmt {
                    kind: MutationKind::InsertEdge,
                    a: 4,
                    b: 6
                },
                MutationStmt {
                    kind: MutationKind::DeleteEdge,
                    a: 0,
                    b: 1
                },
            ]
        );
    }

    #[test]
    fn mutation_statement_detection() {
        assert!(is_mutation_statement("  insert edge (1, 2)"));
        assert!(is_mutation_statement("DELETE EDGE (1, 2)"));
        assert!(!is_mutation_statement("SELECT ID FROM nodes"));
        assert!(!is_mutation_statement(""));
    }

    #[test]
    fn materialize_statement_parses() {
        let m = parse_materialize("MATERIALIZE tri RADIUS 2").unwrap();
        assert_eq!(
            m,
            MaterializeStmt {
                pattern: "tri".into(),
                k: 2,
                subpattern: None,
                matches: false
            }
        );
        let m = parse_materialize("materialize tri radius 1 subpattern hub matches").unwrap();
        assert_eq!(m.subpattern.as_deref(), Some("hub"));
        assert!(m.matches);
        assert!(parse_materialize("MATERIALIZE tri").is_err());
        assert!(parse_materialize("MATERIALIZE tri RADIUS -1").is_err());
        assert!(parse_materialize("MATERIALIZE tri RADIUS 2 extra").is_err());
        assert!(is_materialize_statement("  materialize tri radius 2"));
        assert!(!is_materialize_statement("SELECT ID FROM nodes"));
    }

    #[test]
    fn drop_view_statement_parses() {
        let d = parse_drop_view("DROP VIEW tri RADIUS 2").unwrap();
        assert_eq!(
            d,
            DropViewStmt {
                pattern: "tri".into(),
                k: 2,
                subpattern: None
            }
        );
        let d = parse_drop_view("drop view tri radius 0 subpattern hub").unwrap();
        assert_eq!(d.subpattern.as_deref(), Some("hub"));
        assert!(parse_drop_view("DROP TABLE tri RADIUS 2").is_err());
        assert!(parse_drop_view("DROP VIEW tri").is_err());
        assert!(is_drop_view_statement("  drop view tri radius 2"));
        assert!(!is_drop_view_statement("SELECT ID FROM nodes"));
    }

    #[test]
    fn mutation_script_rejects_bad_input() {
        assert!(parse_mutations("").is_err());
        assert!(parse_mutations("INSERT EDGE (1)").is_err());
        assert!(parse_mutations("INSERT EDGE (1, 2) extra").is_err());
        assert!(parse_mutations("UPDATE EDGE (1, 2)").is_err());
        assert!(parse_mutations("INSERT EDGE (-1, 2)").is_err());
        assert!(parse_mutations("INSERT NODE (1, 2)").is_err());
    }
}
