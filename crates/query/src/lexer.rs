//! SQL lexer.

use crate::error::QueryError;
use std::fmt;

/// A token with its 1-based source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line.
    pub line: usize,
    /// Column.
    pub col: usize,
}

/// SQL tokens. Keywords are lexed as `Ident` and matched
/// case-insensitively by the parser.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-` (used in `SUBGRAPH-INTERSECTION` and negative literals)
    Minus,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Float(x) => write!(f, "`{x}`"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Eof => f.write_str("end of query"),
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, QueryError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            let c = bytes[pos];
            pos += 1;
            if c == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            c
        }};
    }

    while pos < bytes.len() {
        let c = bytes[pos];
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // `--` SQL comment to end of line.
        if c == b'-' && bytes.get(pos + 1) == Some(&b'-') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                bump!();
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        let tok = match c {
            b'(' => {
                bump!();
                Tok::LParen
            }
            b')' => {
                bump!();
                Tok::RParen
            }
            b',' => {
                bump!();
                Tok::Comma
            }
            b'.' => {
                bump!();
                Tok::Dot
            }
            b'*' => {
                bump!();
                Tok::Star
            }
            b'=' => {
                bump!();
                Tok::Eq
            }
            b'-' => {
                bump!();
                Tok::Minus
            }
            b'!' => {
                bump!();
                if bytes.get(pos) == Some(&b'=') {
                    bump!();
                    Tok::Ne
                } else {
                    return Err(QueryError::Syntax {
                        line: tline,
                        col: tcol,
                        message: "expected `!=`".into(),
                    });
                }
            }
            b'<' => {
                bump!();
                match bytes.get(pos) {
                    Some(&b'=') => {
                        bump!();
                        Tok::Le
                    }
                    Some(&b'>') => {
                        bump!();
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                }
            }
            b'>' => {
                bump!();
                if bytes.get(pos) == Some(&b'=') {
                    bump!();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'\'' | b'"' => {
                let quote = bump!();
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(QueryError::Syntax {
                            line: tline,
                            col: tcol,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let ch = bump!();
                    if ch == quote {
                        break;
                    }
                    s.push(ch as char);
                }
                Tok::Str(s)
            }
            b'0'..=b'9' => {
                let mut s = String::new();
                let mut is_float = false;
                while pos < bytes.len() {
                    let ch = bytes[pos];
                    if ch.is_ascii_digit() {
                        s.push(bump!() as char);
                    } else if ch == b'.' && bytes.get(pos + 1).is_some_and(|d| d.is_ascii_digit()) {
                        is_float = true;
                        s.push(bump!() as char);
                    } else {
                        break;
                    }
                }
                if is_float {
                    Tok::Float(s.parse().map_err(|e| QueryError::Syntax {
                        line: tline,
                        col: tcol,
                        message: format!("bad float `{s}`: {e}"),
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|e| QueryError::Syntax {
                        line: tline,
                        col: tcol,
                        message: format!("bad integer `{s}`: {e}"),
                    })?)
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    s.push(bump!() as char);
                }
                Tok::Ident(s)
            }
            other => {
                return Err(QueryError::Syntax {
                    line: tline,
                    col: tcol,
                    message: format!("unexpected character `{}`", other as char),
                });
            }
        };
        out.push(Spanned {
            tok,
            line: tline,
            col: tcol,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn basic_select() {
        let t = toks("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes");
        assert_eq!(t[0], Tok::Ident("SELECT".into()));
        assert!(t.contains(&Tok::LParen));
        assert!(t.contains(&Tok::Int(2)));
        assert_eq!(*t.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= != <> < <= > >= - *"),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Minus,
                Tok::Star,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hyphenated_function_names_lex_as_parts() {
        let t = toks("SUBGRAPH-INTERSECTION");
        assert_eq!(
            t,
            vec![
                Tok::Ident("SUBGRAPH".into()),
                Tok::Minus,
                Tok::Ident("INTERSECTION".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            toks("3 4.5 'abc' \"d\""),
            vec![
                Tok::Int(3),
                Tok::Float(4.5),
                Tok::Str("abc".into()),
                Tok::Str("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT -- the projection\n ID");
        assert_eq!(
            t,
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Ident("ID".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn error_positions() {
        let e = tokenize("SELECT\n  @").unwrap_err();
        match e {
            QueryError::Syntax { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unterminated_string() {
        assert!(tokenize("'oops").is_err());
        assert!(tokenize("!x").is_err());
    }
}
