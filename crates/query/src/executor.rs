//! Query execution: the interpreter at the end of the
//! `parse → plan → optimize → execute` pipeline.
//!
//! [`QueryEngine::execute`] parses a statement, builds its logical plan
//! ([`crate::plan::build_plan`]), runs the optimizer pass pipeline over
//! it ([`crate::optimizer`]), and interprets the resulting physical
//! plan: the census node's [`crate::plan::AlgoChoice`] decides the
//! algorithm, its
//! stages decide the batch grouping, and `EXPLAIN` renders the same
//! optimized tree instead of guessing.

use crate::ast::{AggCall, ColumnRef, NeighborhoodAst, Projection, SelectStmt, SortDir};
use crate::catalog::Catalog;
use crate::census_cache::CensusCache;
use crate::error::QueryError;
use crate::expr::{eval_predicate, RowContext};
use crate::optimizer::{optimize_with, PassContext, OPTIMIZERS};
use crate::parser::parse_query;
use crate::plan::{build_plan, CountHint, MatchHint, Plan, PlanNode, StatsBasis, ViewProbeJob};
use crate::stats::{rank_algorithms, CostJob, GraphStats, PlannerCounters, StatsSlot, CONSIDERED};
use crate::table::Table;
use crate::value::Value;
use crate::views::{ViewEntry, ViewRegistry, DEFAULT_VIEW_BUDGET};
use ego_census::{
    run_batch_exec, run_pair_census_exec, Algorithm, BatchStage, CensusSpec, CountVector,
    ExecConfig, FocalNodes, PairCensusSpec, PairCounts, PairSelector, PtConfig,
};
use ego_graph::io::IoError;
use ego_graph::{Graph, NodeId};
use ego_matcher::MatchList;
use ego_pattern::Pattern;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Where an engine's graph lives: borrowed from the caller (the
/// original in-process API) or shared behind an [`Arc`] (server
/// sessions on many threads over one loaded graph).
///
/// The *storage* backend underneath is orthogonal and chosen by file
/// extension when loading through [`QueryEngine::open`]: a `.egb` file
/// arrives on the read-only mmap store (O(1) open, pages shared across
/// processes), anything else on the heap-backed `Vec` store. Either
/// way the engine sees one `Graph` type.
enum GraphSource<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

impl GraphSource<'_> {
    #[inline]
    fn get(&self) -> &Graph {
        match self {
            GraphSource::Borrowed(g) => g,
            GraphSource::Shared(g) => g,
        }
    }
}

/// Executes census SQL against one graph.
///
/// The engine owns a [`Catalog`] of named patterns, an [`Algorithm`]
/// choice (default [`Algorithm::Auto`]), pattern-driven tuning, an
/// [`ExecConfig`] (default: all available hardware threads), and the
/// RNG seed that makes `RND()` deterministic across runs.
///
/// Engines either borrow their graph ([`QueryEngine::new`]) or share an
/// [`Arc`]-owned one ([`QueryEngine::shared`]); the latter has a
/// `'static` lifetime, so per-connection sessions on different threads
/// can each hold an engine over one loaded graph without re-parsing it
/// or resorting to `unsafe`.
pub struct QueryEngine<'g> {
    graph: GraphSource<'g>,
    catalog: Catalog,
    algorithm: Algorithm,
    pt_config: PtConfig,
    exec: ExecConfig,
    seed: u64,
    census_cache: Option<Arc<CensusCache>>,
    focal_shard: Option<crate::shard::ShardSpec>,
    /// Latest `ANALYZE` snapshot. A shared slot: server sessions point
    /// their engines at one slot so an `analyze` on any connection feeds
    /// every session's planner immediately.
    graph_stats: StatsSlot,
    /// Where `ANALYZE` persists its snapshot (the graph file's `.stats`
    /// sidecar when the engine was opened from a path).
    stats_path: Option<PathBuf>,
    /// Memoized structural heuristic for the current fingerprint, so
    /// planning without a snapshot costs one degree-histogram pass per
    /// graph, not per statement.
    heuristic_stats: Mutex<Option<Arc<GraphStats>>>,
    /// Planner bookkeeping (plans built, passes fired, ...), surfaced by
    /// the server `stats` op when attached.
    planner: Option<Arc<PlannerCounters>>,
    /// Materialized-view registry (`MATERIALIZE` / `DROP VIEW` / the
    /// view-substitution pass). Shared across server sessions like the
    /// census cache.
    views: Option<Arc<ViewRegistry>>,
    /// Where view maintenance persists the registry (the graph file's
    /// `.views` sidecar when the engine was opened from a path).
    views_path: Option<PathBuf>,
}

impl<'g> QueryEngine<'g> {
    /// Engine with an empty catalog and default settings.
    pub fn new(graph: &'g Graph) -> Self {
        Self::from_source(GraphSource::Borrowed(graph))
    }

    /// Engine preloaded with the paper's built-in patterns.
    pub fn with_builtins(graph: &'g Graph) -> Self {
        let mut e = Self::new(graph);
        e.catalog = Catalog::with_builtins();
        e
    }

    /// Engine over a shared, `Arc`-owned graph. The resulting engine is
    /// `'static`: it can move into a connection-handler thread while
    /// sibling sessions share the same graph.
    pub fn shared(graph: Arc<Graph>) -> QueryEngine<'static> {
        QueryEngine::from_source(GraphSource::Shared(graph))
    }

    /// Engine over a graph file, picking the storage backend by
    /// extension (`.egb` → read-only mmap store, anything else → text
    /// formats on the heap store; see `ego_graph::io::load_path`).
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<QueryEngine<'static>, IoError> {
        let path = path.as_ref();
        let mut e = QueryEngine::shared(Arc::new(ego_graph::io::load_path(path)?));
        // Adopt the graph's stats sidecar: a previous ANALYZE feeds the
        // planner immediately (staleness is detected per statement by
        // fingerprint). A missing or malformed sidecar must not block
        // opening the graph — the planner falls back to its structural
        // heuristic until the next ANALYZE rewrites the file.
        let sidecar = GraphStats::sidecar_path(path);
        if let Ok(Some(stats)) = GraphStats::load(&sidecar) {
            *e.graph_stats.write().unwrap() = Some(Arc::new(stats));
        }
        e.stats_path = Some(sidecar);
        // Adopt the `.views` sidecar the same way: views materialized by
        // a previous process are warm immediately, a stale fingerprint
        // silently yields a cold registry, and a malformed sidecar never
        // blocks the open.
        let views = Arc::new(ViewRegistry::new(DEFAULT_VIEW_BUDGET));
        let vpath = ViewRegistry::sidecar_path(path);
        let _ = views.adopt_sidecar(&vpath, e.graph().fingerprint(), e.graph().num_nodes());
        e.views = Some(views);
        e.views_path = Some(vpath);
        Ok(e)
    }

    /// [`QueryEngine::open`] preloaded with the paper's built-in patterns.
    pub fn open_with_builtins(
        path: impl AsRef<std::path::Path>,
    ) -> Result<QueryEngine<'static>, IoError> {
        let mut e = Self::open(path)?;
        e.catalog = Catalog::with_builtins();
        Ok(e)
    }

    fn from_source(graph: GraphSource<'g>) -> Self {
        QueryEngine {
            graph,
            catalog: Catalog::new(),
            algorithm: Algorithm::Auto,
            pt_config: PtConfig::default(),
            exec: ExecConfig::auto(),
            seed: 0xC0FFEE,
            census_cache: None,
            focal_shard: None,
            graph_stats: StatsSlot::default(),
            stats_path: None,
            heuristic_stats: Mutex::new(None),
            planner: None,
            views: None,
            views_path: None,
        }
    }

    /// The graph this engine executes against.
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// Swap in a new shared graph (after a mutation compacted one), keeping
    /// catalog, algorithm, seed, and cache wiring. Returns `true` if the
    /// fingerprint changed; in that case an attached [`CensusCache`] is
    /// invalidated so entries keyed on the old graph's fingerprint do not
    /// linger (they could never be *returned* — every key embeds the
    /// fingerprint — but they would pin memory until evicted).
    pub fn swap_graph(&mut self, graph: Arc<Graph>) -> bool {
        let changed = self.graph.get().fingerprint() != graph.fingerprint();
        self.graph = GraphSource::Shared(graph);
        if changed {
            if let Some(cache) = &self.census_cache {
                cache.invalidate();
            }
            // Materialized views are deliberately NOT invalidated: the
            // mutation host refreshes them in place through the
            // incremental engine (`install_refreshed`), and a view whose
            // fingerprint has not yet been refreshed simply stops
            // matching probes until it is.
        }
        changed
    }

    /// Replace the engine's catalog (e.g. with a session catalog layered
    /// over a shared base; see [`Catalog::layered`]).
    pub fn set_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
    }

    /// Mutable access to the pattern catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The pattern catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Force a specific census algorithm (default: `Auto`).
    pub fn set_algorithm(&mut self, a: Algorithm) {
        self.algorithm = a;
    }

    /// Tune the pattern-driven algorithms.
    pub fn set_pt_config(&mut self, c: PtConfig) {
        self.pt_config = c;
    }

    /// Set the worker thread count (`0` = all available hardware threads,
    /// the default). Results are identical for every thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec = ExecConfig::with_threads(threads);
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec
    }

    /// Seed for `RND()` (deterministic per execution).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Attach a shared [`CensusCache`]: match lists and finished count
    /// vectors are reused across statements (and across sessions when
    /// the cache is shared, as the server does). Counts are
    /// algorithm-invariant, so caching never changes results.
    pub fn set_census_cache(&mut self, cache: Arc<CensusCache>) {
        self.census_cache = Some(cache);
    }

    /// The attached census cache, if any.
    pub fn census_cache(&self) -> Option<&Arc<CensusCache>> {
        self.census_cache.as_ref()
    }

    /// Restrict single-table census statements to one focal shard: the
    /// WHERE clause (and its `RND()` stream) still evaluates over every
    /// node exactly as an unsharded engine would, then only focal nodes
    /// inside the shard's contiguous node-ID range are kept. A fleet of
    /// engines covering all shards of a partition therefore produces,
    /// by concatenation in shard order, exactly the unsharded result —
    /// the invariant the sharded server tier is built on.
    ///
    /// `None` (the default) and the whole-range shard `0/1` are
    /// equivalent. Pairwise (two-table) statements ignore the shard:
    /// the router routes those to a single worker unsharded.
    pub fn set_focal_shard(&mut self, shard: Option<crate::shard::ShardSpec>) {
        self.focal_shard = shard.filter(|s| !s.is_whole());
    }

    /// The focal shard this engine is restricted to, if any.
    pub fn focal_shard(&self) -> Option<crate::shard::ShardSpec> {
        self.focal_shard
    }

    /// Attach planner counters (plans built, passes fired, cost-model
    /// vs heuristic choices); the server shares one set across sessions
    /// and surfaces them through the `stats` op.
    pub fn set_planner_counters(&mut self, counters: Arc<PlannerCounters>) {
        self.planner = Some(counters);
    }

    /// The attached planner counters, if any.
    pub fn planner_counters(&self) -> Option<&Arc<PlannerCounters>> {
        self.planner.as_ref()
    }

    /// Attach a materialized-view registry: `MATERIALIZE` / `DROP VIEW`
    /// statements become available and the view-substitution pass starts
    /// rewriting eligible census statements into pure view probes. The
    /// server shares one registry across sessions.
    pub fn set_views(&mut self, views: Arc<ViewRegistry>) {
        self.views = Some(views);
    }

    /// The attached view registry, if any.
    pub fn views(&self) -> Option<&Arc<ViewRegistry>> {
        self.views.as_ref()
    }

    /// Where view maintenance persists the registry (`None` disables
    /// persistence; [`QueryEngine::open`] defaults to the graph file's
    /// `.views` sidecar).
    pub fn set_views_path(&mut self, path: Option<PathBuf>) {
        self.views_path = path;
    }

    /// The view persistence path, if set.
    pub fn views_path(&self) -> Option<&Path> {
        self.views_path.as_deref()
    }

    /// Share an `ANALYZE`-snapshot slot with other engines (server
    /// sessions over one graph share one slot).
    pub fn set_stats_slot(&mut self, slot: StatsSlot) {
        self.graph_stats = slot;
    }

    /// The engine's snapshot slot, for sharing with sibling engines.
    pub fn stats_slot(&self) -> StatsSlot {
        Arc::clone(&self.graph_stats)
    }

    /// Where `ANALYZE` persists its snapshot (`None` disables
    /// persistence; [`QueryEngine::open`] defaults to the graph file's
    /// `.stats` sidecar).
    pub fn set_stats_path(&mut self, path: Option<PathBuf>) {
        self.stats_path = path;
    }

    /// The snapshot persistence path, if set.
    pub fn stats_path(&self) -> Option<&Path> {
        self.stats_path.as_deref()
    }

    /// The current `ANALYZE` snapshot, if one was taken or loaded (it
    /// may be stale; the planner checks the fingerprint per statement).
    pub fn graph_stats(&self) -> Option<Arc<GraphStats>> {
        self.graph_stats.read().unwrap().clone()
    }

    /// `ANALYZE`: profile the live graph ([`GraphStats::analyze`]),
    /// install the snapshot for the planner (and every engine sharing
    /// this slot), pre-seed the adaptive set-intersection thresholds
    /// from the graph's shape, persist the sidecar when a stats path is
    /// set, and return the snapshot as a key/value table.
    pub fn analyze(&self) -> Result<Table, QueryError> {
        let stats = Arc::new(GraphStats::analyze(self.graph()));
        ego_graph::setops::set_tuning(stats.setops_tuning());
        if let Some(path) = &self.stats_path {
            stats.save(path)?;
        }
        *self.graph_stats.write().unwrap() = Some(Arc::clone(&stats));
        Ok(stats.to_table())
    }

    /// The statistics the planner should use right now, plus where they
    /// came from: a fresh snapshot when its fingerprint matches the live
    /// graph, otherwise the memoized structural heuristic (reported as
    /// `Stale` when a mismatched snapshot exists, `Heuristic` when none
    /// does).
    fn planning_stats(&self) -> (Arc<GraphStats>, StatsBasis) {
        let fp = self.graph().fingerprint();
        let snapshot = self.graph_stats.read().unwrap().clone();
        match snapshot {
            Some(s) if !s.is_stale(fp) => (s, StatsBasis::Analyzed),
            Some(_) => (self.heuristic_stats(fp), StatsBasis::Stale),
            None => (self.heuristic_stats(fp), StatsBasis::Heuristic),
        }
    }

    /// Memoized [`GraphStats::heuristic`] for the current fingerprint.
    fn heuristic_stats(&self, fingerprint: u64) -> Arc<GraphStats> {
        let mut slot = self.heuristic_stats.lock().unwrap();
        if let Some(s) = slot.as_ref() {
            if s.fingerprint == fingerprint {
                return Arc::clone(s);
            }
        }
        let s = Arc::new(GraphStats::heuristic(self.graph()));
        *slot = Some(Arc::clone(&s));
        s
    }

    /// Build and optimize the plan for a single-table statement.
    /// `focal` is the evaluated focal set when known (execution always
    /// knows it; EXPLAIN only without a WHERE clause) — it feeds the
    /// count-cache probes and the cost model's focal cardinality.
    fn plan_single(
        &self,
        stmt: &SelectStmt,
        focal: Option<&[NodeId]>,
        passes: &[(&str, crate::optimizer::Pass)],
    ) -> Result<Plan, QueryError> {
        let (stats, basis) = self.planning_stats();
        let mut ctx = PassContext {
            graph: self.graph(),
            catalog: &self.catalog,
            stats: &stats,
            stats_basis: basis,
            fingerprint: self.graph().fingerprint(),
            cache: self.census_cache.as_deref(),
            views: self.views.as_deref(),
            focal,
            shard: self.focal_shard,
            forced: self.algorithm,
            counters: self.planner.as_deref(),
            fired: 0,
        };
        optimize_with(build_plan(stmt), &mut ctx, passes)
    }

    /// Parse and execute a statement. `EXPLAIN SELECT ...` returns the
    /// optimized plan tree instead of results; `ANALYZE` profiles the
    /// graph and returns the statistics snapshot.
    pub fn execute(&self, sql: &str) -> Result<Table, QueryError> {
        let trimmed = sql.trim_start();
        if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
            return self.explain(&trimmed[7..]);
        }
        if crate::parser::is_analyze_statement(sql) {
            if !sql.trim().eq_ignore_ascii_case("ANALYZE") {
                return Err(QueryError::Semantic(
                    "ANALYZE takes no arguments; it profiles the whole graph".into(),
                ));
            }
            return self.analyze();
        }
        if crate::parser::is_mutation_statement(sql) {
            return Err(QueryError::Semantic(
                "the query engine is read-only; INSERT EDGE / DELETE EDGE must go through a \
                 mutation host (the server `update` op or `egocensus mutate`)"
                    .into(),
            ));
        }
        if crate::parser::is_materialize_statement(sql) {
            return self.execute_materialize(sql);
        }
        if crate::parser::is_drop_view_statement(sql) {
            return self.execute_drop_view(sql);
        }
        let stmt = parse_query(sql)?;
        match stmt.tables.len() {
            1 => self.execute_single(&stmt),
            2 => self.execute_pair(&stmt),
            n => Err(QueryError::Semantic(format!("{n} tables unsupported"))),
        }
    }

    /// Describe how a SELECT would run: the optimized plan tree, one row
    /// per operator (indented by depth), with the algorithm decision,
    /// every considered alternative's estimated cost, per-aggregate
    /// match estimates (`estimated:` from the cost model, `cached:` when
    /// the census cache holds the exact list), expected cache reuse,
    /// batch-stage grouping, and the set-intersection kernel plan.
    pub fn explain(&self, sql: &str) -> Result<Table, QueryError> {
        let stmt = parse_query(sql)?;
        if stmt.tables.len() > 2 {
            return Err(QueryError::Semantic("too many tables".into()));
        }
        // The focal set is known without a WHERE clause (every node,
        // shard applied); with one, count-cache probes stay `Unknown` —
        // EXPLAIN must not evaluate predicates or consume RND() streams.
        let focal: Option<Vec<NodeId>> = if stmt.tables.len() == 1 && stmt.where_clause.is_none() {
            Some(self.compute_focal(&stmt, stmt.tables[0].alias.as_str())?)
        } else {
            None
        };
        let plan = self.plan_single(&stmt, focal.as_deref(), OPTIMIZERS)?;
        self.render_plan(&plan)
    }

    /// Render an optimized plan as the EXPLAIN table.
    fn render_plan(&self, plan: &Plan) -> Result<Table, QueryError> {
        let mut table = Table::new(vec!["node".into(), "detail".into(), "est_cost".into()]);
        let (stats, _) = self.planning_stats();
        self.render_node(&plan.root, &plan.stmt, &stats, 0, &mut table)?;
        Ok(table)
    }

    fn render_node(
        &self,
        node: &PlanNode,
        stmt: &SelectStmt,
        stats: &GraphStats,
        depth: usize,
        table: &mut Table,
    ) -> Result<(), QueryError> {
        let dash = || Value::Str("-".into());
        let label = |name: &str, depth: usize| {
            Value::Str(format!("{:indent$}{name}", "", indent = 2 * depth))
        };
        match node {
            PlanNode::Scan { alias } => {
                table.push_row(vec![
                    label("scan", depth),
                    Value::Str(format!("nodes AS {alias}")),
                    Value::Int(self.graph().num_nodes() as i64),
                ]);
            }
            PlanNode::Filter { input } => {
                table.push_row(vec![
                    label("filter", depth),
                    Value::Str("WHERE".into()),
                    dash(),
                ]);
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::Shard { spec, input } => {
                table.push_row(vec![
                    label("shard", depth),
                    Value::Str(format!("focal shard {spec} (after WHERE)")),
                    dash(),
                ]);
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::Project { input } => {
                let cols: Vec<String> = stmt.projections.iter().map(projection_name).collect();
                table.push_row(vec![
                    label("project", depth),
                    Value::Str(cols.join(", ")),
                    dash(),
                ]);
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::Order { keys, input } => {
                let desc: Vec<String> = keys
                    .iter()
                    .map(|k| {
                        let dir = match k.dir {
                            SortDir::Asc => "ASC",
                            SortDir::Desc => "DESC",
                        };
                        format!("{} {dir}", k.ordinal)
                    })
                    .collect();
                table.push_row(vec![
                    label("order", depth),
                    Value::Str(desc.join(", ")),
                    dash(),
                ]);
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::Limit { n, input } => {
                table.push_row(vec![
                    label("limit", depth),
                    Value::Str(format!("n={n}")),
                    dash(),
                ]);
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::PairCensus { aggs, input } => {
                table.push_row(vec![
                    label("pair-census", depth),
                    Value::Str(format!(
                        "{aggs} aggregate(s) per node pair, algo={:?} (engine setting; \
                         pairwise census is not cost-planned)",
                        self.algorithm
                    )),
                    dash(),
                ]);
                self.render_pair_aggs(stmt, depth + 1, table)?;
                self.render_setops(depth + 1, table);
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::ViewProbe { probes, input } => {
                table.push_row(vec![
                    label("view-probe", depth),
                    Value::Str(format!(
                        "{} probe(s), pure gather over pinned views (no traversal)",
                        probes.len()
                    )),
                    Value::Float(0.0),
                ]);
                for p in probes {
                    let matches = p.matches.map_or("-".to_string(), |l| l.to_string());
                    let coverage = p.coverage.map_or("full".to_string(), |s| s.to_string());
                    table.push_row(vec![
                        label("view", depth + 1),
                        Value::Str(format!(
                            "view: {} k={} sp={} matches={matches} coverage={coverage}",
                            p.dsl,
                            p.k,
                            p.subpattern.as_deref().unwrap_or("-"),
                        )),
                        Value::Float(0.0),
                    ]);
                }
                self.render_node(input, stmt, stats, depth + 1, table)?;
            }
            PlanNode::Census(c) => {
                let (algo_desc, cost) = match &c.choice {
                    Some(ch) => {
                        let how = if ch.forced {
                            "forced"
                        } else {
                            match ch.stats {
                                StatsBasis::Analyzed => "cost-model",
                                StatsBasis::Stale | StatsBasis::Heuristic => "heuristic",
                            }
                        };
                        (
                            format!(
                                "algo={:?} ({how}, stats={})",
                                ch.algorithm,
                                ch.stats.label()
                            ),
                            Value::Float(ch.cost()),
                        )
                    }
                    None => (format!("algo={:?} (unplanned)", self.algorithm), dash()),
                };
                table.push_row(vec![label("census", depth), Value::Str(algo_desc), cost]);
                // The road not taken: every algorithm that can serve the
                // statement, with its estimated cost, cheapest first.
                if let Some(ch) = &c.choice {
                    for (a, cost) in &ch.considered {
                        let marker = if *a == ch.algorithm { " (chosen)" } else { "" };
                        table.push_row(vec![
                            label("choice", depth + 1),
                            Value::Str(format!("{a:?}{marker}")),
                            Value::Float(*cost),
                        ]);
                    }
                }
                let profiles = ego_graph::profile::ProfileIndex::build(self.graph());
                for job in &c.jobs {
                    let pattern = self.catalog.require(&job.pattern)?;
                    // Match-list size: exact when the census cache holds
                    // the list, otherwise the cost model's estimate.
                    let matches = match job.cached_matches {
                        MatchHint::Hit(len) => format!("cached:{len}"),
                        MatchHint::Miss | MatchHint::Unknown => {
                            format!("estimated:{:.1}", stats.est_matches(pattern))
                        }
                    };
                    // Profile-filtered candidate counts per pattern node:
                    // the matcher's first pruning step, cheap and
                    // indicative of pattern selectivity.
                    let mut mstats = ego_matcher::MatchStats::default();
                    let cs = ego_matcher::candidates::CandidateSpace::enumerate(
                        self.graph(),
                        pattern,
                        &profiles,
                        &mut mstats,
                    );
                    let cand_desc: Vec<String> = pattern
                        .nodes()
                        .map(|v| format!("?{}:{}", pattern.var_name(v), cs.cands[v.index()].len()))
                        .collect();
                    table.push_row(vec![
                        label("agg", depth + 1),
                        Value::Str(format!(
                            "{} {} {}/{} k={} matches={matches} cands {}",
                            projection_name(&stmt.projections[job.projection]),
                            ego_pattern::to_dsl(pattern),
                            pattern.num_nodes(),
                            pattern.positive_edges().len(),
                            job.k,
                            cand_desc.join(" "),
                        )),
                        dash(),
                    ]);
                }
                // Expected cache reuse (rows only when a cache is
                // attached — hints stay `Unknown` without one).
                for job in &c.jobs {
                    let m = match job.cached_matches {
                        MatchHint::Unknown => continue,
                        MatchHint::Miss => "miss".to_string(),
                        MatchHint::Hit(_) => "hit".to_string(),
                    };
                    let counts = match job.cached_counts {
                        CountHint::Unknown => "unknown (WHERE)",
                        CountHint::Miss => "miss",
                        CountHint::Hit => "hit",
                    };
                    table.push_row(vec![
                        label("cache", depth + 1),
                        Value::Str(format!("{}: matches={m} counts={counts}", job.pattern)),
                        dash(),
                    ]);
                }
                // Shared-work grouping under the chosen algorithm (the
                // batch-grouping pass ran the real stage planner).
                for stage in &c.stages {
                    let name = |i: &usize| c.jobs[*i].pattern.as_str();
                    let detail = match stage {
                        BatchStage::NdSweep {
                            pivot,
                            baseline,
                            k_max,
                        } => {
                            let members: Vec<&str> =
                                pivot.iter().chain(baseline).map(name).collect();
                            format!(
                                "nd-sweep {} 1 BFS sweep/focal @k={k_max} pivot={} baseline={}",
                                members.join("+"),
                                pivot.len(),
                                baseline.len()
                            )
                        }
                        BatchStage::PtGroup { specs: idxs, k } => {
                            let members: Vec<&str> = idxs.iter().map(name).collect();
                            format!(
                                "pt-group {} shared traversal @k={k} ({} patterns pool matches)",
                                members.join("+"),
                                idxs.len()
                            )
                        }
                    };
                    table.push_row(vec![label("stage", depth + 1), Value::Str(detail), dash()]);
                }
                self.render_setops(depth + 1, table);
                self.render_node(&c.input, stmt, stats, depth + 1, table)?;
            }
        }
        Ok(())
    }

    /// Pairwise aggregates resolve patterns here so EXPLAIN of an
    /// unknown pattern errors exactly like execution would.
    fn render_pair_aggs(
        &self,
        stmt: &SelectStmt,
        depth: usize,
        table: &mut Table,
    ) -> Result<(), QueryError> {
        for proj in &stmt.projections {
            let Projection::Agg(agg) = proj else { continue };
            let pattern = self.catalog.require(&agg.pattern)?;
            let (nb, k) = match &agg.neighborhood {
                NeighborhoodAst::Subgraph { k, .. } => ("SUBGRAPH", *k),
                NeighborhoodAst::Intersection { k, .. } => ("SUBGRAPH-INTERSECTION", *k),
                NeighborhoodAst::Union { k, .. } => ("SUBGRAPH-UNION", *k),
            };
            table.push_row(vec![
                Value::Str(format!("{:indent$}agg", "", indent = 2 * depth)),
                Value::Str(format!(
                    "{} {} {}/{} {nb}(k={k})",
                    projection_name(proj),
                    ego_pattern::to_dsl(pattern),
                    pattern.num_nodes(),
                    pattern.positive_edges().len(),
                )),
                Value::Str("-".into()),
            ]);
        }
        Ok(())
    }

    /// Set-intersection kernel plan: which kernel the matcher's hot
    /// loops will dispatch to (EGO_SETOPS override or adaptive) and the
    /// live adaptive thresholds (defaults, or ANALYZE-derived). Volatile
    /// dispatch *counters* live in the server `stats` op and `egocensus
    /// match --stats`, keeping EXPLAIN deterministic for identical
    /// inputs.
    fn render_setops(&self, depth: usize, table: &mut Table) {
        let t = ego_graph::setops::current_tuning();
        table.push_row(vec![
            Value::Str(format!("{:indent$}setops", "", indent = 2 * depth)),
            Value::Str(format!(
                "kernel={} gallop_ratio:{} bitset_min_reuse:{} bitset_min_set:{}",
                ego_graph::setops::configured_kernel().name(),
                t.gallop_ratio,
                t.bitset_min_reuse,
                t.bitset_min_set
            )),
            Value::Str("-".into()),
        ]);
    }

    // --- materialized views ---

    /// `MATERIALIZE <pattern> RADIUS k [SUBPATTERN sp] [MATCHES]`:
    /// eagerly compute the full per-focal count vector over this
    /// engine's focal coverage (the whole graph, or its focal shard's
    /// range) and pin it in the view registry; with `MATCHES`, pin the
    /// global match list too. Persists the `.views` sidecar when a views
    /// path is set. The ack table is identical on every shard of a
    /// fleet, so the router's broadcast divergence check applies.
    fn execute_materialize(&self, sql: &str) -> Result<Table, QueryError> {
        let m = crate::parser::parse_materialize(sql)?;
        let Some(views) = self.views.as_deref() else {
            return Err(QueryError::Semantic(
                "no view registry attached; MATERIALIZE is unavailable in this context".into(),
            ));
        };
        let pattern = self.catalog.require(&m.pattern)?;
        if let Some(sp) = &m.subpattern {
            if pattern.subpattern(sp).is_none() {
                return Err(QueryError::Semantic(format!(
                    "pattern `{}` has no subpattern `{sp}`",
                    m.pattern
                )));
            }
        }
        let g = self.graph();
        let focal: Vec<NodeId> = match self.focal_shard {
            Some(s) => {
                let r = s.range(g.num_nodes());
                (r.start as u32..r.end as u32).map(NodeId).collect()
            }
            None => g.node_ids().collect(),
        };
        let algorithm = match self.algorithm {
            Algorithm::Auto => {
                let (stats, _) = self.planning_stats();
                let cj = CostJob::new(&stats, pattern, m.k, m.subpattern.is_some());
                rank_algorithms(&stats, &[cj], focal.len())[0].0
            }
            a => a,
        };
        let mut spec = CensusSpec::single(pattern, m.k).with_focal(FocalNodes::Set(focal));
        if let Some(sp) = &m.subpattern {
            spec = spec.with_subpattern(sp);
        }
        let batch = run_batch_exec(g, &[spec], algorithm, &self.pt_config, &self.exec, &[None])?;
        let counts = Arc::new(batch.counts.into_iter().next().expect("one spec"));
        let matches = if m.matches {
            match batch.matches.into_iter().next().expect("one spec") {
                Some(list) => Some(list),
                None => Some(Arc::new(ego_census::global_matches(g, pattern))),
            }
        } else {
            None
        };
        let dsl = ego_pattern::to_dsl(pattern);
        let bytes = ViewEntry::estimate_bytes(&counts, matches.as_deref());
        views.insert(ViewEntry {
            pattern: pattern.clone(),
            dsl,
            k: m.k,
            subpattern: m.subpattern.clone(),
            counts,
            matches: matches.clone(),
            fingerprint: g.fingerprint(),
            shard: self.focal_shard,
            bytes,
        })?;
        self.persist_views()?;
        let mut t = Table::new(vec!["key".into(), "value".into()]);
        t.push_row(vec![Value::Str("pattern".into()), Value::Str(m.pattern)]);
        t.push_row(vec![Value::Str("radius".into()), Value::Int(m.k as i64)]);
        t.push_row(vec![
            Value::Str("subpattern".into()),
            Value::Str(m.subpattern.unwrap_or_else(|| "-".into())),
        ]);
        t.push_row(vec![
            Value::Str("matches".into()),
            Value::Str(if m.matches { "on".into() } else { "off".into() }),
        ]);
        t.push_row(vec![
            Value::Str("status".into()),
            Value::Str("materialized".into()),
        ]);
        Ok(t)
    }

    /// `DROP VIEW <pattern> RADIUS k [SUBPATTERN sp]`: unpin and remove
    /// the view; errors if no such view exists.
    fn execute_drop_view(&self, sql: &str) -> Result<Table, QueryError> {
        let d = crate::parser::parse_drop_view(sql)?;
        let Some(views) = self.views.as_deref() else {
            return Err(QueryError::Semantic(
                "no view registry attached; DROP VIEW is unavailable in this context".into(),
            ));
        };
        let pattern = self.catalog.require(&d.pattern)?;
        let dsl = ego_pattern::to_dsl(pattern);
        if views.remove(&dsl, d.k, d.subpattern.as_deref()).is_none() {
            return Err(QueryError::Semantic(format!(
                "no materialized view for `{}` RADIUS {}{}",
                d.pattern,
                d.k,
                d.subpattern
                    .as_deref()
                    .map(|sp| format!(" SUBPATTERN {sp}"))
                    .unwrap_or_default()
            )));
        }
        self.persist_views()?;
        let mut t = Table::new(vec!["key".into(), "value".into()]);
        t.push_row(vec![Value::Str("pattern".into()), Value::Str(d.pattern)]);
        t.push_row(vec![Value::Str("radius".into()), Value::Int(d.k as i64)]);
        t.push_row(vec![
            Value::Str("subpattern".into()),
            Value::Str(d.subpattern.unwrap_or_else(|| "-".into())),
        ]);
        t.push_row(vec![
            Value::Str("status".into()),
            Value::Str("dropped".into()),
        ]);
        Ok(t)
    }

    /// Persist the view registry to its sidecar, if both are attached.
    fn persist_views(&self) -> Result<(), QueryError> {
        if let (Some(views), Some(path)) = (self.views.as_deref(), self.views_path.as_deref()) {
            views.save(path, self.graph().fingerprint())?;
        }
        Ok(())
    }

    /// Serve a view-probe plan's count vectors straight from the
    /// registry (counting hits). `None` if any probed view vanished or
    /// went stale since planning — the caller recomputes.
    fn probe_views(&self, probes: &[ViewProbeJob]) -> Option<Vec<Arc<CountVector>>> {
        let views = self.views.as_deref()?;
        let fp = self.graph().fingerprint();
        probes
            .iter()
            .map(|p| {
                views
                    .get(&p.dsl, p.k, p.subpattern.as_deref(), fp, self.focal_shard)
                    .map(|e| Arc::clone(&e.counts))
            })
            .collect()
    }

    // --- single-table queries ---

    /// Execute every statement in a `;`-separated script, returning one
    /// result table per statement (in order). All single-table census
    /// aggregates across the whole script are compiled into **one**
    /// [`run_batch_exec`] call, so statements over the same patterns,
    /// radii, or focal sets share neighborhood sweeps, traversal groups,
    /// and global match lists; EXPLAIN and two-table statements run
    /// individually. The script aborts on the first error.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<Table>, QueryError> {
        enum Item {
            Direct(String),
            Planned {
                plan: Box<Plan>,
                focal: Vec<NodeId>,
            },
            Batched {
                plan: Box<Plan>,
                focal: Vec<NodeId>,
                range: std::ops::Range<usize>,
            },
        }
        let mut items = Vec::new();
        let mut jobs: Vec<BatchAgg<'_>> = Vec::new();
        for text in split_statements(sql) {
            let trimmed = text.trim_start();
            if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
                items.push(Item::Direct(text));
                continue;
            }
            if crate::parser::is_analyze_statement(&text)
                || crate::parser::is_mutation_statement(&text)
                || crate::parser::is_materialize_statement(&text)
                || crate::parser::is_drop_view_statement(&text)
            {
                // Route through execute() (ANALYZE/view-maintenance
                // semantics / the read-only mutation error).
                items.push(Item::Direct(text));
                continue;
            }
            let stmt = parse_query(&text)?;
            if stmt.tables.len() != 1 {
                items.push(Item::Direct(text));
                continue;
            }
            let alias = stmt.tables[0].alias.clone();
            let focal = self.compute_focal(&stmt, &alias)?;
            validate_single_aggs(&stmt, &alias)?;
            let plan = self.plan_single(&stmt, Some(&focal), OPTIMIZERS)?;
            if plan.view_probe().is_some() {
                // View-served: nothing to contribute to the shared batch
                // and nothing to gain from it — run_plan gathers from the
                // pinned vectors directly.
                items.push(Item::Planned {
                    plan: Box::new(plan),
                    focal,
                });
                continue;
            }
            let start = jobs.len();
            if let Some(c) = plan.census() {
                for job in &c.jobs {
                    jobs.push(BatchAgg {
                        pattern: self.catalog.require(&job.pattern)?,
                        k: job.k,
                        subpattern: job.subpattern.clone(),
                        focal: focal.clone(),
                    });
                }
            }
            items.push(Item::Batched {
                plan: Box::new(plan),
                focal,
                range: start..jobs.len(),
            });
        }
        // One algorithm decision spanning the whole script preserves
        // cross-statement sharing: statements over the same patterns and
        // radii still land in one sweep or traversal group.
        let choices: Vec<&crate::plan::AlgoChoice> = items
            .iter()
            .filter_map(|item| match item {
                Item::Batched { plan, .. } => plan.choice(),
                Item::Direct(_) | Item::Planned { .. } => None,
            })
            .collect();
        let algorithm = union_algorithm(&choices, self.algorithm);
        let results = self.run_batched(&jobs, algorithm)?;
        items
            .into_iter()
            .map(|item| match item {
                Item::Direct(text) => self.execute(&text),
                Item::Planned { plan, focal } => self.run_plan(&plan, &focal),
                Item::Batched { plan, focal, range } => {
                    self.project_single(&plan.stmt, &focal, &results[range])
                }
            })
            .collect()
    }

    fn execute_single(&self, stmt: &SelectStmt) -> Result<Table, QueryError> {
        let alias = stmt.tables[0].alias.as_str();
        let focal = self.compute_focal(stmt, alias)?;
        validate_single_aggs(stmt, alias)?;
        let plan = self.plan_single(stmt, Some(&focal), OPTIMIZERS)?;
        self.run_plan(&plan, &focal)
    }

    /// Interpret an optimized single-table plan: the census node's jobs
    /// run as one batch under the plan's algorithm choice, then rows are
    /// projected (ORDER BY / LIMIT live in the statement).
    fn run_plan(&self, plan: &Plan, focal: &[NodeId]) -> Result<Table, QueryError> {
        if let Some(probes) = plan.view_probe() {
            if let Some(results) = self.probe_views(probes) {
                // Pure gather: project_single reads only the focal
                // positions of each pinned full-coverage vector.
                return self.project_single(&plan.stmt, focal, &results);
            }
            // A probed view vanished between planning and execution
            // (concurrent DROP VIEW or refresh race): recompute as an
            // ordinary census. Counts are algorithm-invariant, so any
            // serving algorithm gives the identical table.
            let mut jobs = Vec::with_capacity(probes.len());
            for p in probes {
                jobs.push(BatchAgg {
                    pattern: self.catalog.require(&p.pattern)?,
                    k: p.k,
                    subpattern: p.subpattern.clone(),
                    focal: focal.to_vec(),
                });
            }
            let algorithm = match self.algorithm {
                Algorithm::Auto => Algorithm::NdPivot,
                a => a,
            };
            let results = self.run_batched(&jobs, algorithm)?;
            return self.project_single(&plan.stmt, focal, &results);
        }
        let (algorithm, jobs) = match plan.census() {
            Some(c) => {
                let algorithm = c.choice.as_ref().map_or(self.algorithm, |ch| ch.algorithm);
                let mut jobs = Vec::with_capacity(c.jobs.len());
                for job in &c.jobs {
                    jobs.push(BatchAgg {
                        pattern: self.catalog.require(&job.pattern)?,
                        k: job.k,
                        subpattern: job.subpattern.clone(),
                        focal: focal.to_vec(),
                    });
                }
                (algorithm, jobs)
            }
            None => (self.algorithm, Vec::new()),
        };
        let agg_results = self.run_batched(&jobs, algorithm)?;
        self.project_single(&plan.stmt, focal, &agg_results)
    }

    /// Evaluate the WHERE clause into the focal node set (ascending
    /// node order; `RND()` drawn from a fresh seeded stream).
    fn compute_focal(&self, stmt: &SelectStmt, alias: &str) -> Result<Vec<NodeId>, QueryError> {
        let g = self.graph();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut focal: Vec<NodeId> = Vec::new();
        for n in g.node_ids() {
            let keep = match &stmt.where_clause {
                None => true,
                Some(expr) => {
                    let ctx = RowContext {
                        graph: g,
                        bindings: vec![(alias, n)],
                    };
                    eval_predicate(expr, &ctx, &mut rng)?
                }
            };
            if keep {
                focal.push(n);
            }
        }
        // Shard restriction comes *after* the full WHERE pass so the
        // RND() stream stays aligned with unsharded execution.
        if let Some(shard) = self.focal_shard {
            let range = shard.range(g.num_nodes());
            focal.retain(|n| range.contains(&(n.0 as usize)));
        }
        Ok(focal)
    }

    /// Evaluate a set of census aggregates as one batch under the
    /// planned `algorithm`, consulting the census cache (when attached)
    /// for finished counts and global match lists. Returned vectors are
    /// in job order.
    fn run_batched(
        &self,
        jobs: &[BatchAgg<'_>],
        algorithm: Algorithm,
    ) -> Result<Vec<Arc<CountVector>>, QueryError> {
        let g = self.graph();
        let mut results: Vec<Option<Arc<CountVector>>> = vec![None; jobs.len()];
        let cache = self.census_cache.as_deref();
        let fp = if cache.is_some() { g.fingerprint() } else { 0 };
        // ND-BAS / ND-DIFF reject some specs other algorithms accept; a
        // count-cache hit would mask that rejection, so they bypass it.
        let count_cacheable = !matches!(algorithm, Algorithm::NdBaseline | Algorithm::NdDiff);
        let mut count_keys: Vec<Option<String>> = vec![None; jobs.len()];
        if let Some(c) = cache {
            for (i, job) in jobs.iter().enumerate() {
                let key = CensusCache::count_key(
                    &ego_pattern::to_dsl(job.pattern),
                    job.k,
                    job.subpattern.as_deref(),
                    &job.focal,
                    fp,
                );
                if count_cacheable {
                    results[i] = c.get_counts(&key);
                }
                count_keys[i] = Some(key);
            }
        }

        let miss: Vec<usize> = (0..jobs.len()).filter(|&i| results[i].is_none()).collect();
        if !miss.is_empty() {
            let mut specs = Vec::with_capacity(miss.len());
            let mut provided: Vec<Option<Arc<MatchList>>> = Vec::with_capacity(miss.len());
            let mut match_keys: Vec<String> = Vec::with_capacity(miss.len());
            for &i in &miss {
                let job = &jobs[i];
                let mut spec = CensusSpec::single(job.pattern, job.k)
                    .with_focal(FocalNodes::Set(job.focal.clone()));
                if let Some(sp) = &job.subpattern {
                    spec = spec.with_subpattern(sp);
                }
                specs.push(spec);
                let mkey = CensusCache::match_key(&ego_pattern::to_dsl(job.pattern), fp);
                // ND-BAS never uses global match lists; don't skew the
                // hit/miss counters with lookups it would ignore.
                provided.push(match cache {
                    Some(c) if algorithm != Algorithm::NdBaseline => c.get_matches(&mkey),
                    _ => None,
                });
                match_keys.push(mkey);
            }
            let batch =
                run_batch_exec(g, &specs, algorithm, &self.pt_config, &self.exec, &provided)?;
            for (j, (&i, cv)) in miss.iter().zip(batch.counts).enumerate() {
                let cv = Arc::new(cv);
                if let Some(c) = cache {
                    if let Some(m) = &batch.matches[j] {
                        c.put_matches(match_keys[j].clone(), m.clone());
                    }
                    if let Some(key) = &count_keys[i] {
                        let job = &jobs[i];
                        // Provenance: the dirty radius bound under which
                        // these counts stay exact across a mutation
                        // (mirrors ego-dynamic's rule), so a localized
                        // update can keep the entry instead of dropping it.
                        let radius = if job.subpattern.is_none() {
                            Some(job.k)
                        } else if job.pattern.is_connected() {
                            Some(job.k + (job.pattern.num_nodes() as u32).saturating_sub(1))
                        } else {
                            None
                        };
                        c.put_counts_with_meta(
                            key.clone(),
                            cv.clone(),
                            crate::census_cache::CountMeta {
                                dsl: ego_pattern::to_dsl(job.pattern),
                                k: job.k,
                                subpattern: job.subpattern.clone(),
                                focal: Arc::new(job.focal.clone()),
                                radius,
                            },
                        );
                    }
                }
                results[i] = Some(cv);
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("all slots filled"))
            .collect())
    }

    /// Project a single-table statement's rows from precomputed
    /// aggregate results (one [`CountVector`] per aggregate, in
    /// projection order).
    fn project_single(
        &self,
        stmt: &SelectStmt,
        focal: &[NodeId],
        agg_results: &[Arc<CountVector>],
    ) -> Result<Table, QueryError> {
        let alias = stmt.tables[0].alias.as_str();
        let g = self.graph();
        let columns = stmt.projections.iter().map(projection_name).collect();
        let mut table = Table::new(columns);
        for &n in focal {
            let mut row = Vec::with_capacity(stmt.projections.len());
            let mut agg_i = 0;
            for proj in &stmt.projections {
                match proj {
                    Projection::Column(c) => {
                        let ctx = RowContext {
                            graph: g,
                            bindings: vec![(alias, n)],
                        };
                        row.push(ctx.column_value(c)?);
                    }
                    Projection::Agg(_) => {
                        row.push(Value::Int(agg_results[agg_i].get(n) as i64));
                        agg_i += 1;
                    }
                }
            }
            table.push_row(row);
        }
        apply_order_limit(&mut table, stmt);
        Ok(table)
    }

    /// Compile a `SUBSCRIBE` statement (or bare SELECT) into a standing
    /// query: validate the shape (single table; projections are `ID`
    /// and at least one aggregate; no ORDER BY / LIMIT), freeze the
    /// focal set (WHERE + `RND()` + focal shard, exactly as a query
    /// would evaluate them), and resolve each aggregate's pattern into
    /// an owned copy detached from this engine's catalog.
    pub fn compile_subscription(
        &self,
        sql: &str,
    ) -> Result<crate::subscribe::SubscriptionSpec, QueryError> {
        let body = crate::subscribe::strip_subscribe(sql);
        let stmt = parse_query(body)?;
        if stmt.tables.len() != 1 {
            return Err(QueryError::Semantic(
                "SUBSCRIBE takes a single-table census statement".into(),
            ));
        }
        if !stmt.order_by.is_empty() || stmt.limit.is_some() {
            return Err(QueryError::Semantic(
                "SUBSCRIBE does not allow ORDER BY or LIMIT: notifications are \
                 per-focal row deltas, not an ordered result"
                    .into(),
            ));
        }
        let alias = stmt.tables[0].alias.as_str();
        validate_single_aggs(&stmt, alias)?;
        let mut aggs = Vec::new();
        for proj in &stmt.projections {
            match proj {
                Projection::Column(c) => {
                    if !c.is_id() {
                        return Err(QueryError::Semantic(format!(
                            "SUBSCRIBE projections must be `ID` or census aggregates; \
                             found column `{}`",
                            c.column
                        )));
                    }
                }
                Projection::Agg(agg) => {
                    let pattern = self.catalog.require(&agg.pattern)?;
                    if let Some(sp) = &agg.subpattern {
                        if pattern.subpattern(sp).is_none() {
                            return Err(QueryError::Semantic(format!(
                                "pattern `{}` has no subpattern `{sp}`",
                                agg.pattern
                            )));
                        }
                    }
                    let NeighborhoodAst::Subgraph { k, .. } = &agg.neighborhood else {
                        unreachable!("validate_single_aggs admits only SUBGRAPH");
                    };
                    aggs.push(crate::subscribe::SubscriptionAgg {
                        column: projection_name(proj),
                        pattern: pattern.clone(),
                        pattern_dsl: ego_pattern::to_dsl(pattern),
                        k: *k,
                        subpattern: agg.subpattern.clone(),
                    });
                }
            }
        }
        if aggs.is_empty() {
            return Err(QueryError::Semantic(
                "SUBSCRIBE needs at least one census aggregate".into(),
            ));
        }
        let focal = self.compute_focal(&stmt, alias)?;
        Ok(crate::subscribe::SubscriptionSpec {
            statement: body.trim().to_string(),
            focal,
            aggs,
        })
    }

    // --- pairwise queries ---

    fn execute_pair(&self, stmt: &SelectStmt) -> Result<Table, QueryError> {
        let a1 = stmt.tables[0].alias.as_str();
        let a2 = stmt.tables[1].alias.as_str();
        if a1.eq_ignore_ascii_case(a2) {
            return Err(QueryError::Semantic(format!(
                "duplicate table alias `{a1}`"
            )));
        }
        let g = self.graph();

        // Enumerate ordered pairs of distinct nodes passing WHERE.
        // (Self-pairs are excluded: a pairwise neighborhood of a node with
        // itself is just SUBGRAPH and should be queried as such.)
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ordered: Vec<(NodeId, NodeId)> = Vec::new();
        for x in g.node_ids() {
            for y in g.node_ids() {
                if x == y {
                    continue;
                }
                let keep = match &stmt.where_clause {
                    None => true,
                    Some(expr) => {
                        let ctx = RowContext {
                            graph: g,
                            bindings: vec![(a1, x), (a2, y)],
                        };
                        eval_predicate(expr, &ctx, &mut rng)?
                    }
                };
                if keep {
                    ordered.push((x, y));
                }
            }
        }

        let selector = PairSelector::Pairs(ordered.clone());
        let mut agg_results: Vec<PairCounts> = Vec::new();
        for proj in &stmt.projections {
            if let Projection::Agg(agg) = proj {
                agg_results.push(self.run_pair_agg(agg, a1, a2, &selector)?);
            }
        }

        let columns = stmt.projections.iter().map(projection_name).collect();
        let mut table = Table::new(columns);
        for &(x, y) in &ordered {
            let mut row = Vec::with_capacity(stmt.projections.len());
            let mut agg_i = 0;
            for proj in &stmt.projections {
                match proj {
                    Projection::Column(c) => {
                        let ctx = RowContext {
                            graph: g,
                            bindings: vec![(a1, x), (a2, y)],
                        };
                        row.push(ctx.column_value(c)?);
                    }
                    Projection::Agg(_) => {
                        row.push(Value::Int(agg_results[agg_i].get(x, y) as i64));
                        agg_i += 1;
                    }
                }
            }
            table.push_row(row);
        }
        apply_order_limit(&mut table, stmt);
        Ok(table)
    }

    fn run_pair_agg(
        &self,
        agg: &AggCall,
        a1: &str,
        a2: &str,
        selector: &PairSelector,
    ) -> Result<PairCounts, QueryError> {
        let pattern = self.catalog.require(&agg.pattern)?;
        let mut spec = match &agg.neighborhood {
            NeighborhoodAst::Intersection { n1, n2, k } => {
                check_pair_columns(n1, n2, a1, a2)?;
                PairCensusSpec::intersection(pattern, *k, selector.clone())
            }
            NeighborhoodAst::Union { n1, n2, k } => {
                check_pair_columns(n1, n2, a1, a2)?;
                PairCensusSpec::union(pattern, *k, selector.clone())
            }
            NeighborhoodAst::Subgraph { .. } => {
                return Err(QueryError::Semantic(
                    "SUBGRAPH(ID, k) is ambiguous in a two-table query; \
                     use SUBGRAPH-INTERSECTION or SUBGRAPH-UNION"
                        .into(),
                ))
            }
        };
        if let Some(sp) = &agg.subpattern {
            spec = spec.with_subpattern(sp);
        }
        Ok(run_pair_census_exec(
            self.graph(),
            &spec,
            self.algorithm,
            &self.pt_config,
            &self.exec,
        )?)
    }
}

/// One validated single-table census aggregate, ready for batching.
struct BatchAgg<'e> {
    pattern: &'e Pattern,
    k: u32,
    subpattern: Option<String>,
    focal: Vec<NodeId>,
}

/// Validate every aggregate of a single-table statement: the
/// neighborhood must be `SUBGRAPH(ID, k)` over this table's alias. (The
/// logical planner skips malformed aggregates rather than erroring, so
/// the executor still owns these messages.)
fn validate_single_aggs(stmt: &SelectStmt, alias: &str) -> Result<(), QueryError> {
    for proj in &stmt.projections {
        let Projection::Agg(agg) = proj else { continue };
        let NeighborhoodAst::Subgraph { node, .. } = &agg.neighborhood else {
            return Err(QueryError::Semantic(
                "SUBGRAPH-INTERSECTION/UNION require two `nodes` tables".into(),
            ));
        };
        check_id_column(node, &[alias])?;
    }
    Ok(())
}

/// One algorithm to serve every statement in a script: with the engine
/// forced, that; otherwise the [`CONSIDERED`] algorithm every
/// statement's choice ranked (i.e. it can serve all of them) with the
/// lowest summed cost. Ties break in `CONSIDERED` order, matching the
/// per-statement ranking.
fn union_algorithm(choices: &[&crate::plan::AlgoChoice], engine: Algorithm) -> Algorithm {
    if engine != Algorithm::Auto || choices.is_empty() {
        return engine;
    }
    let mut best: Option<(Algorithm, f64)> = None;
    for a in CONSIDERED {
        let mut total = 0.0;
        let mut ok = true;
        for choice in choices {
            match choice.considered.iter().find(|(c, _)| *c == a) {
                Some((_, cost)) => total += cost,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && best.is_none_or(|(_, c)| total < c) {
            best = Some((a, total));
        }
    }
    // ND-PVOT serves everything, so some algorithm always qualifies.
    best.map_or(Algorithm::NdPivot, |(a, _)| a)
}

/// Split a script into statements on `;`, respecting single-quoted
/// strings. Empty statements (trailing `;`, blank lines) are dropped.
pub(crate) fn split_statements(sql: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for ch in sql.chars() {
        match ch {
            '\'' => {
                in_quote = !in_quote;
                current.push(ch);
            }
            ';' if !in_quote => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

/// Apply ORDER BY (stable, multi-key) and LIMIT to a result table.
fn apply_order_limit(table: &mut Table, stmt: &SelectStmt) {
    // Sort by keys right-to-left with a stable sort = multi-key ordering.
    for key in stmt.order_by.iter().rev() {
        let col = key.ordinal - 1;
        match key.dir {
            SortDir::Desc => table.sort_desc_by(col),
            SortDir::Asc => table.sort_asc_by(col),
        }
    }
    if let Some(n) = stmt.limit {
        table.truncate(n);
    }
}

fn check_id_column(col: &ColumnRef, aliases: &[&str]) -> Result<(), QueryError> {
    if !col.is_id() {
        return Err(QueryError::Semantic(format!(
            "neighborhood argument must be an ID column, found `{}`",
            col.column
        )));
    }
    if let Some(t) = &col.table {
        if !aliases.iter().any(|a| a.eq_ignore_ascii_case(t)) {
            return Err(QueryError::Semantic(format!("unknown table alias `{t}`")));
        }
    }
    Ok(())
}

fn check_pair_columns(
    n1: &ColumnRef,
    n2: &ColumnRef,
    a1: &str,
    a2: &str,
) -> Result<(), QueryError> {
    check_id_column(n1, &[a1, a2])?;
    check_id_column(n2, &[a1, a2])?;
    let t1 = n1.table.as_deref().unwrap_or(a1);
    let t2 = n2.table.as_deref().unwrap_or(a2);
    if t1.eq_ignore_ascii_case(t2) {
        return Err(QueryError::Semantic(
            "pairwise neighborhood must reference both table aliases".into(),
        ));
    }
    Ok(())
}

fn projection_name(p: &Projection) -> String {
    match p {
        Projection::Column(c) => match &c.table {
            Some(t) => format!("{t}.{}", c.column),
            None => c.column.clone(),
        },
        Projection::Agg(a) => {
            let nb = match &a.neighborhood {
                NeighborhoodAst::Subgraph { node, k } => {
                    format!("SUBGRAPH({}, {k})", col_name(node))
                }
                NeighborhoodAst::Intersection { n1, n2, k } => format!(
                    "SUBGRAPH-INTERSECTION({}, {}, {k})",
                    col_name(n1),
                    col_name(n2)
                ),
                NeighborhoodAst::Union { n1, n2, k } => {
                    format!("SUBGRAPH-UNION({}, {}, {k})", col_name(n1), col_name(n2))
                }
            };
            match &a.subpattern {
                Some(sp) => format!("COUNTSP({sp}, {}, {nb})", a.pattern),
                None => format!("COUNTP({}, {nb})", a.pattern),
            }
        }
    }
}

fn col_name(c: &ColumnRef) -> String {
    match &c.table {
        Some(t) => format!("{t}.{}", c.column),
        None => c.column.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    /// Two triangles sharing node 2, chain 4-5-6.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        for i in 0..7u32 {
            // age attribute = 10 * id, for WHERE tests.
            // (builder consumed later; set here)
            b.set_node_attr(NodeId(i), "age", (10 * i) as i64);
        }
        b.build()
    }

    fn engine(g: &Graph) -> QueryEngine<'_> {
        let mut e = QueryEngine::new(g);
        e.catalog_mut()
            .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
            .unwrap();
        e.catalog_mut().define("PATTERN node1 { ?A; }").unwrap();
        e
    }

    #[test]
    fn simple_census_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
            .unwrap();
        assert_eq!(t.num_rows(), 7);
        assert_eq!(t.rows()[2][1], Value::Int(2));
        assert_eq!(t.rows()[6][1], Value::Int(0));
        assert_eq!(t.columns()[1], "COUNTP(tri, SUBGRAPH(ID, 1))");
    }

    #[test]
    fn where_filters_rows() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE age >= 40")
            .unwrap();
        assert_eq!(t.num_rows(), 3); // nodes 4, 5, 6
        assert_eq!(t.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn attribute_projection() {
        let g = fixture();
        let e = engine(&g);
        let t = e.execute("SELECT ID, age FROM nodes WHERE ID < 2").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[1][1], Value::Int(10));
    }

    #[test]
    fn multiple_aggregates() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)), COUNTP(node1, SUBGRAPH(ID, 1)) \
                 FROM nodes WHERE ID = 2",
            )
            .unwrap();
        assert_eq!(t.rows()[0][1], Value::Int(2));
        // 1-hop ball of node 2 = {0,1,2,3,4}: 5 single-node matches.
        assert_eq!(t.rows()[0][2], Value::Int(5));
    }

    #[test]
    fn pairwise_intersection_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTP(node1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID AND n2.ID < 3",
            )
            .unwrap();
        // pairs: (0,1), (0,2), (1,2)
        assert_eq!(t.num_rows(), 3);
        // N1(0)={0,1,2}, N1(1)={0,1,2}: intersection 3 nodes.
        assert_eq!(t.rows()[0][2], Value::Int(3));
    }

    #[test]
    fn rnd_selectivity_is_seeded() {
        let g = fixture();
        let mut e = engine(&g);
        e.set_seed(7);
        let t1 = e.execute("SELECT ID FROM nodes WHERE RND() < 0.5").unwrap();
        let t2 = e.execute("SELECT ID FROM nodes WHERE RND() < 0.5").unwrap();
        assert_eq!(t1, t2);
        assert!(t1.num_rows() < 7); // almost surely with this seed
    }

    #[test]
    fn countsp_query() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let mut e = QueryEngine::new(&g);
        e.catalog_mut()
            .define("PATTERN triad { ?A->?B; ?B->?C; ?A!->?C; SUBPATTERN mid {?B;} }")
            .unwrap();
        let t = e
            .execute("SELECT ID, COUNTSP(mid, triad, SUBGRAPH(ID, 0)) FROM nodes")
            .unwrap();
        assert_eq!(t.rows()[1][1], Value::Int(1));
        assert_eq!(t.rows()[0][1], Value::Int(0));
    }

    #[test]
    fn semantic_errors() {
        let g = fixture();
        let e = engine(&g);
        assert!(matches!(
            e.execute("SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes"),
            Err(QueryError::UnknownPattern(_))
        ));
        assert!(e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(age, 1)) FROM nodes")
            .is_err());
        assert!(e
            .execute(
                "SELECT n1.ID, COUNTP(tri, SUBGRAPH-INTERSECTION(n1.ID, n1.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2"
            )
            .is_err());
        assert!(e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes AS a, nodes AS a")
            .is_err());
    }

    #[test]
    fn algorithms_agree_through_sql() {
        let g = fixture();
        let mut e = engine(&g);
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes";
        let mut results = Vec::new();
        for algo in [
            Algorithm::NdBaseline,
            Algorithm::NdPivot,
            Algorithm::NdDiff,
            Algorithm::PtBaseline,
            Algorithm::PtOpt,
            Algorithm::Auto,
        ] {
            e.set_algorithm(algo);
            results.push(e.execute(sql).unwrap());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = fixture();
        let mut e = engine(&g);
        let single = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes";
        let pair = "SELECT n1.ID, n2.ID, \
                    COUNTP(node1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                    FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID";
        e.set_threads(1);
        let base_single = e.execute(single).unwrap();
        let base_pair = e.execute(pair).unwrap();
        for threads in [2, 4, 0] {
            e.set_threads(threads);
            assert_eq!(e.execute(single).unwrap(), base_single, "threads={threads}");
            assert_eq!(e.execute(pair).unwrap(), base_pair, "threads={threads}");
        }
    }

    #[test]
    fn order_by_and_limit() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes                  ORDER BY 2 DESC LIMIT 3",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 3);
        // Node 2 (2 triangles) first; ties on 1 broken stably by prior
        // (id) order.
        assert_eq!(t.rows()[0][0], Value::Int(2));
        assert_eq!(t.rows()[0][1], Value::Int(2));
        let counts: Vec<i64> = t.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn order_by_multi_key_asc() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes                  ORDER BY 2 ASC, 1 DESC",
            )
            .unwrap();
        // Counts ascending; within equal counts, ids descending.
        let rows: Vec<(i64, i64)> = t
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        for w in rows.windows(2) {
            assert!(
                w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 > w[1].0),
                "bad order: {rows:?}"
            );
        }
    }

    #[test]
    fn order_by_errors() {
        let g = fixture();
        let e = engine(&g);
        assert!(e.execute("SELECT ID FROM nodes ORDER BY 0").is_err());
        assert!(e.execute("SELECT ID FROM nodes ORDER BY 5").is_err());
        assert!(e.execute("SELECT ID FROM nodes LIMIT x").is_err());
        // LIMIT 0 is legal and empty.
        let t = e.execute("SELECT ID FROM nodes LIMIT 0").unwrap();
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn pairwise_countsp_query() {
        let g = fixture();
        let mut e = QueryEngine::new(&g);
        e.catalog_mut()
            .define("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }")
            .unwrap();
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTSP(one, t, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 1",
            )
            .unwrap();
        // Common 1-hop neighborhood of 0 and 1 is {0,1,2}. Anchored
        // matches with ?A there: all three of triangle {0,1,2} plus
        // triangle {2,3,4} anchored at A=2 (its B/C images may lie
        // outside the neighborhood — that is the point of COUNTSP).
        assert_eq!(t.rows()[0][2], Value::Int(4));
    }

    #[test]
    fn pairwise_union_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTP(node1, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 6",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        // N1(0) = {0,1,2}, N1(6) = {5,6}: union has 5 nodes.
        assert_eq!(t.rows()[0][2], Value::Int(5));
    }

    #[test]
    fn pairwise_order_by_count() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTP(node1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID AND n2.ID < 4 \
                 ORDER BY 3 DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        let c0 = t.rows()[0][2].as_int().unwrap();
        let c1 = t.rows()[1][2].as_int().unwrap();
        assert!(c0 >= c1);
    }

    /// EXPLAIN rows by (trimmed) node name.
    fn explain_rows(t: &Table, name: &str) -> Vec<Vec<Value>> {
        t.rows()
            .iter()
            .filter(|r| r[0].to_string().trim_start() == name)
            .cloned()
            .collect()
    }

    #[test]
    fn explain_describes_plan() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
            .unwrap();
        assert_eq!(t.columns(), ["node", "detail", "est_cost"]);
        // Tree shape: project at the root, scan at the leaf.
        assert_eq!(t.rows()[0][0], Value::Str("project".into()));
        let scan = explain_rows(&t, "scan");
        assert_eq!(scan.len(), 1);
        assert_eq!(scan[0][2], Value::Int(7));
        // The census row carries the decision, its basis, and a numeric
        // cost estimate.
        let census = explain_rows(&t, "census");
        assert_eq!(census.len(), 1);
        let detail = census[0][1].to_string();
        assert!(detail.contains("algo="), "{detail}");
        assert!(detail.contains("stats=heuristic"), "{detail}");
        assert!(matches!(census[0][2], Value::Float(c) if c.is_finite()));
        // The road not taken: at least two considered alternatives, each
        // with a numeric cost, exactly one marked chosen.
        let choices = explain_rows(&t, "choice");
        assert!(choices.len() >= 2, "choices: {choices:?}");
        assert!(choices.iter().all(|r| matches!(r[2], Value::Float(_))));
        let chosen: Vec<_> = choices
            .iter()
            .filter(|r| r[1].to_string().contains("(chosen)"))
            .collect();
        assert_eq!(chosen.len(), 1);
        // Costs come out cheapest-first, and the cheapest is the choice.
        let costs: Vec<f64> = choices
            .iter()
            .map(|r| match r[2] {
                Value::Float(c) => c,
                _ => unreachable!(),
            })
            .collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
        assert!(choices[0][1].to_string().contains("(chosen)"));
        // Aggregate detail: pattern shape, radius, match estimate
        // (labelled), candidate counts.
        let aggs = explain_rows(&t, "agg");
        assert_eq!(aggs.len(), 1);
        let agg = aggs[0][1].to_string();
        assert!(agg.contains("COUNTP(tri"), "{agg}");
        assert!(agg.contains("PATTERN tri"), "{agg}");
        assert!(agg.contains("3/3"), "{agg}");
        assert!(agg.contains("k=2"), "{agg}");
        assert!(agg.contains("matches=estimated:"), "{agg}");
        assert!(agg.contains("?A:"), "{agg}");
        // Kernel plan row.
        let setops = explain_rows(&t, "setops");
        assert_eq!(setops.len(), 1);
        assert!(setops[0][1].to_string().contains("kernel="));
        assert!(setops[0][1].to_string().contains("gallop_ratio:"));
        // EXPLAIN of a bad query errors like the query would.
        assert!(e
            .execute("EXPLAIN SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes")
            .is_err());
    }

    #[test]
    fn explain_renders_filter_shard_order_limit_nodes() {
        let g = fixture();
        let mut e = engine(&g);
        e.set_focal_shard(Some(crate::shard::ShardSpec::new(1, 2).unwrap()));
        let t = e
            .execute(
                "EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes \
                 WHERE age >= 0 ORDER BY 2 DESC LIMIT 3",
            )
            .unwrap();
        let names: Vec<String> = t
            .rows()
            .iter()
            .map(|r| r[0].to_string().trim_start().to_string())
            .collect();
        for expected in [
            "limit", "order", "project", "census", "shard", "filter", "scan",
        ] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected}: {names:?}"
            );
        }
        // Shard lands between census and filter: WHERE runs over every
        // node, the shard restriction afterwards.
        let shard_pos = names.iter().position(|n| n == "shard").unwrap();
        let filter_pos = names.iter().position(|n| n == "filter").unwrap();
        let census_pos = names.iter().position(|n| n == "census").unwrap();
        assert!(census_pos < shard_pos && shard_pos < filter_pos);
        // With a WHERE clause the focal set is unknown to EXPLAIN, so
        // count-cache probes must stay unknown (no cache attached here:
        // no cache rows at all).
        assert!(explain_rows(&t, "cache").is_empty());
    }

    #[test]
    fn explain_costs_separate_dense_from_sparse() {
        use ego_graph::{GraphBuilder, Label};
        // Dense clique: huge match list, every ball is the whole graph →
        // the ND side wins. Sparse path: few matches, selective balls →
        // the PT side wins.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(8, Label(0));
        for x in 0..8u32 {
            for y in (x + 1)..8 {
                b.add_edge(NodeId(x), NodeId(y));
            }
        }
        let dense = b.build();
        let mut b = GraphBuilder::undirected();
        b.add_nodes(30, Label(0));
        for x in 0..29u32 {
            b.add_edge(NodeId(x), NodeId(x + 1));
        }
        let sparse = b.build();
        let algo_of = |g: &Graph| {
            let e = engine(g);
            e.execute("ANALYZE").unwrap();
            let t = e
                .execute("EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
                .unwrap();
            let census = explain_rows(&t, "census");
            let detail = census[0][1].to_string();
            assert!(detail.contains("stats=analyzed"), "{detail}");
            detail
        };
        let dense_algo = algo_of(&dense);
        let sparse_algo = algo_of(&sparse);
        assert!(dense_algo.contains("algo=Nd"), "{dense_algo}");
        assert!(sparse_algo.contains("algo=Pt"), "{sparse_algo}");
    }

    #[test]
    fn execute_script_matches_individual_statements() {
        let g = fixture();
        let e = engine(&g);
        let script = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes; \
                      SELECT ID, COUNTP(node1, SUBGRAPH(ID, 2)) FROM nodes WHERE age >= 40; \
                      EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes;";
        let tables = e.execute_script(script).unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(
            tables[0],
            e.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
                .unwrap()
        );
        assert_eq!(
            tables[1],
            e.execute("SELECT ID, COUNTP(node1, SUBGRAPH(ID, 2)) FROM nodes WHERE age >= 40")
                .unwrap()
        );
        assert_eq!(
            tables[2],
            e.execute("EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
                .unwrap()
        );
    }

    #[test]
    fn execute_script_propagates_errors() {
        let g = fixture();
        let e = engine(&g);
        assert!(e
            .execute_script(
                "SELECT ID FROM nodes; SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes"
            )
            .is_err());
    }

    #[test]
    fn census_cache_reuses_counts_and_matches() {
        use crate::census_cache::CensusCache;
        let g = fixture();
        let mut e = engine(&g);
        let cache = Arc::new(CensusCache::new(16));
        e.set_census_cache(cache.clone());
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        let first = e.execute(sql).unwrap();
        let s1 = cache.stats();
        assert_eq!(s1.count_hits, 0);
        assert_eq!(s1.count_entries, 1);
        assert_eq!(s1.match_entries, 1);
        // Same statement again: finished counts served from cache.
        let second = e.execute(sql).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.stats().count_hits, 1);
        // Different radius, same pattern: count miss but match-list hit.
        e.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
            .unwrap();
        let s3 = cache.stats();
        assert_eq!(s3.match_hits, 1);
        assert_eq!(s3.count_entries, 2);
        // Cached results are bit-identical to an uncached engine's.
        let plain = engine(&g);
        assert_eq!(second, plain.execute(sql).unwrap());
    }

    #[test]
    fn swap_graph_invalidates_census_cache_on_fingerprint_change() {
        use crate::census_cache::CensusCache;
        let g = Arc::new(fixture());
        let mut e = QueryEngine::shared(g.clone());
        e.catalog_mut()
            .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
            .unwrap();
        let cache = Arc::new(CensusCache::new(16));
        e.set_census_cache(cache.clone());
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        e.execute(sql).unwrap();
        assert_eq!(cache.stats().count_entries, 1);
        // Swapping in the same graph (same fingerprint) is a no-op.
        assert!(!e.swap_graph(g.clone()));
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().count_entries, 1);
        // A genuinely different graph invalidates the cache.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
            (4, 6), // closes the 4-5-6 triangle
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        assert!(e.swap_graph(Arc::new(b.build())));
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.count_entries, 0);
        assert_eq!(s.match_entries, 0);
        // The engine now queries the new graph.
        let t = e.execute(sql).unwrap();
        assert_eq!(t.rows()[5][1], Value::Int(1));
        assert_eq!(t.rows()[2][1], Value::Int(2));
    }

    #[test]
    fn census_cache_respects_where_focal_sets() {
        use crate::census_cache::CensusCache;
        let g = fixture();
        let mut e = engine(&g);
        e.set_census_cache(Arc::new(CensusCache::new(16)));
        let all = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
            .unwrap();
        // Different focal set must NOT hit the cached full-graph counts.
        let filtered = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE age < 30")
            .unwrap();
        assert_eq!(filtered.num_rows(), 3);
        assert_eq!(all.rows()[2][1], filtered.rows()[2][1]);
    }

    #[test]
    fn explain_shows_batch_plan_for_multi_agg() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)), \
                 COUNTP(node1, SUBGRAPH(ID, 1)) FROM nodes",
            )
            .unwrap();
        // 2 aggregate rows + at least one batch-stage row.
        let aggs = explain_rows(&t, "agg");
        assert_eq!(aggs.len(), 2);
        let stages = explain_rows(&t, "stage");
        assert!(!stages.is_empty(), "rows: {:?}", t.rows());
        // Auto on this fixture plans as ND: one shared sweep at the max
        // radius covering both patterns.
        let detail = stages[0][1].to_string();
        assert!(detail.contains("nd-sweep"), "{detail}");
        assert!(detail.contains("tri"), "{detail}");
        assert!(detail.contains("node1"), "{detail}");
        assert!(detail.contains("@k=2"), "{detail}");
    }

    #[test]
    fn explain_shows_cache_reuse_when_cache_attached() {
        use crate::census_cache::CensusCache;
        let g = fixture();
        let mut e = engine(&g);
        e.set_census_cache(Arc::new(CensusCache::new(16)));
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        let before = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        let cold: Vec<String> = explain_rows(&before, "cache")
            .iter()
            .map(|r| r[1].to_string())
            .collect();
        assert_eq!(cold, vec!["tri: matches=miss counts=miss"]);
        e.execute(sql).unwrap();
        let after = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        let warm: Vec<String> = explain_rows(&after, "cache")
            .iter()
            .map(|r| r[1].to_string())
            .collect();
        assert_eq!(warm, vec!["tri: matches=hit counts=hit"]);
        // A warm cached match list also upgrades the aggregate row's
        // match term from an estimate to the exact cached length.
        let aggs = explain_rows(&after, "agg");
        assert!(
            aggs[0][1].to_string().contains("matches=cached:"),
            "{:?}",
            aggs[0][1]
        );
    }

    #[test]
    fn analyze_statement_and_stale_detection() {
        let g = fixture();
        let mut e = engine(&g);
        let explain_sql = "EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        fn basis(e: &QueryEngine<'_>, sql: &str) -> String {
            let t = e.execute(sql).unwrap();
            explain_rows(&t, "census")[0][1].to_string()
        }
        assert!(basis(&e, explain_sql).contains("stats=heuristic"));
        // ANALYZE is a statement (case-insensitive), returns the profile.
        let t = e.execute("analyze").unwrap();
        assert_eq!(t.columns(), ["statistic", "value"]);
        assert!(t
            .rows()
            .iter()
            .any(|r| r[0] == Value::Str("fingerprint".into())));
        assert!(e.graph_stats().is_some());
        // ...and takes no arguments.
        assert!(matches!(
            e.execute("ANALYZE nodes"),
            Err(QueryError::Semantic(_))
        ));
        assert!(basis(&e, explain_sql).contains("stats=analyzed"));
        // A different graph invalidates the snapshot: the planner reports
        // stale and falls back to the heuristic basis.
        let mut b = GraphBuilder::undirected();
        b.add_nodes(4, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        e.swap_graph(Arc::new(b.build()));
        assert!(basis(&e, explain_sql).contains("stats=stale"));
    }

    #[test]
    fn analyze_persists_sidecar_adopted_by_open() {
        let dir = std::env::temp_dir().join(format!("ego-query-sidecar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixture.eg");
        ego_graph::io::save_path(&fixture(), &path).unwrap();
        {
            let e = QueryEngine::open(&path).unwrap();
            assert!(e.graph_stats().is_none());
            e.execute("ANALYZE").unwrap();
        }
        // A fresh engine on the same file adopts the sidecar: the planner
        // starts out analyzed without re-running ANALYZE.
        let mut e = QueryEngine::open(&path).unwrap();
        let adopted = e.graph_stats().expect("sidecar adopted on open");
        assert_eq!(adopted.fingerprint, e.graph().fingerprint());
        e.catalog_mut()
            .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
            .unwrap();
        let t = e
            .execute("EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
            .unwrap();
        assert!(explain_rows(&t, "census")[0][1]
            .to_string()
            .contains("stats=analyzed"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn planner_counters_tally_plans_and_basis() {
        use std::collections::HashMap;
        let g = fixture();
        let mut e = engine(&g);
        let counters = Arc::new(PlannerCounters::default());
        e.set_planner_counters(Arc::clone(&counters));
        e.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
            .unwrap();
        let snap: HashMap<_, _> = counters.snapshot().into_iter().collect();
        assert_eq!(snap["planner_plans_built"], 1);
        assert_eq!(snap["planner_heuristic_fallbacks"], 1);
        assert_eq!(snap["planner_cost_model_hits"], 0);
        assert!(snap["planner_passes_fired"] >= 1);
        e.execute("ANALYZE").unwrap();
        e.execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
            .unwrap();
        let snap: HashMap<_, _> = counters.snapshot().into_iter().collect();
        assert_eq!(snap["planner_plans_built"], 2);
        assert_eq!(snap["planner_cost_model_hits"], 1);
    }

    /// Plan and run `sql` under an explicit pass list (the engine's
    /// normal single-statement path, minus the pass pipeline knob).
    fn run_with_passes(
        e: &QueryEngine<'_>,
        sql: &str,
        passes: &[(&str, crate::optimizer::Pass)],
    ) -> Table {
        let stmt = parse_query(sql).unwrap();
        let alias = stmt.tables[0].alias.clone();
        let focal = e.compute_focal(&stmt, &alias).unwrap();
        validate_single_aggs(&stmt, &alias).unwrap();
        let plan = e.plan_single(&stmt, Some(&focal), passes).unwrap();
        e.run_plan(&plan, &focal).unwrap()
    }

    #[test]
    fn each_optimizer_pass_is_a_semantic_noop() {
        use crate::census_cache::CensusCache;
        let g = fixture();
        let mut e = engine(&g);
        e.set_census_cache(Arc::new(CensusCache::new(16)));
        e.set_focal_shard(Some(crate::shard::ShardSpec::new(0, 2).unwrap()));
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)), COUNTP(node1, SUBGRAPH(ID, 1)) \
                   FROM nodes WHERE age >= 10";
        let baseline = run_with_passes(&e, sql, OPTIMIZERS);
        // Warm the cache so cache-substitution has real hits to inject.
        e.execute(sql).unwrap();
        for (i, dropped) in OPTIMIZERS.iter().enumerate() {
            let subset: Vec<_> = OPTIMIZERS
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, p)| *p)
                .collect();
            let t = run_with_passes(&e, sql, &subset);
            assert_eq!(t, baseline, "dropping pass {} changed results", dropped.0);
        }
        // The bare logical plan (no passes at all) still computes the
        // same table: passes annotate, the executor computes.
        assert_eq!(run_with_passes(&e, sql, &[]), baseline);
    }

    #[test]
    fn split_statements_respects_quotes() {
        let parts =
            split_statements("SELECT ID FROM nodes WHERE name = 'a;b'; SELECT ID FROM nodes;");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("'a;b'"));
    }

    #[test]
    fn multi_agg_batch_matches_sequential_for_all_algorithms() {
        let g = fixture();
        let mut e = engine(&g);
        let multi = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)), COUNTP(node1, SUBGRAPH(ID, 1)) \
                     FROM nodes";
        for algo in [
            Algorithm::NdBaseline,
            Algorithm::NdPivot,
            Algorithm::NdDiff,
            Algorithm::PtBaseline,
            Algorithm::PtOpt,
            Algorithm::Auto,
        ] {
            e.set_algorithm(algo);
            let batched = e.execute(multi).unwrap();
            let a = e
                .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
                .unwrap();
            let b = e
                .execute("SELECT ID, COUNTP(node1, SUBGRAPH(ID, 1)) FROM nodes")
                .unwrap();
            for (i, row) in batched.rows().iter().enumerate() {
                assert_eq!(row[1], a.rows()[i][1], "{algo:?}");
                assert_eq!(row[2], b.rows()[i][1], "{algo:?}");
            }
        }
    }

    #[test]
    fn csv_export_of_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 3")
            .unwrap();
        let csv = t.to_csv();
        assert!(csv.starts_with("ID,"));
        assert_eq!(csv.lines().count(), 4);
    }

    // --- materialized views ---

    fn view_engine(g: &Graph) -> QueryEngine<'_> {
        let mut e = engine(g);
        e.set_views(Arc::new(ViewRegistry::new(DEFAULT_VIEW_BUDGET)));
        e
    }

    #[test]
    fn materialize_serves_identical_rows_as_pure_probe() {
        let g = fixture();
        let e = view_engine(&g);
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        let direct = e.execute(sql).unwrap();
        let ack = e.execute("MATERIALIZE tri RADIUS 1").unwrap();
        assert!(ack
            .rows()
            .iter()
            .any(|r| r[1] == Value::Str("materialized".into())));
        // The plan rewrites to a view probe with `view:` provenance and
        // zero estimated cost.
        let ex = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        let probe = explain_rows(&ex, "view-probe");
        assert_eq!(probe.len(), 1, "{ex:?}");
        assert_eq!(probe[0][2], Value::Float(0.0));
        let view = explain_rows(&ex, "view");
        assert!(view[0][1].to_string().starts_with("view: "), "{view:?}");
        assert!(explain_rows(&ex, "census").is_empty(), "{ex:?}");
        // Serving is a pure gather: a fresh census cache attached after
        // materialization sees zero traffic, yet rows are identical —
        // including over a WHERE-filtered focal subset.
        let served = e.execute(sql).unwrap();
        assert_eq!(served.rows(), direct.rows());
        let subset = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE age >= 40";
        let direct_subset = {
            let e2 = engine(&g);
            e2.execute(subset).unwrap()
        };
        assert_eq!(e.execute(subset).unwrap().rows(), direct_subset.rows());
        let stats = e.views().unwrap().stats();
        assert!(stats.hits >= 2, "{stats:?}");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn view_probe_bypasses_census_machinery() {
        let g = fixture();
        let mut e = view_engine(&g);
        let cache = Arc::new(CensusCache::new(64));
        e.set_census_cache(Arc::clone(&cache));
        e.execute("MATERIALIZE tri RADIUS 1 MATCHES").unwrap();
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        e.execute(sql).unwrap();
        // No count/match lookups: the statement never reached
        // run_batched.
        let cs = cache.stats();
        assert_eq!(cs.count_hits + cs.count_misses, 0, "{cs:?}");
        assert_eq!(cs.match_hits + cs.match_misses, 0, "{cs:?}");
        // The pinned match list shows in EXPLAIN provenance.
        let ex = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        let view = explain_rows(&ex, "view");
        assert!(view[0][1].to_string().contains("matches=2"), "{view:?}");
    }

    #[test]
    fn drop_view_restores_census_execution() {
        let g = fixture();
        let e = view_engine(&g);
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        let direct = e.execute(sql).unwrap();
        e.execute("MATERIALIZE tri RADIUS 1").unwrap();
        let ack = e.execute("DROP VIEW tri RADIUS 1").unwrap();
        assert!(ack
            .rows()
            .iter()
            .any(|r| r[1] == Value::Str("dropped".into())));
        let ex = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        assert!(explain_rows(&ex, "view-probe").is_empty());
        assert_eq!(explain_rows(&ex, "census").len(), 1);
        assert_eq!(e.execute(sql).unwrap().rows(), direct.rows());
        // Dropping again errors with a clear message.
        let err = e.execute("DROP VIEW tri RADIUS 1").unwrap_err();
        assert!(err.to_string().contains("no materialized view"), "{err}");
    }

    #[test]
    fn view_matching_is_exact_on_radius_and_subpattern() {
        let g = fixture();
        let e = view_engine(&g);
        e.execute("MATERIALIZE tri RADIUS 1").unwrap();
        // Different radius: not substituted.
        let ex = e
            .execute("EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
            .unwrap();
        assert!(explain_rows(&ex, "view-probe").is_empty());
        // COUNTSP over a COUNTP view: not substituted (and the statement
        // still errors on the unknown subpattern exactly as before).
        assert!(e
            .execute("SELECT ID, COUNTSP(hub, tri, SUBGRAPH(ID, 1)) FROM nodes")
            .is_err());
        // A multi-aggregate statement with one unservable job keeps the
        // whole census.
        let ex = e
            .execute(
                "EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)), \
                 COUNTP(node1, SUBGRAPH(ID, 1)) FROM nodes",
            )
            .unwrap();
        assert!(explain_rows(&ex, "view-probe").is_empty());
        assert_eq!(explain_rows(&ex, "census").len(), 1);
    }

    #[test]
    fn materialize_validates_inputs() {
        let g = fixture();
        let e = view_engine(&g);
        assert!(e.execute("MATERIALIZE nosuch RADIUS 1").is_err());
        assert!(e
            .execute("MATERIALIZE tri RADIUS 1 SUBPATTERN nosuch")
            .is_err());
        // Without a registry, view statements are rejected cleanly.
        let bare = engine(&g);
        let err = bare.execute("MATERIALIZE tri RADIUS 1").unwrap_err();
        assert!(err.to_string().contains("no view registry"), "{err}");
        assert!(bare.execute("DROP VIEW tri RADIUS 1").is_err());
    }

    #[test]
    fn script_mixes_materialize_and_view_served_statements() {
        let g = fixture();
        let e = view_engine(&g);
        e.execute("MATERIALIZE tri RADIUS 1").unwrap();
        let tables = e
            .execute_script(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes; \
                 SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 3; \
                 DROP VIEW tri RADIUS 1;",
            )
            .unwrap();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].num_rows(), 7);
        assert_eq!(tables[1].num_rows(), 3);
        assert_eq!(tables[0].rows()[2][1], Value::Int(2));
        assert_eq!(e.views().unwrap().stats().entries, 0);
    }

    #[test]
    fn sharded_views_compose_like_scatter() {
        let g = fixture();
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        let whole = engine(&g).execute(sql).unwrap();
        let mut concat: Vec<Vec<Value>> = Vec::new();
        for i in 0..2 {
            let mut e = view_engine(&g);
            e.set_focal_shard(Some(crate::shard::ShardSpec::new(i, 2).unwrap()));
            e.execute("MATERIALIZE tri RADIUS 1").unwrap();
            let ex = e.execute(&format!("EXPLAIN {sql}")).unwrap();
            assert_eq!(explain_rows(&ex, "view-probe").len(), 1, "shard {i}");
            let t = e.execute(sql).unwrap();
            concat.extend(t.rows().iter().cloned());
        }
        assert_eq!(concat, whole.rows());
        // A whole-coverage engine never probes a shard-covered view.
        let mut e = view_engine(&g);
        e.set_focal_shard(Some(crate::shard::ShardSpec::new(0, 2).unwrap()));
        e.execute("MATERIALIZE tri RADIUS 1").unwrap();
        e.set_focal_shard(None);
        let ex = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        assert!(explain_rows(&ex, "view-probe").is_empty());
    }

    #[test]
    fn open_adopts_views_sidecar() {
        let dir = std::env::temp_dir().join(format!("egoq-views-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.graph");
        ego_graph::io::save_path(&fixture(), &path).unwrap();
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes";
        let define = "PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }";
        let direct = {
            let mut e = QueryEngine::open(&path).unwrap();
            e.catalog_mut().define(define).unwrap();
            e.execute("MATERIALIZE tri RADIUS 1 MATCHES").unwrap();
            e.execute(sql).unwrap()
        };
        // A fresh engine over the same file adopts the sidecar: warm
        // views, same rows, view-probe plan.
        let mut e = QueryEngine::open(&path).unwrap();
        e.catalog_mut().define(define).unwrap();
        let stats = e.views().unwrap().stats();
        assert_eq!(stats.entries, 1, "{stats:?}");
        assert_eq!(stats.sidecar_loads, 1);
        let ex = e.execute(&format!("EXPLAIN {sql}")).unwrap();
        assert_eq!(explain_rows(&ex, "view-probe").len(), 1);
        assert_eq!(e.execute(sql).unwrap().rows(), direct.rows());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
