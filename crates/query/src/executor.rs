//! Query planning and execution.

use crate::ast::{AggCall, ColumnRef, NeighborhoodAst, Projection, SelectStmt, SortDir};
use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::expr::{eval_predicate, RowContext};
use crate::parser::parse_query;
use crate::table::Table;
use crate::value::Value;
use ego_census::{
    run_census_exec, run_pair_census_exec, Algorithm, CensusSpec, CountVector, ExecConfig,
    FocalNodes, PairCensusSpec, PairCounts, PairSelector, PtConfig,
};
use ego_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Where an engine's graph lives: borrowed from the caller (the
/// original in-process API) or shared behind an [`Arc`] (server
/// sessions on many threads over one loaded graph).
enum GraphSource<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

impl GraphSource<'_> {
    #[inline]
    fn get(&self) -> &Graph {
        match self {
            GraphSource::Borrowed(g) => g,
            GraphSource::Shared(g) => g,
        }
    }
}

/// Executes census SQL against one graph.
///
/// The engine owns a [`Catalog`] of named patterns, an [`Algorithm`]
/// choice (default [`Algorithm::Auto`]), pattern-driven tuning, an
/// [`ExecConfig`] (default: all available hardware threads), and the
/// RNG seed that makes `RND()` deterministic across runs.
///
/// Engines either borrow their graph ([`QueryEngine::new`]) or share an
/// [`Arc`]-owned one ([`QueryEngine::shared`]); the latter has a
/// `'static` lifetime, so per-connection sessions on different threads
/// can each hold an engine over one loaded graph without re-parsing it
/// or resorting to `unsafe`.
pub struct QueryEngine<'g> {
    graph: GraphSource<'g>,
    catalog: Catalog,
    algorithm: Algorithm,
    pt_config: PtConfig,
    exec: ExecConfig,
    seed: u64,
}

impl<'g> QueryEngine<'g> {
    /// Engine with an empty catalog and default settings.
    pub fn new(graph: &'g Graph) -> Self {
        Self::from_source(GraphSource::Borrowed(graph))
    }

    /// Engine preloaded with the paper's built-in patterns.
    pub fn with_builtins(graph: &'g Graph) -> Self {
        let mut e = Self::new(graph);
        e.catalog = Catalog::with_builtins();
        e
    }

    /// Engine over a shared, `Arc`-owned graph. The resulting engine is
    /// `'static`: it can move into a connection-handler thread while
    /// sibling sessions share the same graph.
    pub fn shared(graph: Arc<Graph>) -> QueryEngine<'static> {
        QueryEngine::from_source(GraphSource::Shared(graph))
    }

    fn from_source(graph: GraphSource<'g>) -> Self {
        QueryEngine {
            graph,
            catalog: Catalog::new(),
            algorithm: Algorithm::Auto,
            pt_config: PtConfig::default(),
            exec: ExecConfig::auto(),
            seed: 0xC0FFEE,
        }
    }

    /// The graph this engine executes against.
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// Replace the engine's catalog (e.g. with a session catalog layered
    /// over a shared base; see [`Catalog::layered`]).
    pub fn set_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
    }

    /// Mutable access to the pattern catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The pattern catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Force a specific census algorithm (default: `Auto`).
    pub fn set_algorithm(&mut self, a: Algorithm) {
        self.algorithm = a;
    }

    /// Tune the pattern-driven algorithms.
    pub fn set_pt_config(&mut self, c: PtConfig) {
        self.pt_config = c;
    }

    /// Set the worker thread count (`0` = all available hardware threads,
    /// the default). Results are identical for every thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.exec = ExecConfig::with_threads(threads);
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec
    }

    /// Seed for `RND()` (deterministic per execution).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Parse and execute a statement. `EXPLAIN SELECT ...` returns the
    /// plan description instead of results.
    pub fn execute(&self, sql: &str) -> Result<Table, QueryError> {
        let trimmed = sql.trim_start();
        if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
            return self.explain(&trimmed[7..]);
        }
        let stmt = parse_query(sql)?;
        match stmt.tables.len() {
            1 => self.execute_single(&stmt),
            2 => self.execute_pair(&stmt),
            n => Err(QueryError::Semantic(format!("{n} tables unsupported"))),
        }
    }

    /// Describe how a SELECT would run: one row per aggregate with the
    /// pattern's shape, the neighborhood, profile-filtered candidate
    /// estimates (the matcher's step-1 result, a cheap upper bound on
    /// match work), and the algorithm setting.
    pub fn explain(&self, sql: &str) -> Result<Table, QueryError> {
        let stmt = parse_query(sql)?;
        if stmt.tables.len() > 2 {
            return Err(QueryError::Semantic("too many tables".into()));
        }
        let mut table = Table::new(vec![
            "aggregate".into(),
            "pattern".into(),
            "nodes/edges".into(),
            "neighborhood".into(),
            "candidates".into(),
            "algorithm".into(),
        ]);
        let profiles = ego_graph::profile::ProfileIndex::build(self.graph());
        for proj in &stmt.projections {
            let Projection::Agg(agg) = proj else { continue };
            let pattern = self.catalog.require(&agg.pattern)?;
            let (nb, k) = match &agg.neighborhood {
                NeighborhoodAst::Subgraph { k, .. } => ("SUBGRAPH", *k),
                NeighborhoodAst::Intersection { k, .. } => ("SUBGRAPH-INTERSECTION", *k),
                NeighborhoodAst::Union { k, .. } => ("SUBGRAPH-UNION", *k),
            };
            // Profile-filtered candidate counts per pattern node: the
            // matcher's first pruning step, cheap and indicative of
            // pattern selectivity.
            let mut mstats = ego_matcher::MatchStats::default();
            let cs = ego_matcher::candidates::CandidateSpace::enumerate(
                self.graph(),
                pattern,
                &profiles,
                &mut mstats,
            );
            let cand_desc: Vec<String> = pattern
                .nodes()
                .map(|v| format!("?{}:{}", pattern.var_name(v), cs.cands[v.index()].len()))
                .collect();
            table.push_row(vec![
                Value::Str(projection_name(proj)),
                Value::Str(ego_pattern::to_dsl(pattern)),
                Value::Str(format!(
                    "{}/{}",
                    pattern.num_nodes(),
                    pattern.positive_edges().len()
                )),
                Value::Str(format!("{nb}(k={k})")),
                Value::Str(cand_desc.join(" ")),
                Value::Str(format!("{:?}", self.algorithm)),
            ]);
        }
        Ok(table)
    }

    // --- single-table queries ---

    fn execute_single(&self, stmt: &SelectStmt) -> Result<Table, QueryError> {
        let alias = stmt.tables[0].alias.as_str();
        let g = self.graph();

        // WHERE -> focal node set.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut focal: Vec<NodeId> = Vec::new();
        for n in g.node_ids() {
            let keep = match &stmt.where_clause {
                None => true,
                Some(expr) => {
                    let ctx = RowContext {
                        graph: g,
                        bindings: vec![(alias, n)],
                    };
                    eval_predicate(expr, &ctx, &mut rng)?
                }
            };
            if keep {
                focal.push(n);
            }
        }

        // Run each aggregate once over the whole focal set.
        let mut agg_results: Vec<CountVector> = Vec::new();
        for proj in &stmt.projections {
            if let Projection::Agg(agg) = proj {
                agg_results.push(self.run_single_agg(agg, alias, &focal)?);
            }
        }

        // Project rows.
        let columns = stmt.projections.iter().map(projection_name).collect();
        let mut table = Table::new(columns);
        for &n in &focal {
            let mut row = Vec::with_capacity(stmt.projections.len());
            let mut agg_i = 0;
            for proj in &stmt.projections {
                match proj {
                    Projection::Column(c) => {
                        let ctx = RowContext {
                            graph: g,
                            bindings: vec![(alias, n)],
                        };
                        row.push(ctx.column_value(c)?);
                    }
                    Projection::Agg(_) => {
                        row.push(Value::Int(agg_results[agg_i].get(n) as i64));
                        agg_i += 1;
                    }
                }
            }
            table.push_row(row);
        }
        apply_order_limit(&mut table, stmt);
        Ok(table)
    }

    fn run_single_agg(
        &self,
        agg: &AggCall,
        alias: &str,
        focal: &[NodeId],
    ) -> Result<CountVector, QueryError> {
        let (node, k) = match &agg.neighborhood {
            NeighborhoodAst::Subgraph { node, k } => (node, *k),
            _ => {
                return Err(QueryError::Semantic(
                    "SUBGRAPH-INTERSECTION/UNION require two `nodes` tables".into(),
                ))
            }
        };
        check_id_column(node, &[alias])?;
        let pattern = self.catalog.require(&agg.pattern)?;
        let mut spec = CensusSpec::single(pattern, k).with_focal(FocalNodes::Set(focal.to_vec()));
        if let Some(sp) = &agg.subpattern {
            spec = spec.with_subpattern(sp);
        }
        Ok(run_census_exec(
            self.graph(),
            &spec,
            self.algorithm,
            &self.pt_config,
            &self.exec,
        )?)
    }

    // --- pairwise queries ---

    fn execute_pair(&self, stmt: &SelectStmt) -> Result<Table, QueryError> {
        let a1 = stmt.tables[0].alias.as_str();
        let a2 = stmt.tables[1].alias.as_str();
        if a1.eq_ignore_ascii_case(a2) {
            return Err(QueryError::Semantic(format!(
                "duplicate table alias `{a1}`"
            )));
        }
        let g = self.graph();

        // Enumerate ordered pairs of distinct nodes passing WHERE.
        // (Self-pairs are excluded: a pairwise neighborhood of a node with
        // itself is just SUBGRAPH and should be queried as such.)
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut ordered: Vec<(NodeId, NodeId)> = Vec::new();
        for x in g.node_ids() {
            for y in g.node_ids() {
                if x == y {
                    continue;
                }
                let keep = match &stmt.where_clause {
                    None => true,
                    Some(expr) => {
                        let ctx = RowContext {
                            graph: g,
                            bindings: vec![(a1, x), (a2, y)],
                        };
                        eval_predicate(expr, &ctx, &mut rng)?
                    }
                };
                if keep {
                    ordered.push((x, y));
                }
            }
        }

        let selector = PairSelector::Pairs(ordered.clone());
        let mut agg_results: Vec<PairCounts> = Vec::new();
        for proj in &stmt.projections {
            if let Projection::Agg(agg) = proj {
                agg_results.push(self.run_pair_agg(agg, a1, a2, &selector)?);
            }
        }

        let columns = stmt.projections.iter().map(projection_name).collect();
        let mut table = Table::new(columns);
        for &(x, y) in &ordered {
            let mut row = Vec::with_capacity(stmt.projections.len());
            let mut agg_i = 0;
            for proj in &stmt.projections {
                match proj {
                    Projection::Column(c) => {
                        let ctx = RowContext {
                            graph: g,
                            bindings: vec![(a1, x), (a2, y)],
                        };
                        row.push(ctx.column_value(c)?);
                    }
                    Projection::Agg(_) => {
                        row.push(Value::Int(agg_results[agg_i].get(x, y) as i64));
                        agg_i += 1;
                    }
                }
            }
            table.push_row(row);
        }
        apply_order_limit(&mut table, stmt);
        Ok(table)
    }

    fn run_pair_agg(
        &self,
        agg: &AggCall,
        a1: &str,
        a2: &str,
        selector: &PairSelector,
    ) -> Result<PairCounts, QueryError> {
        let pattern = self.catalog.require(&agg.pattern)?;
        let mut spec = match &agg.neighborhood {
            NeighborhoodAst::Intersection { n1, n2, k } => {
                check_pair_columns(n1, n2, a1, a2)?;
                PairCensusSpec::intersection(pattern, *k, selector.clone())
            }
            NeighborhoodAst::Union { n1, n2, k } => {
                check_pair_columns(n1, n2, a1, a2)?;
                PairCensusSpec::union(pattern, *k, selector.clone())
            }
            NeighborhoodAst::Subgraph { .. } => {
                return Err(QueryError::Semantic(
                    "SUBGRAPH(ID, k) is ambiguous in a two-table query; \
                     use SUBGRAPH-INTERSECTION or SUBGRAPH-UNION"
                        .into(),
                ))
            }
        };
        if let Some(sp) = &agg.subpattern {
            spec = spec.with_subpattern(sp);
        }
        Ok(run_pair_census_exec(
            self.graph(),
            &spec,
            self.algorithm,
            &self.pt_config,
            &self.exec,
        )?)
    }
}

/// Apply ORDER BY (stable, multi-key) and LIMIT to a result table.
fn apply_order_limit(table: &mut Table, stmt: &SelectStmt) {
    // Sort by keys right-to-left with a stable sort = multi-key ordering.
    for key in stmt.order_by.iter().rev() {
        let col = key.ordinal - 1;
        match key.dir {
            SortDir::Desc => table.sort_desc_by(col),
            SortDir::Asc => table.sort_asc_by(col),
        }
    }
    if let Some(n) = stmt.limit {
        table.truncate(n);
    }
}

fn check_id_column(col: &ColumnRef, aliases: &[&str]) -> Result<(), QueryError> {
    if !col.is_id() {
        return Err(QueryError::Semantic(format!(
            "neighborhood argument must be an ID column, found `{}`",
            col.column
        )));
    }
    if let Some(t) = &col.table {
        if !aliases.iter().any(|a| a.eq_ignore_ascii_case(t)) {
            return Err(QueryError::Semantic(format!("unknown table alias `{t}`")));
        }
    }
    Ok(())
}

fn check_pair_columns(
    n1: &ColumnRef,
    n2: &ColumnRef,
    a1: &str,
    a2: &str,
) -> Result<(), QueryError> {
    check_id_column(n1, &[a1, a2])?;
    check_id_column(n2, &[a1, a2])?;
    let t1 = n1.table.as_deref().unwrap_or(a1);
    let t2 = n2.table.as_deref().unwrap_or(a2);
    if t1.eq_ignore_ascii_case(t2) {
        return Err(QueryError::Semantic(
            "pairwise neighborhood must reference both table aliases".into(),
        ));
    }
    Ok(())
}

fn projection_name(p: &Projection) -> String {
    match p {
        Projection::Column(c) => match &c.table {
            Some(t) => format!("{t}.{}", c.column),
            None => c.column.clone(),
        },
        Projection::Agg(a) => {
            let nb = match &a.neighborhood {
                NeighborhoodAst::Subgraph { node, k } => {
                    format!("SUBGRAPH({}, {k})", col_name(node))
                }
                NeighborhoodAst::Intersection { n1, n2, k } => format!(
                    "SUBGRAPH-INTERSECTION({}, {}, {k})",
                    col_name(n1),
                    col_name(n2)
                ),
                NeighborhoodAst::Union { n1, n2, k } => {
                    format!("SUBGRAPH-UNION({}, {}, {k})", col_name(n1), col_name(n2))
                }
            };
            match &a.subpattern {
                Some(sp) => format!("COUNTSP({sp}, {}, {nb})", a.pattern),
                None => format!("COUNTP({}, {nb})", a.pattern),
            }
        }
    }
}

fn col_name(c: &ColumnRef) -> String {
    match &c.table {
        Some(t) => format!("{t}.{}", c.column),
        None => c.column.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ego_graph::{GraphBuilder, Label};

    /// Two triangles sharing node 2, chain 4-5-6.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::undirected();
        b.add_nodes(7, Label(0));
        for (x, y) in [
            (0u32, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (3, 4),
            (2, 4),
            (4, 5),
            (5, 6),
        ] {
            b.add_edge(NodeId(x), NodeId(y));
        }
        for i in 0..7u32 {
            // age attribute = 10 * id, for WHERE tests.
            // (builder consumed later; set here)
            b.set_node_attr(NodeId(i), "age", (10 * i) as i64);
        }
        b.build()
    }

    fn engine(g: &Graph) -> QueryEngine<'_> {
        let mut e = QueryEngine::new(g);
        e.catalog_mut()
            .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
            .unwrap();
        e.catalog_mut().define("PATTERN node1 { ?A; }").unwrap();
        e
    }

    #[test]
    fn simple_census_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
            .unwrap();
        assert_eq!(t.num_rows(), 7);
        assert_eq!(t.rows()[2][1], Value::Int(2));
        assert_eq!(t.rows()[6][1], Value::Int(0));
        assert_eq!(t.columns()[1], "COUNTP(tri, SUBGRAPH(ID, 1))");
    }

    #[test]
    fn where_filters_rows() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE age >= 40")
            .unwrap();
        assert_eq!(t.num_rows(), 3); // nodes 4, 5, 6
        assert_eq!(t.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn attribute_projection() {
        let g = fixture();
        let e = engine(&g);
        let t = e.execute("SELECT ID, age FROM nodes WHERE ID < 2").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[1][1], Value::Int(10));
    }

    #[test]
    fn multiple_aggregates() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)), COUNTP(node1, SUBGRAPH(ID, 1)) \
                 FROM nodes WHERE ID = 2",
            )
            .unwrap();
        assert_eq!(t.rows()[0][1], Value::Int(2));
        // 1-hop ball of node 2 = {0,1,2,3,4}: 5 single-node matches.
        assert_eq!(t.rows()[0][2], Value::Int(5));
    }

    #[test]
    fn pairwise_intersection_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTP(node1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID AND n2.ID < 3",
            )
            .unwrap();
        // pairs: (0,1), (0,2), (1,2)
        assert_eq!(t.num_rows(), 3);
        // N1(0)={0,1,2}, N1(1)={0,1,2}: intersection 3 nodes.
        assert_eq!(t.rows()[0][2], Value::Int(3));
    }

    #[test]
    fn rnd_selectivity_is_seeded() {
        let g = fixture();
        let mut e = engine(&g);
        e.set_seed(7);
        let t1 = e.execute("SELECT ID FROM nodes WHERE RND() < 0.5").unwrap();
        let t2 = e.execute("SELECT ID FROM nodes WHERE RND() < 0.5").unwrap();
        assert_eq!(t1, t2);
        assert!(t1.num_rows() < 7); // almost surely with this seed
    }

    #[test]
    fn countsp_query() {
        let mut b = GraphBuilder::directed();
        b.add_nodes(3, Label(0));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        let mut e = QueryEngine::new(&g);
        e.catalog_mut()
            .define("PATTERN triad { ?A->?B; ?B->?C; ?A!->?C; SUBPATTERN mid {?B;} }")
            .unwrap();
        let t = e
            .execute("SELECT ID, COUNTSP(mid, triad, SUBGRAPH(ID, 0)) FROM nodes")
            .unwrap();
        assert_eq!(t.rows()[1][1], Value::Int(1));
        assert_eq!(t.rows()[0][1], Value::Int(0));
    }

    #[test]
    fn semantic_errors() {
        let g = fixture();
        let e = engine(&g);
        assert!(matches!(
            e.execute("SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes"),
            Err(QueryError::UnknownPattern(_))
        ));
        assert!(e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(age, 1)) FROM nodes")
            .is_err());
        assert!(e
            .execute(
                "SELECT n1.ID, COUNTP(tri, SUBGRAPH-INTERSECTION(n1.ID, n1.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2"
            )
            .is_err());
        assert!(e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes AS a, nodes AS a")
            .is_err());
    }

    #[test]
    fn algorithms_agree_through_sql() {
        let g = fixture();
        let mut e = engine(&g);
        let sql = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes";
        let mut results = Vec::new();
        for algo in [
            Algorithm::NdBaseline,
            Algorithm::NdPivot,
            Algorithm::NdDiff,
            Algorithm::PtBaseline,
            Algorithm::PtOpt,
            Algorithm::Auto,
        ] {
            e.set_algorithm(algo);
            results.push(e.execute(sql).unwrap());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = fixture();
        let mut e = engine(&g);
        let single = "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes";
        let pair = "SELECT n1.ID, n2.ID, \
                    COUNTP(node1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                    FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID";
        e.set_threads(1);
        let base_single = e.execute(single).unwrap();
        let base_pair = e.execute(pair).unwrap();
        for threads in [2, 4, 0] {
            e.set_threads(threads);
            assert_eq!(e.execute(single).unwrap(), base_single, "threads={threads}");
            assert_eq!(e.execute(pair).unwrap(), base_pair, "threads={threads}");
        }
    }

    #[test]
    fn order_by_and_limit() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes                  ORDER BY 2 DESC LIMIT 3",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 3);
        // Node 2 (2 triangles) first; ties on 1 broken stably by prior
        // (id) order.
        assert_eq!(t.rows()[0][0], Value::Int(2));
        assert_eq!(t.rows()[0][1], Value::Int(2));
        let counts: Vec<i64> = t.rows().iter().map(|r| r[1].as_int().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn order_by_multi_key_asc() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes                  ORDER BY 2 ASC, 1 DESC",
            )
            .unwrap();
        // Counts ascending; within equal counts, ids descending.
        let rows: Vec<(i64, i64)> = t
            .rows()
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        for w in rows.windows(2) {
            assert!(
                w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 > w[1].0),
                "bad order: {rows:?}"
            );
        }
    }

    #[test]
    fn order_by_errors() {
        let g = fixture();
        let e = engine(&g);
        assert!(e.execute("SELECT ID FROM nodes ORDER BY 0").is_err());
        assert!(e.execute("SELECT ID FROM nodes ORDER BY 5").is_err());
        assert!(e.execute("SELECT ID FROM nodes LIMIT x").is_err());
        // LIMIT 0 is legal and empty.
        let t = e.execute("SELECT ID FROM nodes LIMIT 0").unwrap();
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn pairwise_countsp_query() {
        let g = fixture();
        let mut e = QueryEngine::new(&g);
        e.catalog_mut()
            .define("PATTERN t { ?A-?B; ?B-?C; ?A-?C; SUBPATTERN one {?A;} }")
            .unwrap();
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTSP(one, t, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 1",
            )
            .unwrap();
        // Common 1-hop neighborhood of 0 and 1 is {0,1,2}. Anchored
        // matches with ?A there: all three of triangle {0,1,2} plus
        // triangle {2,3,4} anchored at A=2 (its B/C images may lie
        // outside the neighborhood — that is the point of COUNTSP).
        assert_eq!(t.rows()[0][2], Value::Int(4));
    }

    #[test]
    fn pairwise_union_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTP(node1, SUBGRAPH-UNION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID = 0 AND n2.ID = 6",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        // N1(0) = {0,1,2}, N1(6) = {5,6}: union has 5 nodes.
        assert_eq!(t.rows()[0][2], Value::Int(5));
    }

    #[test]
    fn pairwise_order_by_count() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute(
                "SELECT n1.ID, n2.ID, \
                 COUNTP(node1, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
                 FROM nodes AS n1, nodes AS n2 WHERE n1.ID < n2.ID AND n2.ID < 4 \
                 ORDER BY 3 DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        let c0 = t.rows()[0][2].as_int().unwrap();
        let c1 = t.rows()[1][2].as_int().unwrap();
        assert!(c0 >= c1);
    }

    #[test]
    fn explain_describes_plan() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes")
            .unwrap();
        assert_eq!(t.num_rows(), 1);
        let row = &t.rows()[0];
        assert!(row[0].to_string().contains("COUNTP(tri"));
        assert!(row[1].to_string().contains("PATTERN tri"));
        assert_eq!(row[2], Value::Str("3/3".into()));
        assert!(row[3].to_string().contains("k=2"));
        assert!(row[4].to_string().contains("?A:"));
        // EXPLAIN of a bad query errors like the query would.
        assert!(e
            .execute("EXPLAIN SELECT ID, COUNTP(ghost, SUBGRAPH(ID, 1)) FROM nodes")
            .is_err());
    }

    #[test]
    fn csv_export_of_query() {
        let g = fixture();
        let e = engine(&g);
        let t = e
            .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE ID < 3")
            .unwrap();
        let csv = t.to_csv();
        assert!(csv.starts_with("ID,"));
        assert_eq!(csv.lines().count(), 4);
    }
}
