//! Query errors.

use std::fmt;

/// Any failure while parsing, planning, or executing a query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// Lexical or syntactic error, with 1-based position.
    Syntax {
        /// Line.
        line: usize,
        /// Column.
        col: usize,
        /// Description.
        message: String,
    },
    /// The query references a pattern not defined in the catalog.
    UnknownPattern(String),
    /// A `define` tried to reuse a name that is already bound (locally or
    /// in a base catalog layer).
    AlreadyDefined(String),
    /// A pattern definition failed to parse.
    PatternError(String),
    /// Semantic error (bad column, alias, aggregate shape...).
    Semantic(String),
    /// The census engine rejected the plan.
    Census(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Syntax { line, col, message } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            QueryError::UnknownPattern(name) => write!(f, "unknown pattern `{name}`"),
            QueryError::AlreadyDefined(name) => {
                write!(f, "pattern `{name}` already defined")
            }
            QueryError::PatternError(msg) => write!(f, "pattern error: {msg}"),
            QueryError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            QueryError::Census(msg) => write!(f, "execution error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ego_pattern::ParseError> for QueryError {
    fn from(e: ego_pattern::ParseError) -> Self {
        QueryError::PatternError(e.to_string())
    }
}

impl From<ego_census::CensusError> for QueryError {
    fn from(e: ego_census::CensusError) -> Self {
        QueryError::Census(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = QueryError::Syntax {
            line: 2,
            col: 5,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("2:5"));
        assert!(QueryError::UnknownPattern("p".into())
            .to_string()
            .contains('p'));
        assert!(QueryError::Semantic("x".into()).to_string().contains('x'));
    }
}
