//! SQL values: attribute values plus NULL.

use ego_graph::AttrValue;
use std::fmt;

/// A value in a query result or expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer (also node ids and census counts).
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Missing attribute.
    Null,
}

impl Value {
    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view (ints widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style comparison with numeric coercion; `None` for NULLs or
    /// incomparable types (a comparison involving them is never true).
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<AttrValue> for Value {
    fn from(v: AttrValue) -> Self {
        match v {
            AttrValue::Int(i) => Value::Int(i),
            AttrValue::Float(f) => Value::Float(f),
            AttrValue::Str(s) => Value::Str(s),
            AttrValue::Bool(b) => Value::Bool(b),
        }
    }
}

impl From<&AttrValue> for Value {
    fn from(v: &AttrValue) -> Self {
        v.clone().into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(AttrValue::Int(3)).as_int(), Some(3));
        assert_eq!(Value::from(AttrValue::Float(1.5)).as_f64(), Some(1.5));
        assert_eq!(Value::from(AttrValue::Bool(true)).as_bool(), Some(true));
        assert!(!Value::from(AttrValue::Str("x".into())).is_null());
    }

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).compare(&Value::Float(2.0)), Some(Less));
        assert_eq!(
            Value::Str("b".into()).compare(&Value::Str("a".into())),
            Some(Greater)
        );
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Str("1".into())), None);
        assert_eq!(Value::Bool(true).compare(&Value::Bool(true)), Some(Equal));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }
}
