//! WHERE-clause evaluation.

use crate::ast::{BinOp, ColumnRef, Expr};
use crate::error::QueryError;
use crate::value::Value;
use ego_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;

/// A row binding: table alias -> node. Single-table queries bind one
/// alias; pair queries bind two.
pub struct RowContext<'a> {
    /// The graph attributes are resolved against.
    pub graph: &'a Graph,
    /// `(alias, node)` bindings, in FROM order.
    pub bindings: Vec<(&'a str, NodeId)>,
}

impl<'a> RowContext<'a> {
    /// Resolve a column reference to the bound node it refers to.
    pub fn resolve_node(&self, col: &ColumnRef) -> Result<NodeId, QueryError> {
        match &col.table {
            Some(alias) => self
                .bindings
                .iter()
                .find(|(a, _)| a.eq_ignore_ascii_case(alias))
                .map(|&(_, n)| n)
                .ok_or_else(|| QueryError::Semantic(format!("unknown table alias `{alias}`"))),
            None => {
                if self.bindings.len() == 1 {
                    Ok(self.bindings[0].1)
                } else {
                    Err(QueryError::Semantic(format!(
                        "ambiguous column `{}` in a multi-table query; qualify it",
                        col.column
                    )))
                }
            }
        }
    }

    /// The value of a column for this row.
    pub fn column_value(&self, col: &ColumnRef) -> Result<Value, QueryError> {
        let node = self.resolve_node(col)?;
        if col.is_id() {
            return Ok(Value::Int(node.0 as i64));
        }
        if col.column.eq_ignore_ascii_case("LABEL") {
            return Ok(Value::Int(self.graph.label(node).0 as i64));
        }
        Ok(self
            .graph
            .node_attr(node, &col.column)
            .map(Value::from)
            .unwrap_or(Value::Null))
    }
}

/// Evaluate a WHERE expression for one row. `rng` drives `RND()`.
pub fn eval_predicate(
    expr: &Expr,
    ctx: &RowContext<'_>,
    rng: &mut StdRng,
) -> Result<bool, QueryError> {
    match eval(expr, ctx, rng)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(QueryError::Semantic(format!(
            "WHERE clause evaluated to non-boolean value `{other}`"
        ))),
    }
}

fn eval(expr: &Expr, ctx: &RowContext<'_>, rng: &mut StdRng) -> Result<Value, QueryError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => ctx.column_value(c),
        Expr::Rnd => Ok(Value::Float(rng.gen::<f64>())),
        Expr::Not(inner) => match eval(inner, ctx, rng)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(QueryError::Semantic(format!(
                "NOT applied to non-boolean `{other}`"
            ))),
        },
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, ctx, rng)?;
            match op {
                BinOp::And => {
                    // Short-circuit, but RHS may still draw RND() — SQL
                    // engines differ; we evaluate eagerly for determinism
                    // of RND() draws across plans.
                    let r = eval(rhs, ctx, rng)?;
                    Ok(bool_op(l, r, |a, b| a && b)?)
                }
                BinOp::Or => {
                    let r = eval(rhs, ctx, rng)?;
                    Ok(bool_op(l, r, |a, b| a || b)?)
                }
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let r = eval(rhs, ctx, rng)?;
                    let cmp = l.compare(&r);
                    Ok(match cmp {
                        None => {
                            if l.is_null() || r.is_null() {
                                Value::Null
                            } else {
                                Value::Bool(false)
                            }
                        }
                        Some(ord) => Value::Bool(match op {
                            BinOp::Eq => ord == std::cmp::Ordering::Equal,
                            BinOp::Ne => ord != std::cmp::Ordering::Equal,
                            BinOp::Lt => ord == std::cmp::Ordering::Less,
                            BinOp::Le => ord != std::cmp::Ordering::Greater,
                            BinOp::Gt => ord == std::cmp::Ordering::Greater,
                            BinOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        }),
                    })
                }
            }
        }
    }
}

fn bool_op(l: Value, r: Value, f: impl Fn(bool, bool) -> bool) -> Result<Value, QueryError> {
    match (l, r) {
        (Value::Bool(a), Value::Bool(b)) => Ok(Value::Bool(f(a, b))),
        // NULL propagates (evaluates to not-selected at the top).
        (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
        (a, b) => Err(QueryError::Semantic(format!(
            "boolean operator applied to `{a}` and `{b}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use ego_graph::{GraphBuilder, Label};
    use rand::SeedableRng;

    fn graph() -> Graph {
        let mut b = GraphBuilder::undirected();
        let a = b.add_node(Label(1));
        let c = b.add_node(Label(2));
        b.add_edge(a, c);
        b.set_node_attr(a, "age", 30i64);
        b.set_node_attr(a, "dept", "db");
        b.set_node_attr(c, "age", 40i64);
        b.build()
    }

    fn where_of(sql: &str) -> Expr {
        parse_query(sql).unwrap().where_clause.unwrap()
    }

    fn eval_on(g: &Graph, expr: &Expr, node: NodeId) -> bool {
        let ctx = RowContext {
            graph: g,
            bindings: vec![("nodes", node)],
        };
        let mut rng = StdRng::seed_from_u64(1);
        eval_predicate(expr, &ctx, &mut rng).unwrap()
    }

    #[test]
    fn attribute_comparisons() {
        let g = graph();
        let e = where_of("SELECT ID FROM nodes WHERE age >= 35");
        assert!(!eval_on(&g, &e, NodeId(0)));
        assert!(eval_on(&g, &e, NodeId(1)));
    }

    #[test]
    fn id_and_label_pseudo_columns() {
        let g = graph();
        let e = where_of("SELECT ID FROM nodes WHERE ID = 1");
        assert!(eval_on(&g, &e, NodeId(1)));
        assert!(!eval_on(&g, &e, NodeId(0)));
        let e = where_of("SELECT ID FROM nodes WHERE LABEL = 2");
        assert!(eval_on(&g, &e, NodeId(1)));
    }

    #[test]
    fn string_and_logic() {
        let g = graph();
        let e = where_of("SELECT ID FROM nodes WHERE dept = 'db' AND age < 35");
        assert!(eval_on(&g, &e, NodeId(0)));
        assert!(!eval_on(&g, &e, NodeId(1))); // dept missing -> NULL -> false
        let e = where_of("SELECT ID FROM nodes WHERE dept = 'db' OR age > 35");
        assert!(eval_on(&g, &e, NodeId(0)));
    }

    #[test]
    fn null_semantics() {
        let g = graph();
        // Node 1 has no dept: comparison is NULL, NOT NULL is NULL -> false.
        let e = where_of("SELECT ID FROM nodes WHERE NOT dept = 'db'");
        assert!(!eval_on(&g, &e, NodeId(1)));
    }

    #[test]
    fn rnd_is_deterministic_per_seed() {
        let g = graph();
        let e = where_of("SELECT ID FROM nodes WHERE RND() < 0.5");
        let ctx = RowContext {
            graph: &g,
            bindings: vec![("nodes", NodeId(0))],
        };
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            assert_eq!(
                eval_predicate(&e, &ctx, &mut r1).unwrap(),
                eval_predicate(&e, &ctx, &mut r2).unwrap()
            );
        }
    }

    #[test]
    fn pair_bindings() {
        let g = graph();
        let e = where_of("SELECT n1.ID FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID");
        let ctx = RowContext {
            graph: &g,
            bindings: vec![("n1", NodeId(1)), ("n2", NodeId(0))],
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(eval_predicate(&e, &ctx, &mut rng).unwrap());
        let ctx2 = RowContext {
            graph: &g,
            bindings: vec![("n1", NodeId(0)), ("n2", NodeId(1))],
        };
        assert!(!eval_predicate(&e, &ctx2, &mut rng).unwrap());
    }

    #[test]
    fn ambiguous_unqualified_column_errors() {
        let g = graph();
        let e = where_of("SELECT n1.ID FROM nodes AS n1, nodes AS n2 WHERE ID = 0");
        let ctx = RowContext {
            graph: &g,
            bindings: vec![("n1", NodeId(0)), ("n2", NodeId(1))],
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(eval_predicate(&e, &ctx, &mut rng).is_err());
    }

    #[test]
    fn type_error_reported() {
        let g = graph();
        let e = where_of("SELECT ID FROM nodes WHERE age AND TRUE");
        let ctx = RowContext {
            graph: &g,
            bindings: vec![("nodes", NodeId(0))],
        };
        let mut rng = StdRng::seed_from_u64(0);
        assert!(eval_predicate(&e, &ctx, &mut rng).is_err());
    }
}
