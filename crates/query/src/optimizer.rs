//! The optimizer: an ordered list of rewrite passes folded over the
//! logical plan (toydb-style `OPTIMIZERS.iter().try_fold`).
//!
//! Pass order is load-bearing:
//!
//! 1. **shard-pushdown** — materialize the engine's focal-shard
//!    restriction as a plan node *below* the census (and above the
//!    filter: sharding applies after the full WHERE pass so the `RND()`
//!    stream stays aligned across shards).
//! 2. **cache-substitution** — probe the census cache (peek only, no
//!    LRU promotion, no hit/miss accounting) so later passes know which
//!    match lists exist — and exactly how long they are — and which
//!    count vectors will short-circuit execution entirely.
//! 3. **view-substitution** — if *every* census job has a fresh
//!    materialized view whose coverage matches the engine's focal shard,
//!    rewrite the census node into a [`PlanNode::ViewProbe`]: execution
//!    becomes a pure gather over pinned count vectors, zero traversal.
//!    Runs after cache-substitution so EXPLAIN still shows what the
//!    ordinary caches held, before algorithm-selection so no algorithm
//!    is ranked for work that will not run.
//! 4. **algorithm-selection** — rank every algorithm that can serve the
//!    statement by estimated cost ([`crate::stats`]) and resolve `Auto`
//!    to a concrete choice; cached match-list lengths from pass 2
//!    replace the estimator's `m` term.
//! 5. **batch-grouping** — group the statement's aggregates into shared
//!    sweeps/traversals ([`ego_census::plan_stages`]) under the chosen
//!    algorithm; needs pass 4's concrete algorithm to resolve modes.
//!
//! Every pass is a semantic no-op on result tables: passes annotate and
//! restructure, the executor computes.

use crate::catalog::Catalog;
use crate::census_cache::CensusCache;
use crate::error::QueryError;
use crate::plan::{AlgoChoice, CountHint, MatchHint, Plan, PlanNode, StatsBasis, ViewProbeJob};
use crate::shard::ShardSpec;
use crate::stats::{rank_algorithms, CostJob, GraphStats, PlannerCounters};
use crate::views::ViewRegistry;
use ego_census::{plan_stages, Algorithm, CensusSpec};
use ego_graph::{Graph, NodeId};
use std::sync::atomic::Ordering;

/// Everything a pass may consult. Built by the engine per statement.
pub struct PassContext<'a> {
    /// The live graph.
    pub graph: &'a Graph,
    /// Pattern catalog (session layer over base).
    pub catalog: &'a Catalog,
    /// Statistics backing the cost model (an `ANALYZE` snapshot when
    /// fresh, otherwise the engine's memoized structural heuristic).
    pub stats: &'a GraphStats,
    /// Where `stats` came from, for EXPLAIN and the counters.
    pub stats_basis: StatsBasis,
    /// Live-graph fingerprint (cache keys).
    pub fingerprint: u64,
    /// Census cache to probe, if attached.
    pub cache: Option<&'a CensusCache>,
    /// Materialized-view registry to probe, if attached.
    pub views: Option<&'a ViewRegistry>,
    /// The statement's focal set, when already computed (execution);
    /// `None` when the focal set depends on an unevaluated WHERE clause
    /// (EXPLAIN), in which case count-cache probes stay `Unknown`.
    pub focal: Option<&'a [NodeId]>,
    /// Engine focal-shard restriction to push into the plan.
    pub shard: Option<ShardSpec>,
    /// The engine's configured algorithm; `Auto` frees the planner.
    pub forced: Algorithm,
    /// Planner counters to tally into, if attached.
    pub counters: Option<&'a PlannerCounters>,
    /// Passes that modified or annotated the plan during this optimize
    /// run (flushed into `counters.passes_fired`).
    pub fired: u64,
}

/// One rewrite pass: owns the tree, returns the rewritten tree.
pub type Pass = fn(PlanNode, &mut PassContext<'_>) -> Result<PlanNode, QueryError>;

/// The pass pipeline, in execution order.
pub const OPTIMIZERS: &[(&str, Pass)] = &[
    ("shard-pushdown", shard_pushdown),
    ("cache-substitution", cache_substitution),
    ("view-substitution", view_substitution),
    ("algorithm-selection", algorithm_selection),
    ("batch-grouping", batch_grouping),
];

/// Run the full pass pipeline over a logical plan.
pub fn optimize(plan: Plan, ctx: &mut PassContext<'_>) -> Result<Plan, QueryError> {
    optimize_with(plan, ctx, OPTIMIZERS)
}

/// Run a subset of passes (tests prove each pass is a semantic no-op by
/// diffing result tables with and without it).
pub fn optimize_with(
    plan: Plan,
    ctx: &mut PassContext<'_>,
    passes: &[(&str, Pass)],
) -> Result<Plan, QueryError> {
    let Plan { stmt, root } = plan;
    let root = passes
        .iter()
        .try_fold(root, |node, (_name, pass)| pass(node, ctx))?;
    if let Some(c) = ctx.counters {
        c.plans_built.fetch_add(1, Ordering::Relaxed);
        if ctx.fired != 0 {
            c.passes_fired.fetch_add(ctx.fired, Ordering::Relaxed);
        }
    }
    Ok(Plan { stmt, root })
}

/// Pass 1: materialize the engine's focal-shard restriction as a plan
/// node directly above the filter (sharding happens after the full
/// WHERE pass). Pairwise census is never sharded — the router only
/// scatters single-table statements — so pair trees are left alone.
fn shard_pushdown(node: PlanNode, ctx: &mut PassContext<'_>) -> Result<PlanNode, QueryError> {
    let Some(spec) = ctx.shard else {
        return Ok(node);
    };
    if spec.is_whole() {
        return Ok(node);
    }
    fn insert(node: PlanNode, spec: ShardSpec) -> (PlanNode, bool) {
        match node {
            PlanNode::Census(mut c) => {
                c.input = Box::new(PlanNode::Shard {
                    spec,
                    input: c.input,
                });
                (PlanNode::Census(c), true)
            }
            PlanNode::PairCensus { .. } => (node, false),
            PlanNode::Project { input } => {
                let (inner, fired) = insert(*input, spec);
                match inner {
                    // No census below: the shard applies to the scanned
                    // focal list itself.
                    n @ (PlanNode::Scan { .. } | PlanNode::Filter { .. }) => (
                        PlanNode::Project {
                            input: Box::new(PlanNode::Shard {
                                spec,
                                input: Box::new(n),
                            }),
                        },
                        true,
                    ),
                    n => (PlanNode::Project { input: Box::new(n) }, fired),
                }
            }
            PlanNode::Order { keys, input } => {
                let (inner, fired) = insert(*input, spec);
                (
                    PlanNode::Order {
                        keys,
                        input: Box::new(inner),
                    },
                    fired,
                )
            }
            PlanNode::Limit { n, input } => {
                let (inner, fired) = insert(*input, spec);
                (
                    PlanNode::Limit {
                        n,
                        input: Box::new(inner),
                    },
                    fired,
                )
            }
            other => (other, false),
        }
    }
    let (node, fired) = insert(node, spec);
    if fired {
        ctx.fired += 1;
    }
    Ok(node)
}

/// Pass 2: probe the census cache for every job's match list and (when
/// the focal set is known) count vector. Peek-only: the executor's real
/// lookups still drive the cache's hit/miss counters and LRU order.
fn cache_substitution(node: PlanNode, ctx: &mut PassContext<'_>) -> Result<PlanNode, QueryError> {
    let Some(cache) = ctx.cache else {
        return Ok(node);
    };
    let fp = ctx.fingerprint;
    let catalog = ctx.catalog;
    let focal = ctx.focal;
    let mut fired = false;
    let node = node.map_census(&mut |mut c| {
        for job in &mut c.jobs {
            let pattern = catalog.require(&job.pattern)?;
            let dsl = ego_pattern::to_dsl(pattern);
            job.cached_matches = match cache.peek_matches(&CensusCache::match_key(&dsl, fp)) {
                Some(m) => MatchHint::Hit(m.len()),
                None => MatchHint::Miss,
            };
            job.cached_counts = match focal {
                Some(f) => {
                    let key = CensusCache::count_key(&dsl, job.k, job.subpattern.as_deref(), f, fp);
                    if cache.peek_counts(&key) {
                        CountHint::Hit
                    } else {
                        CountHint::Miss
                    }
                }
                None => CountHint::Unknown,
            };
            fired = true;
        }
        Ok(c)
    })?;
    if fired {
        ctx.fired += 1;
    }
    Ok(node)
}

/// Pass 3: view substitution. When *every* census job resolves to a
/// fresh materialized view whose coverage equals the engine's focal
/// shard, the census node becomes a [`PlanNode::ViewProbe`] — a pure
/// gather with zero traversal. Arbitrary focal subsets (WHERE filters,
/// explicit focal lists) are fine: execution only reads the focal
/// positions, and the engine's focal computation already restricts
/// focal nodes to the shard range the view covers. Peek-only, like
/// cache-substitution: the executor's real probe drives hit counters.
fn view_substitution(node: PlanNode, ctx: &mut PassContext<'_>) -> Result<PlanNode, QueryError> {
    let Some(views) = ctx.views else {
        return Ok(node);
    };
    let shard = ctx.shard.filter(|s| !s.is_whole());
    fn rewrite(
        node: PlanNode,
        views: &ViewRegistry,
        catalog: &Catalog,
        fp: u64,
        shard: Option<ShardSpec>,
        fired: &mut bool,
    ) -> Result<PlanNode, QueryError> {
        Ok(match node {
            PlanNode::Census(c) => {
                let mut probes = Vec::with_capacity(c.jobs.len());
                for job in &c.jobs {
                    let pattern = catalog.require(&job.pattern)?;
                    let dsl = ego_pattern::to_dsl(pattern);
                    match views.peek(&dsl, job.k, job.subpattern.as_deref(), fp, shard) {
                        Some(entry) => probes.push(ViewProbeJob {
                            projection: job.projection,
                            pattern: job.pattern.clone(),
                            dsl,
                            k: job.k,
                            subpattern: job.subpattern.clone(),
                            matches: entry.matches.as_ref().map(|m| m.len()),
                            coverage: entry.shard,
                        }),
                        // One unservable job keeps the whole census: a
                        // mixed probe/traverse split would break batch
                        // sharing for the remainder.
                        None => return Ok(PlanNode::Census(c)),
                    }
                }
                if probes.is_empty() {
                    return Ok(PlanNode::Census(c));
                }
                *fired = true;
                PlanNode::ViewProbe {
                    probes,
                    input: c.input,
                }
            }
            PlanNode::Filter { input } => PlanNode::Filter {
                input: Box::new(rewrite(*input, views, catalog, fp, shard, fired)?),
            },
            PlanNode::Shard { spec, input } => PlanNode::Shard {
                spec,
                input: Box::new(rewrite(*input, views, catalog, fp, shard, fired)?),
            },
            PlanNode::Project { input } => PlanNode::Project {
                input: Box::new(rewrite(*input, views, catalog, fp, shard, fired)?),
            },
            PlanNode::Order { keys, input } => PlanNode::Order {
                keys,
                input: Box::new(rewrite(*input, views, catalog, fp, shard, fired)?),
            },
            PlanNode::Limit { n, input } => PlanNode::Limit {
                n,
                input: Box::new(rewrite(*input, views, catalog, fp, shard, fired)?),
            },
            // Pairwise census has no per-focal count vector to probe.
            leaf => leaf,
        })
    }
    let mut fired = false;
    let node = rewrite(node, views, ctx.catalog, ctx.fingerprint, shard, &mut fired)?;
    if fired {
        ctx.fired += 1;
    }
    Ok(node)
}

/// Pass 4: cost-based algorithm selection. Ranks every algorithm that
/// can serve all of the statement's jobs and resolves `Auto` to the
/// cheapest; a concrete engine algorithm is honored (`forced`) but the
/// alternatives are still ranked so EXPLAIN can show the road not
/// taken.
fn algorithm_selection(node: PlanNode, ctx: &mut PassContext<'_>) -> Result<PlanNode, QueryError> {
    let stats = ctx.stats;
    let basis = ctx.stats_basis;
    let catalog = ctx.catalog;
    let focal_count = ctx.focal.map_or(ctx.graph.num_nodes(), <[NodeId]>::len);
    let forced = ctx.forced;
    let mut fired = false;
    let mut auto_choices = 0u64;
    let node = node.map_census(&mut |mut c| {
        let mut cost_jobs = Vec::with_capacity(c.jobs.len());
        for job in &c.jobs {
            let pattern = catalog.require(&job.pattern)?;
            let mut cj = CostJob::new(stats, pattern, job.k, job.subpattern.is_some());
            if let MatchHint::Hit(len) = job.cached_matches {
                cj.cached_matches = Some(len);
            }
            cost_jobs.push(cj);
        }
        let considered = rank_algorithms(stats, &cost_jobs, focal_count);
        let (algorithm, is_forced) = if forced == Algorithm::Auto {
            auto_choices += 1;
            (considered[0].0, false)
        } else {
            (forced, true)
        };
        c.choice = Some(AlgoChoice {
            algorithm,
            forced: is_forced,
            stats: basis,
            considered,
        });
        fired = true;
        Ok(c)
    })?;
    if fired {
        ctx.fired += 1;
    }
    if auto_choices != 0 {
        if let Some(counters) = ctx.counters {
            let slot = if basis == StatsBasis::Analyzed {
                &counters.cost_model_hits
            } else {
                &counters.heuristic_fallbacks
            };
            slot.fetch_add(auto_choices, Ordering::Relaxed);
        }
    }
    Ok(node)
}

/// Pass 5: group the statement's aggregates into shared batch stages
/// under the chosen algorithm (the same `plan_stages` the batch
/// executor uses, so the annotation is exactly what will run). Needs a
/// concrete algorithm: with pass 4 skipped and the engine on `Auto`,
/// grouping stays undecided and the pass does nothing.
fn batch_grouping(node: PlanNode, ctx: &mut PassContext<'_>) -> Result<PlanNode, QueryError> {
    let graph = ctx.graph;
    let catalog = ctx.catalog;
    let forced = ctx.forced;
    let mut fired = false;
    let node = node.map_census(&mut |mut c| {
        let algorithm = match (&c.choice, forced) {
            (Some(choice), _) => choice.algorithm,
            (None, Algorithm::Auto) => return Ok(c),
            (None, concrete) => concrete,
        };
        if c.jobs.len() < 2 {
            return Ok(c); // nothing to share
        }
        let patterns: Vec<_> = c
            .jobs
            .iter()
            .map(|j| catalog.require(&j.pattern))
            .collect::<Result<_, _>>()?;
        let specs: Vec<CensusSpec<'_>> = c
            .jobs
            .iter()
            .zip(&patterns)
            .map(|(job, p)| {
                let mut spec = CensusSpec::single(p, job.k);
                if let Some(sp) = &job.subpattern {
                    spec = spec.with_subpattern(sp);
                }
                spec
            })
            .collect();
        let none_matches = vec![None; specs.len()];
        // A forced algorithm that cannot serve these jobs (e.g. ND-BAS
        // with COUNTSP) fails mode resolution here exactly as execution
        // would; surface the same error at plan time.
        c.stages = plan_stages(graph, &specs, algorithm, &none_matches)?;
        fired = true;
        Ok(c)
    })?;
    if fired {
        ctx.fired += 1;
    }
    Ok(node)
}
