//! Result tables.

use crate::value::Value;
use std::fmt;

/// A query result: named columns and rows of values.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create a table with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the row width differs from the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Index of a column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Sort rows descending by the given column (NULLs last), stable.
    pub fn sort_desc_by(&mut self, column: usize) {
        self.rows.sort_by(|a, b| {
            let va = &a[column];
            let vb = &b[column];
            match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => vb.compare(va).unwrap_or(std::cmp::Ordering::Equal),
            }
        });
    }

    /// Sort rows ascending by the given column (NULLs last), stable.
    pub fn sort_asc_by(&mut self, column: usize) {
        self.rows.sort_by(|a, b| {
            let va = &a[column];
            let vb = &b[column];
            match (va.is_null(), vb.is_null()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => va.compare(vb).unwrap_or(std::cmp::Ordering::Equal),
            }
        });
    }

    /// Keep only the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// Render as CSV (header + rows). Values containing commas or quotes
    /// are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|v| csv_escape(&v.to_string()))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl fmt::Display for Table {
    /// Aligned text rendering for terminals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{c:<width$}", width = widths[i])?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["ID".into(), "count".into()]);
        t.push_row(vec![Value::Int(0), Value::Int(5)]);
        t.push_row(vec![Value::Int(1), Value::Int(9)]);
        t.push_row(vec![Value::Int(2), Value::Null]);
        t
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column_index("COUNT"), Some(1));
        assert_eq!(t.column_index("missing"), None);
    }

    #[test]
    fn sort_desc_nulls_last() {
        let mut t = sample();
        t.sort_desc_by(1);
        assert_eq!(t.rows()[0][0], Value::Int(1));
        assert_eq!(t.rows()[1][0], Value::Int(0));
        assert!(t.rows()[2][1].is_null());
        t.truncate(1);
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn csv_rendering() {
        let t = sample();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ID,count");
        assert_eq!(lines[1], "0,5");
        assert_eq!(lines[3], "2,NULL");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["name".into()]);
        t.push_row(vec![Value::Str("a,b".into())]);
        t.push_row(vec![Value::Str("say \"hi\"".into())]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn display_alignment() {
        let t = sample();
        let s = t.to_string();
        assert!(s.starts_with("ID"));
        assert!(s.contains('9'));
    }
}
