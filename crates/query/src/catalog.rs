//! The pattern catalog: named patterns referenced by queries.

use crate::error::QueryError;
use ego_pattern::Pattern;
use std::collections::HashMap;

/// A registry of named patterns. `COUNTP(tri, ...)` looks up `tri` here.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    patterns: HashMap<String, Pattern>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog preloaded with the paper's built-in patterns
    /// ([`ego_pattern::builtin`]): the Figure 3 set plus `single_node`,
    /// `single_edge`, and the coordinator triad.
    pub fn with_builtins() -> Self {
        let mut c = Self::new();
        for p in ego_pattern::builtin::figure3() {
            c.insert(p);
        }
        c.insert(ego_pattern::builtin::single_node());
        c.insert(ego_pattern::builtin::single_edge());
        c.insert(ego_pattern::builtin::coordinator_triad());
        c
    }

    /// Parse a `PATTERN name { ... }` declaration and register it under
    /// its own name. Returns a reference to the stored pattern.
    pub fn define(&mut self, text: &str) -> Result<&Pattern, QueryError> {
        let p = Pattern::parse(text)?;
        let name = p.name().to_string();
        self.patterns.insert(name.clone(), p);
        Ok(&self.patterns[&name])
    }

    /// Register an already-built pattern under its name (replacing any
    /// previous definition).
    pub fn insert(&mut self, pattern: Pattern) {
        self.patterns.insert(pattern.name().to_string(), pattern);
    }

    /// Look up a pattern.
    pub fn get(&self, name: &str) -> Option<&Pattern> {
        self.patterns.get(name)
    }

    /// Look up or error.
    pub fn require(&self, name: &str) -> Result<&Pattern, QueryError> {
        self.get(name)
            .ok_or_else(|| QueryError::UnknownPattern(name.to_string()))
    }

    /// Registered pattern names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.patterns.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.get("tri").is_some());
        assert!(c.require("tri").is_ok());
        assert!(matches!(
            c.require("nope"),
            Err(QueryError::UnknownPattern(_))
        ));
    }

    #[test]
    fn bad_pattern_definition() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.define("PATTERN broken { ?A-?A; }"),
            Err(QueryError::PatternError(_))
        ));
    }

    #[test]
    fn redefinition_replaces() {
        let mut c = Catalog::new();
        c.define("PATTERN p { ?A; }").unwrap();
        c.define("PATTERN p { ?A-?B; }").unwrap();
        assert_eq!(c.get("p").unwrap().num_nodes(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn builtins_preloaded() {
        let c = Catalog::with_builtins();
        for name in [
            "clq3_unlb",
            "clq3",
            "clq4",
            "sqr",
            "path3",
            "star3",
            "single_node",
            "single_edge",
            "triad",
        ] {
            assert!(c.get(name).is_some(), "missing builtin {name}");
        }
    }
}
