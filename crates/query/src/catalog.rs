//! The pattern catalog: named patterns referenced by queries.
//!
//! Catalogs can be *layered*: a session catalog holds its own definitions
//! and falls through to a shared, immutable base catalog (the server's
//! built-ins) for anything it has not defined locally. Lookups check the
//! local layer first, then the base chain.

use crate::error::QueryError;
use ego_pattern::Pattern;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of named patterns. `COUNTP(tri, ...)` looks up `tri` here.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    patterns: HashMap<String, Pattern>,
    /// Shared read-only base layer consulted when a name is not local.
    base: Option<Arc<Catalog>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog preloaded with the paper's built-in patterns
    /// ([`ego_pattern::builtin`]): the Figure 3 set plus `single_node`,
    /// `single_edge`, and the coordinator triad.
    pub fn with_builtins() -> Self {
        let mut c = Self::new();
        for p in ego_pattern::builtin::figure3() {
            c.insert(p);
        }
        c.insert(ego_pattern::builtin::single_node());
        c.insert(ego_pattern::builtin::single_edge());
        c.insert(ego_pattern::builtin::coordinator_triad());
        c
    }

    /// An empty catalog layered over a shared base: lookups fall through
    /// to `base`, local definitions shadow nothing (defining a name that
    /// exists in any layer is an error; see [`Catalog::define`]).
    ///
    /// This is how server sessions share one built-in catalog without
    /// copying it per connection.
    pub fn layered(base: Arc<Catalog>) -> Self {
        Catalog {
            patterns: HashMap::new(),
            base: Some(base),
        }
    }

    /// Parse a `PATTERN name { ... }` declaration and register it under
    /// its own name. Returns a reference to the stored pattern.
    ///
    /// Defining a name that already exists — locally or in a base layer —
    /// is an error ([`QueryError::AlreadyDefined`]), so a session cannot
    /// silently shadow a shared built-in. Use
    /// [`Catalog::define_or_replace`] for explicit redefine semantics.
    pub fn define(&mut self, text: &str) -> Result<&Pattern, QueryError> {
        let p = Pattern::parse(text)?;
        let name = p.name().to_string();
        if self.get(&name).is_some() {
            return Err(QueryError::AlreadyDefined(name));
        }
        self.patterns.insert(name.clone(), p);
        Ok(&self.patterns[&name])
    }

    /// Parse a `PATTERN name { ... }` declaration and register it,
    /// replacing any previous local definition (and shadowing any base
    /// definition) of the same name.
    pub fn define_or_replace(&mut self, text: &str) -> Result<&Pattern, QueryError> {
        let p = Pattern::parse(text)?;
        let name = p.name().to_string();
        self.patterns.insert(name.clone(), p);
        Ok(&self.patterns[&name])
    }

    /// Register an already-built pattern under its name (replacing any
    /// previous local definition).
    pub fn insert(&mut self, pattern: Pattern) {
        self.patterns.insert(pattern.name().to_string(), pattern);
    }

    /// Look up a pattern: local layer first, then the base chain.
    pub fn get(&self, name: &str) -> Option<&Pattern> {
        match self.patterns.get(name) {
            Some(p) => Some(p),
            None => self.base.as_ref().and_then(|b| b.get(name)),
        }
    }

    /// Look up or error.
    pub fn require(&self, name: &str) -> Result<&Pattern, QueryError> {
        self.get(name)
            .ok_or_else(|| QueryError::UnknownPattern(name.to_string()))
    }

    /// Registered pattern names across all layers, sorted and deduplicated.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.patterns.keys().map(String::as_str).collect();
        if let Some(b) = &self.base {
            v.extend(b.names());
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of distinct pattern names across all layers.
    pub fn len(&self) -> usize {
        self.names().len()
    }

    /// True if no layer defines any pattern.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.get("tri").is_some());
        assert!(c.require("tri").is_ok());
        assert!(matches!(
            c.require("nope"),
            Err(QueryError::UnknownPattern(_))
        ));
    }

    #[test]
    fn bad_pattern_definition() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.define("PATTERN broken { ?A-?A; }"),
            Err(QueryError::PatternError(_))
        ));
    }

    #[test]
    fn duplicate_define_is_an_error() {
        let mut c = Catalog::new();
        c.define("PATTERN p { ?A; }").unwrap();
        let err = c.define("PATTERN p { ?A-?B; }").unwrap_err();
        assert!(matches!(err, QueryError::AlreadyDefined(ref n) if n == "p"));
        assert!(err.to_string().contains("already defined"), "{err}");
        // The original definition is untouched.
        assert_eq!(c.get("p").unwrap().num_nodes(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn define_or_replace_redefines() {
        let mut c = Catalog::new();
        c.define("PATTERN p { ?A; }").unwrap();
        c.define_or_replace("PATTERN p { ?A-?B; }").unwrap();
        assert_eq!(c.get("p").unwrap().num_nodes(), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn layered_lookup_and_duplicate_detection() {
        let base = Arc::new(Catalog::with_builtins());
        let mut session = Catalog::layered(base.clone());
        // Base patterns resolve through the layer.
        assert!(session.get("clq3").is_some());
        assert_eq!(session.len(), base.len());
        // Local definitions are visible locally but never leak to base.
        session.define("PATTERN mine { ?A-?B; }").unwrap();
        assert!(session.get("mine").is_some());
        assert!(base.get("mine").is_none());
        assert_eq!(session.len(), base.len() + 1);
        // Redefining a base pattern is rejected...
        assert!(matches!(
            session.define("PATTERN clq3 { ?A-?B; }"),
            Err(QueryError::AlreadyDefined(_))
        ));
        // ...unless explicitly requested, in which case it shadows.
        session
            .define_or_replace("PATTERN clq3 { ?A-?B; }")
            .unwrap();
        assert_eq!(session.get("clq3").unwrap().num_nodes(), 2);
        assert_ne!(
            base.get("clq3").unwrap().num_nodes(),
            2,
            "base must be unchanged"
        );
    }

    #[test]
    fn builtins_preloaded() {
        let c = Catalog::with_builtins();
        for name in [
            "clq3_unlb",
            "clq3",
            "clq4",
            "sqr",
            "path3",
            "star3",
            "single_node",
            "single_edge",
            "triad",
        ] {
            assert!(c.get(name).is_some(), "missing builtin {name}");
        }
    }
}
