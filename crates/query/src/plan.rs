//! The logical plan tree: what a statement *means*, before the optimizer
//! decides how to run it.
//!
//! `parse → plan → optimize → execute`: [`build_plan`] turns a parsed
//! [`SelectStmt`] into a [`Plan`] whose node tree spells out the
//! execution shape (scan → filter → shard → census → project →
//! order → limit); the optimizer passes ([`crate::optimizer`]) then
//! annotate and rewrite it (shard pushdown, cache substitution,
//! cost-based algorithm choice, batch grouping); the executor interprets
//! the optimized tree. The tree is also the unit other layers reason
//! about: the shard router asks [`Plan::is_scatterable`] instead of
//! re-deriving scatterability from SQL text, and `EXPLAIN` renders the
//! tree directly.
//!
//! Building a logical plan needs no catalog and no graph — pattern names
//! stay unresolved until the optimizer runs inside an engine. That is
//! what lets a router (which has neither) plan a statement it will never
//! execute itself.

use crate::ast::{NeighborhoodAst, OrderKey, Projection, SelectStmt};
use crate::error::QueryError;
use crate::parser::{is_mutation_statement, parse_query};
use crate::shard::ShardSpec;
use ego_census::{Algorithm, BatchStage};

/// A planned statement: the parsed AST plus the plan-node tree over it.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The parsed statement (projection/expression details live here;
    /// the tree holds structure and optimizer annotations).
    pub stmt: SelectStmt,
    /// Root of the node tree (outermost operator).
    pub root: PlanNode,
}

/// One operator in the plan tree.
#[derive(Clone, Debug)]
pub enum PlanNode {
    /// Full scan of the `nodes` relation.
    Scan {
        /// Table alias (`nodes` unless aliased).
        alias: String,
    },
    /// WHERE predicate over the scan (the predicate expression itself
    /// lives in `stmt.where_clause`).
    Filter {
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// Focal-shard restriction `i/n`, applied *after* the filter so the
    /// `RND()` stream stays aligned across shards. Inserted by the
    /// shard-pushdown pass; never present in a fresh logical plan.
    Shard {
        /// The shard.
        spec: ShardSpec,
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// Single-focal census aggregates (COUNTP/COUNTSP over
    /// `SUBGRAPH(ID, k)`), executed as one batch.
    Census(CensusNode),
    /// Census aggregates served entirely from materialized views: a
    /// pure gather over pinned count vectors, zero graph traversal.
    /// The view-substitution pass rewrites a [`PlanNode::Census`] into
    /// this when every job has a fresh view with matching coverage.
    ViewProbe {
        /// One probe per census aggregate in the SELECT list.
        probes: Vec<ViewProbeJob>,
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// Pairwise census aggregates (`SUBGRAPH-INTERSECTION`/`-UNION`),
    /// executed per ordered node pair.
    PairCensus {
        /// Number of aggregate projections.
        aggs: usize,
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// SELECT-list projection.
    Project {
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// ORDER BY.
    Order {
        /// Sort keys (projection ordinals).
        keys: Vec<OrderKey>,
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// LIMIT.
    Limit {
        /// Row cap.
        n: usize,
        /// Input operator.
        input: Box<PlanNode>,
    },
}

/// The census operator: the statement's aggregate jobs plus everything
/// the optimizer decided about running them.
#[derive(Clone, Debug)]
pub struct CensusNode {
    /// One job per census aggregate in the SELECT list.
    pub jobs: Vec<CensusJob>,
    /// The algorithm decision (filled by the algorithm-selection pass).
    pub choice: Option<AlgoChoice>,
    /// Shared-work batch stages (filled by the batch-grouping pass;
    /// indices refer to `jobs` order).
    pub stages: Vec<BatchStage>,
    /// Input operator.
    pub input: Box<PlanNode>,
}

/// One census aggregate, by name — unresolved until the optimizer runs
/// against a catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CensusJob {
    /// Index into `stmt.projections`.
    pub projection: usize,
    /// Pattern name.
    pub pattern: String,
    /// Neighborhood radius.
    pub k: u32,
    /// COUNTSP subpattern name.
    pub subpattern: Option<String>,
    /// What the census cache holds for this job (cache-substitution
    /// pass).
    pub cached_matches: MatchHint,
    /// Whether the count vector for this job's focal set is cached.
    pub cached_counts: CountHint,
}

/// One census aggregate resolved against a materialized view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewProbeJob {
    /// Index into `stmt.projections`.
    pub projection: usize,
    /// Pattern name (as written in the statement).
    pub pattern: String,
    /// Canonical pattern DSL — the view registry key component the
    /// executor re-probes with.
    pub dsl: String,
    /// Neighborhood radius.
    pub k: u32,
    /// COUNTSP subpattern name.
    pub subpattern: Option<String>,
    /// Length of the view's pinned match list, if it keeps one
    /// (EXPLAIN provenance).
    pub matches: Option<usize>,
    /// The view's focal coverage (`None` = whole graph).
    pub coverage: Option<ShardSpec>,
}

/// Census-cache knowledge about a job's global match list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MatchHint {
    /// Not probed (no cache attached).
    #[default]
    Unknown,
    /// Probed, absent.
    Miss,
    /// Probed, present, with the exact list length (feeds the cost
    /// model's `m` term).
    Hit(usize),
}

/// Census-cache knowledge about a job's count vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CountHint {
    /// Not probed — no cache, or the focal set depends on a WHERE
    /// clause the planner did not evaluate.
    #[default]
    Unknown,
    /// Probed, absent.
    Miss,
    /// Probed, present: execution will not traverse at all.
    Hit,
}

/// Which inputs backed the cost model for a choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsBasis {
    /// A fresh `ANALYZE` snapshot.
    Analyzed,
    /// A snapshot exists but its fingerprint no longer matches the live
    /// graph; the structural heuristic was used instead.
    Stale,
    /// No snapshot at all; structural heuristic.
    Heuristic,
}

impl StatsBasis {
    /// Stable lowercase label for EXPLAIN output.
    pub fn label(&self) -> &'static str {
        match self {
            StatsBasis::Analyzed => "analyzed",
            StatsBasis::Stale => "stale",
            StatsBasis::Heuristic => "heuristic",
        }
    }
}

/// The algorithm-selection pass's verdict for one census node.
#[derive(Clone, Debug)]
pub struct AlgoChoice {
    /// The algorithm execution will use.
    pub algorithm: Algorithm,
    /// True when the engine was configured with a concrete algorithm
    /// (not `Auto`) — the choice is honored, alternatives still ranked.
    pub forced: bool,
    /// What fed the cost model.
    pub stats: StatsBasis,
    /// Every algorithm that can serve all jobs, with its estimated
    /// cost, cheapest first.
    pub considered: Vec<(Algorithm, f64)>,
}

impl AlgoChoice {
    /// Estimated cost of the chosen algorithm (infinity if the chosen
    /// algorithm was forced onto a job set it cannot serve — execution
    /// will surface the real error).
    pub fn cost(&self) -> f64 {
        self.considered
            .iter()
            .find(|(a, _)| *a == self.algorithm)
            .map(|(_, c)| *c)
            .unwrap_or(f64::INFINITY)
    }
}

/// Build the logical plan for a parsed statement. Pure tree
/// construction: no catalog, no graph, no validation beyond shape (deep
/// semantic checks stay in the executor so error messages are
/// unchanged).
pub fn build_plan(stmt: &SelectStmt) -> Plan {
    let alias = stmt
        .tables
        .first()
        .map(|t| t.alias.clone())
        .unwrap_or_else(|| "nodes".to_string());
    let mut node = PlanNode::Scan { alias };
    if stmt.where_clause.is_some() {
        node = PlanNode::Filter {
            input: Box::new(node),
        };
    }
    let pairwise = stmt.tables.len() >= 2;
    let jobs: Vec<CensusJob> = stmt
        .projections
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Projection::Agg(call) if !pairwise => {
                // Pair neighborhoods inside a single-table statement are
                // a semantic error the executor reports; they carry no
                // radius we can plan with.
                let k = match call.neighborhood {
                    NeighborhoodAst::Subgraph { k, .. } => k,
                    _ => return None,
                };
                Some(CensusJob {
                    projection: i,
                    pattern: call.pattern.clone(),
                    k,
                    subpattern: call.subpattern.clone(),
                    cached_matches: MatchHint::Unknown,
                    cached_counts: CountHint::Unknown,
                })
            }
            _ => None,
        })
        .collect();
    let num_aggs = stmt
        .projections
        .iter()
        .filter(|p| matches!(p, Projection::Agg(_)))
        .count();
    if pairwise && num_aggs > 0 {
        node = PlanNode::PairCensus {
            aggs: num_aggs,
            input: Box::new(node),
        };
    } else if !jobs.is_empty() {
        node = PlanNode::Census(CensusNode {
            jobs,
            choice: None,
            stages: Vec::new(),
            input: Box::new(node),
        });
    }
    node = PlanNode::Project {
        input: Box::new(node),
    };
    if !stmt.order_by.is_empty() {
        node = PlanNode::Order {
            keys: stmt.order_by.clone(),
            input: Box::new(node),
        };
    }
    if let Some(n) = stmt.limit {
        node = PlanNode::Limit {
            n,
            input: Box::new(node),
        };
    }
    Plan {
        stmt: stmt.clone(),
        root: node,
    }
}

/// Parse one statement and build its logical plan — the catalog-free
/// entry point front ends (the shard router) use to reason about a
/// statement's shape without executing it. Mutations, `ANALYZE`, and
/// `EXPLAIN` have no SELECT plan and error here.
pub fn plan_statement(sql: &str) -> Result<Plan, QueryError> {
    let trimmed = sql.trim();
    if is_mutation_statement(trimmed) {
        return Err(QueryError::Semantic(
            "mutation statements have no query plan".into(),
        ));
    }
    if crate::parser::is_analyze_statement(trimmed) {
        return Err(QueryError::Semantic(
            "ANALYZE has no query plan; it profiles the graph".into(),
        ));
    }
    if crate::parser::is_materialize_statement(trimmed)
        || crate::parser::is_drop_view_statement(trimmed)
    {
        return Err(QueryError::Semantic(
            "view maintenance statements have no query plan".into(),
        ));
    }
    if trimmed.len() >= 7 && trimmed[..7].eq_ignore_ascii_case("EXPLAIN") {
        return Err(QueryError::Semantic(
            "EXPLAIN wraps a statement; plan the inner statement".into(),
        ));
    }
    let stmt = parse_query(trimmed)?;
    Ok(build_plan(&stmt))
}

impl Plan {
    /// Can the shard router scatter this statement across focal shards
    /// and merge by concatenation? True exactly when the tree has no
    /// pairwise census (pairs cross shard boundaries) and no
    /// ORDER BY / LIMIT (both are global, not per-shard).
    pub fn is_scatterable(&self) -> bool {
        fn walk(node: &PlanNode) -> bool {
            match node {
                PlanNode::Order { .. } | PlanNode::Limit { .. } | PlanNode::PairCensus { .. } => {
                    false
                }
                PlanNode::Scan { .. } => true,
                PlanNode::Filter { input }
                | PlanNode::Shard { input, .. }
                | PlanNode::ViewProbe { input, .. }
                | PlanNode::Project { input } => walk(input),
                PlanNode::Census(c) => walk(&c.input),
            }
        }
        walk(&self.root)
    }

    /// The census node, if the plan has one.
    pub fn census(&self) -> Option<&CensusNode> {
        fn walk(node: &PlanNode) -> Option<&CensusNode> {
            match node {
                PlanNode::Census(c) => Some(c),
                PlanNode::Filter { input }
                | PlanNode::Shard { input, .. }
                | PlanNode::ViewProbe { input, .. }
                | PlanNode::Project { input }
                | PlanNode::Order { input, .. }
                | PlanNode::Limit { input, .. }
                | PlanNode::PairCensus { input, .. } => walk(input),
                PlanNode::Scan { .. } => None,
            }
        }
        walk(&self.root)
    }

    /// The view-probe node, if the view-substitution pass rewrote the
    /// census into one.
    pub fn view_probe(&self) -> Option<&[ViewProbeJob]> {
        fn walk(node: &PlanNode) -> Option<&[ViewProbeJob]> {
            match node {
                PlanNode::ViewProbe { probes, .. } => Some(probes),
                PlanNode::Filter { input }
                | PlanNode::Shard { input, .. }
                | PlanNode::Project { input }
                | PlanNode::Order { input, .. }
                | PlanNode::Limit { input, .. }
                | PlanNode::PairCensus { input, .. } => walk(input),
                PlanNode::Census(c) => walk(&c.input),
                PlanNode::Scan { .. } => None,
            }
        }
        walk(&self.root)
    }

    /// The algorithm decision, if the optimizer made one.
    pub fn choice(&self) -> Option<&AlgoChoice> {
        self.census().and_then(|c| c.choice.as_ref())
    }

    /// The shard restriction, if the shard-pushdown pass inserted one.
    pub fn shard(&self) -> Option<ShardSpec> {
        fn walk(node: &PlanNode) -> Option<ShardSpec> {
            match node {
                PlanNode::Shard { spec, .. } => Some(*spec),
                PlanNode::Filter { input }
                | PlanNode::Project { input }
                | PlanNode::ViewProbe { input, .. }
                | PlanNode::Order { input, .. }
                | PlanNode::Limit { input, .. }
                | PlanNode::PairCensus { input, .. } => walk(input),
                PlanNode::Census(c) => walk(&c.input),
                PlanNode::Scan { .. } => None,
            }
        }
        walk(&self.root)
    }
}

impl PlanNode {
    /// Rebuild the tree with `f` applied to the census node (if any) —
    /// the shape every optimizer pass uses: passes own the tree, edit
    /// the census operator, and hand the tree back.
    pub fn map_census(
        self,
        f: &mut impl FnMut(CensusNode) -> Result<CensusNode, QueryError>,
    ) -> Result<PlanNode, QueryError> {
        Ok(match self {
            PlanNode::Census(c) => PlanNode::Census(f(c)?),
            PlanNode::Filter { input } => PlanNode::Filter {
                input: Box::new(input.map_census(f)?),
            },
            PlanNode::Shard { spec, input } => PlanNode::Shard {
                spec,
                input: Box::new(input.map_census(f)?),
            },
            PlanNode::Project { input } => PlanNode::Project {
                input: Box::new(input.map_census(f)?),
            },
            PlanNode::Order { keys, input } => PlanNode::Order {
                keys,
                input: Box::new(input.map_census(f)?),
            },
            PlanNode::Limit { n, input } => PlanNode::Limit {
                n,
                input: Box::new(input.map_census(f)?),
            },
            PlanNode::PairCensus { aggs, input } => PlanNode::PairCensus {
                aggs,
                input: Box::new(input.map_census(f)?),
            },
            PlanNode::ViewProbe { probes, input } => PlanNode::ViewProbe {
                probes,
                input: Box::new(input.map_census(f)?),
            },
            leaf @ PlanNode::Scan { .. } => leaf,
        })
    }

    /// Operator name for EXPLAIN rendering.
    pub fn name(&self) -> &'static str {
        match self {
            PlanNode::Scan { .. } => "scan",
            PlanNode::Filter { .. } => "filter",
            PlanNode::Shard { .. } => "shard",
            PlanNode::Census(_) => "census",
            PlanNode::ViewProbe { .. } => "view-probe",
            PlanNode::PairCensus { .. } => "pair-census",
            PlanNode::Project { .. } => "project",
            PlanNode::Order { .. } => "order",
            PlanNode::Limit { .. } => "limit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(sql: &str) -> Plan {
        plan_statement(sql).expect(sql)
    }

    #[test]
    fn tree_shape_single_table() {
        let p = plan("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes WHERE age > 10");
        // project → census → filter → scan
        let PlanNode::Project { input } = &p.root else {
            panic!("root must be project, got {:?}", p.root.name());
        };
        let PlanNode::Census(c) = input.as_ref() else {
            panic!("expected census under project");
        };
        assert_eq!(c.jobs.len(), 1);
        assert_eq!(c.jobs[0].pattern, "tri");
        assert_eq!(c.jobs[0].k, 2);
        assert_eq!(c.jobs[0].projection, 1);
        assert!(c.choice.is_none(), "fresh logical plan is unoptimized");
        assert!(matches!(c.input.as_ref(), PlanNode::Filter { .. }));
        assert!(p.shard().is_none());
        assert!(p.is_scatterable());
    }

    #[test]
    fn tree_shape_order_limit_and_pairs() {
        let p = plan("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes ORDER BY 2 DESC LIMIT 3");
        assert!(matches!(&p.root, PlanNode::Limit { n: 3, .. }));
        assert!(!p.is_scatterable());

        let pair = plan(
            "SELECT n1.ID, n2.ID, COUNTP(tri, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) \
             FROM nodes n1, nodes n2",
        );
        assert!(pair.census().is_none());
        assert!(!pair.is_scatterable());
        let PlanNode::Project { input } = &pair.root else {
            panic!("root must be project");
        };
        assert!(matches!(
            input.as_ref(),
            PlanNode::PairCensus { aggs: 1, .. }
        ));
    }

    #[test]
    fn plain_selects_have_no_census_node() {
        let p = plan("SELECT ID FROM nodes");
        assert!(p.census().is_none());
        assert!(p.is_scatterable());
        let PlanNode::Project { input } = &p.root else {
            panic!("root must be project");
        };
        assert!(matches!(input.as_ref(), PlanNode::Scan { .. }));
    }

    #[test]
    fn countsp_and_multi_agg_jobs() {
        let p = plan(
            "SELECT ID, COUNTSP(s, tri, SUBGRAPH(ID, 1)), COUNTP(sq, SUBGRAPH(ID, 2)) FROM nodes",
        );
        let c = p.census().unwrap();
        assert_eq!(c.jobs.len(), 2);
        assert_eq!(c.jobs[0].subpattern.as_deref(), Some("s"));
        assert_eq!(c.jobs[1].pattern, "sq");
        assert_eq!(c.jobs[1].projection, 2);
    }

    #[test]
    fn non_plannable_statements_error() {
        assert!(plan_statement("INSERT EDGE (0, 1)").is_err());
        assert!(plan_statement("ANALYZE").is_err());
        assert!(plan_statement("MATERIALIZE tri RADIUS 2").is_err());
        assert!(plan_statement("DROP VIEW tri RADIUS 2").is_err());
        assert!(plan_statement("EXPLAIN SELECT ID FROM nodes").is_err());
        assert!(plan_statement("SELECT FROM").is_err());
    }

    #[test]
    fn map_census_edits_in_place() {
        let p = plan("SELECT COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes WHERE RND() < 0.5");
        let spec = ShardSpec::new(1, 4).unwrap();
        let root = p
            .root
            .map_census(&mut |mut c| {
                c.input = Box::new(PlanNode::Shard {
                    spec,
                    input: c.input,
                });
                Ok(c)
            })
            .unwrap();
        let p = Plan { root, ..p };
        assert_eq!(p.shard(), Some(spec));
        // Shard landed between filter and census.
        let c = p.census().unwrap();
        let PlanNode::Shard { input, .. } = c.input.as_ref() else {
            panic!("census input must be the shard node");
        };
        assert!(matches!(input.as_ref(), PlanNode::Filter { .. }));
    }
}
