//! # ego-query
//!
//! The SQL-based declarative language for ego-centric pattern census
//! queries (Section II of the paper).
//!
//! Queries run against a logical view of the graph as `nodes(ID, ...)`;
//! attribute references are resolved dynamically. Two user-defined
//! aggregates drive the census:
//!
//! * `COUNTP(pattern, S)` — count matches of `pattern` in neighborhood `S`;
//! * `COUNTSP(subpattern, pattern, S)` — count matches whose `subpattern`
//!   images fall in `S`.
//!
//! where `S` is `SUBGRAPH(ID, k)`, `SUBGRAPH-INTERSECTION(n1.ID, n2.ID, k)`,
//! or `SUBGRAPH-UNION(n1.ID, n2.ID, k)`.
//!
//! ```
//! use ego_graph::{GraphBuilder, Label, NodeId};
//! use ego_query::QueryEngine;
//!
//! let mut b = GraphBuilder::undirected();
//! b.add_nodes(5, Label(0));
//! for (x, y) in [(0u32, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)] {
//!     b.add_edge(NodeId(x), NodeId(y));
//! }
//! let g = b.build();
//!
//! let mut engine = QueryEngine::new(&g);
//! engine
//!     .catalog_mut()
//!     .define("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }")
//!     .unwrap();
//! let table = engine
//!     .execute("SELECT ID, COUNTP(tri, SUBGRAPH(ID, 1)) FROM nodes")
//!     .unwrap();
//! assert_eq!(table.num_rows(), 5);
//! // Node 2 participates in both triangles.
//! assert_eq!(table.rows()[2][1].as_int(), Some(2));
//! ```

pub mod ast;
pub mod canon;
pub mod catalog;
pub mod census_cache;
pub mod error;
pub mod executor;
pub mod expr;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod shard;
pub mod stats;
pub mod subscribe;
pub mod table;
pub mod value;
pub mod views;

pub use ast::{DropViewStmt, MaterializeStmt, MutationKind, MutationStmt};
pub use canon::canonical_query_key;
pub use catalog::Catalog;
pub use census_cache::{CensusCache, CensusCacheStats, CountMeta};
pub use error::QueryError;
pub use executor::QueryEngine;
pub use parser::{
    is_analyze_statement, is_drop_view_statement, is_materialize_statement, is_mutation_statement,
    parse_drop_view, parse_materialize, parse_mutations,
};
pub use plan::{build_plan, plan_statement, Plan, PlanNode, StatsBasis};
pub use shard::ShardSpec;
pub use stats::{GraphStats, PlannerCounters, StatsSlot};
pub use subscribe::{
    is_subscribe_statement, strip_subscribe, ChangedRow, SubscriptionAgg, SubscriptionSpec,
};
pub use table::Table;
pub use value::Value;
pub use views::{ViewEntry, ViewRegistry, ViewStats, DEFAULT_VIEW_BUDGET};

// The census algorithm enum, re-exported so front ends (server, shard
// router) can configure engines without depending on ego-census.
pub use ego_census::Algorithm;
