//! Materialized census views: a byte-budgeted tier of *pinned*,
//! incrementally-maintained count indexes.
//!
//! The existing caches are memoization: the server's `QueryCache` holds
//! encoded result tables, [`crate::census_cache::CensusCache`] holds
//! match lists and count vectors, and both drop entries by LRU pressure
//! or fingerprint change. A *view* is a managed index instead
//! (`MATERIALIZE <pattern> RADIUS k [MATCHES]`): the full per-focal
//! count vector for a pattern over the engine's entire focal coverage,
//! pinned until `DROP VIEW` or explicit budget eviction
//! (**largest-first**, deterministic, surfaced in stats), persisted as a
//! fingerprint-tagged `<graph>.views` sidecar so restarts are warm, and
//! kept *fresh* across `update`s by the incremental engine's dirty-focal
//! refresh (`ego-dynamic::update_batch_on`) rather than invalidated.
//!
//! Any `COUNTP`/`COUNTSP` over a materialized `(pattern, k, subpattern)`
//! — arbitrary focal subsets included — is rewritten by the optimizer's
//! view-substitution pass into a `ViewProbe` plan node: a pure gather
//! over the pinned [`CountVector`] with zero graph traversal.
//!
//! Views shard by focal range exactly like scatter: a view carries the
//! [`ShardSpec`] coverage it was materialized under, and substitution
//! fires only when the probing engine's focal shard matches — a fleet of
//! per-shard views serves scattered statements just as per-shard engines
//! serve them.

use crate::error::QueryError;
use crate::shard::ShardSpec;
use ego_census::CountVector;
use ego_graph::NodeId;
use ego_matcher::{MatchList, PatternMatch};
use ego_pattern::Pattern;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sidecar format version (first line: `egoviews v<N>`).
const VIEWS_VERSION: u32 = 1;

/// Default view budget when none is configured: 64 MiB.
pub const DEFAULT_VIEW_BUDGET: usize = 64 << 20;

/// One materialized view: a pattern's full per-focal count vector (and
/// optionally its maintained global match list) over one focal coverage.
#[derive(Clone, Debug)]
pub struct ViewEntry {
    /// The resolved pattern, owned (detached from any session catalog).
    pub pattern: Pattern,
    /// Canonical pattern DSL (key component; re-parseable).
    pub dsl: String,
    /// Neighborhood radius.
    pub k: u32,
    /// COUNTSP subpattern name, if the view serves COUNTSP.
    pub subpattern: Option<String>,
    /// Full count vector over the coverage: `counts.get(n)` for every
    /// covered `n`, focal flags marking the coverage set.
    pub counts: Arc<CountVector>,
    /// The global match list, maintained across updates, when the view
    /// was materialized `MATCHES`.
    pub matches: Option<Arc<MatchList>>,
    /// Fingerprint of the graph these counts describe. Kept current by
    /// refresh; a mismatch (crash between swap and refresh) blocks
    /// substitution.
    pub fingerprint: u64,
    /// Focal coverage: `None` = whole graph, `Some(i/n)` = that shard's
    /// contiguous node-ID range (the sharded tier's partitioning).
    pub shard: Option<ShardSpec>,
    /// Estimated resident size, charged against the registry budget.
    pub bytes: usize,
}

impl ViewEntry {
    /// Estimated resident bytes of a view with these counts/matches:
    /// 8 bytes per count + 1 per focal flag, plus 4 per match image.
    pub fn estimate_bytes(counts: &CountVector, matches: Option<&MatchList>) -> usize {
        let count_bytes = counts.len() * 9;
        let match_bytes = matches
            .map(|m| m.iter().map(|pm| pm.nodes.len() * 4).sum())
            .unwrap_or(0);
        count_bytes + match_bytes
    }
}

/// Occupancy and lifecycle counters, surfaced as `view_*` stats rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Live views.
    pub entries: usize,
    /// Total resident bytes across live views.
    pub bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Statements served from a view (pure gather, zero traversal).
    pub hits: u64,
    /// Incremental refreshes applied across updates.
    pub refreshes: u64,
    /// Views evicted by budget pressure (largest-first).
    pub evictions: u64,
    /// Views dropped explicitly (`DROP VIEW`).
    pub drops: u64,
    /// Views created by `MATERIALIZE`.
    pub materializations: u64,
    /// Views adopted from a warm sidecar at open.
    pub sidecar_loads: u64,
}

/// Thread-safe registry of materialized views. Entries are pinned: only
/// `DROP VIEW`, [`ViewRegistry::clear`], or budget eviction on insert
/// removes one — graph mutations *refresh* entries in place.
pub struct ViewRegistry {
    entries: Mutex<BTreeMap<String, Arc<ViewEntry>>>,
    budget_bytes: usize,
    hits: AtomicU64,
    refreshes: AtomicU64,
    evictions: AtomicU64,
    drops: AtomicU64,
    materializations: AtomicU64,
    sidecar_loads: AtomicU64,
}

impl ViewRegistry {
    /// Registry with a byte budget. `0` admits nothing (every
    /// `MATERIALIZE` errors), which is how views are disabled.
    pub fn new(budget_bytes: usize) -> Self {
        ViewRegistry {
            entries: Mutex::new(BTreeMap::new()),
            budget_bytes,
            hits: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            materializations: AtomicU64::new(0),
            sidecar_loads: AtomicU64::new(0),
        }
    }

    /// The registry key for a view: pattern DSL + radius + subpattern.
    /// Fingerprint and shard are *not* in the key — a view is one logical
    /// index whose contents follow the graph; probes check both fields
    /// on the entry instead.
    pub fn view_key(dsl: &str, k: u32, subpattern: Option<&str>) -> String {
        format!("{dsl}|k={k}|sp={}", subpattern.unwrap_or("-"))
    }

    /// Pin a new view (replacing any same-key predecessor). Under budget
    /// pressure other views are evicted **largest-first** (ties by key,
    /// ascending) until the registry fits; evicted keys are returned so
    /// callers can report them. A view larger than the whole budget is
    /// rejected.
    pub fn insert(&self, entry: ViewEntry) -> Result<Vec<String>, QueryError> {
        if entry.bytes > self.budget_bytes {
            return Err(QueryError::Semantic(format!(
                "view `{}` needs {} bytes but the view budget is {} bytes; \
                 raise the budget or drop other views",
                Self::view_key(&entry.dsl, entry.k, entry.subpattern.as_deref()),
                entry.bytes,
                self.budget_bytes
            )));
        }
        let key = Self::view_key(&entry.dsl, entry.k, entry.subpattern.as_deref());
        let mut entries = self.entries.lock().unwrap();
        entries.insert(key.clone(), Arc::new(entry));
        let evicted = Self::evict_to_budget(&mut entries, self.budget_bytes, &key);
        drop(entries);
        self.materializations.fetch_add(1, Ordering::Relaxed);
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        Ok(evicted)
    }

    /// Largest-first eviction (ties by key, ascending) until total bytes
    /// fit the budget, never evicting `keep` (the entry being inserted
    /// or refreshed). Deterministic: equal registries evict equally.
    fn evict_to_budget(
        entries: &mut BTreeMap<String, Arc<ViewEntry>>,
        budget: usize,
        keep: &str,
    ) -> Vec<String> {
        let mut evicted = Vec::new();
        loop {
            let total: usize = entries.values().map(|e| e.bytes).sum();
            if total <= budget {
                break;
            }
            let victim = entries
                .iter()
                .filter(|(k, _)| k.as_str() != keep)
                .max_by(|(ka, a), (kb, b)| a.bytes.cmp(&b.bytes).then(kb.cmp(ka)))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    entries.remove(&k);
                    evicted.push(k);
                }
                None => break, // only `keep` remains; insert() pre-checked its size
            }
        }
        evicted
    }

    /// Serve a probe: the entry for `(dsl, k, subpattern)` if it exists,
    /// is fresh for `fingerprint`, and covers exactly `shard`. Counts a
    /// hit when served.
    pub fn get(
        &self,
        dsl: &str,
        k: u32,
        subpattern: Option<&str>,
        fingerprint: u64,
        shard: Option<ShardSpec>,
    ) -> Option<Arc<ViewEntry>> {
        let e = self.peek(dsl, k, subpattern, fingerprint, shard)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(e)
    }

    /// Non-counting probe (the optimizer and `EXPLAIN` use this so
    /// planning does not skew the hit counter).
    pub fn peek(
        &self,
        dsl: &str,
        k: u32,
        subpattern: Option<&str>,
        fingerprint: u64,
        shard: Option<ShardSpec>,
    ) -> Option<Arc<ViewEntry>> {
        let entries = self.entries.lock().unwrap();
        let e = entries.get(&Self::view_key(dsl, k, subpattern))?;
        if e.fingerprint != fingerprint || e.shard != shard {
            return None;
        }
        Some(Arc::clone(e))
    }

    /// Drop a view. Returns the dropped entry, or `None` if absent.
    pub fn remove(&self, dsl: &str, k: u32, subpattern: Option<&str>) -> Option<Arc<ViewEntry>> {
        let removed = self
            .entries
            .lock()
            .unwrap()
            .remove(&Self::view_key(dsl, k, subpattern));
        if removed.is_some() {
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Snapshot of every live view, in key order. The refresh driver
    /// iterates this to batch all views into one incremental update.
    pub fn snapshot(&self) -> Vec<Arc<ViewEntry>> {
        self.entries.lock().unwrap().values().cloned().collect()
    }

    /// Install a refreshed body for an existing view: new counts, new
    /// match list, new fingerprint; pattern/k/subpattern/shard unchanged.
    /// No-op if the view was dropped concurrently.
    pub fn install_refreshed(
        &self,
        dsl: &str,
        k: u32,
        subpattern: Option<&str>,
        counts: Arc<CountVector>,
        matches: Option<Arc<MatchList>>,
        fingerprint: u64,
    ) {
        let key = Self::view_key(dsl, k, subpattern);
        let mut entries = self.entries.lock().unwrap();
        let Some(old) = entries.get(&key) else { return };
        let bytes = ViewEntry::estimate_bytes(&counts, matches.as_deref());
        let fresh = ViewEntry {
            pattern: old.pattern.clone(),
            dsl: old.dsl.clone(),
            k: old.k,
            subpattern: old.subpattern.clone(),
            counts,
            matches,
            fingerprint,
            shard: old.shard,
            bytes,
        };
        entries.insert(key.clone(), Arc::new(fresh));
        // A grown match list can push past the budget; the refreshed
        // view itself is pinned, others pay largest-first.
        let evicted = Self::evict_to_budget(&mut entries, self.budget_bytes, &key);
        drop(entries);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        self.evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
    }

    /// Drop every view (server shutdown paths and tests).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// Occupancy and counters.
    pub fn stats(&self) -> ViewStats {
        let entries = self.entries.lock().unwrap();
        ViewStats {
            entries: entries.len(),
            bytes: entries.values().map(|e| e.bytes).sum(),
            budget_bytes: self.budget_bytes,
            hits: self.hits.load(Ordering::Relaxed),
            refreshes: self.refreshes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
            sidecar_loads: self.sidecar_loads.load(Ordering::Relaxed),
        }
    }

    // --- sidecar persistence ---

    /// The views sidecar path for a graph file (`g.egb` → `g.egb.views`).
    pub fn sidecar_path(graph_path: &Path) -> PathBuf {
        let mut os = graph_path.as_os_str().to_os_string();
        os.push(".views");
        PathBuf::from(os)
    }

    /// Serialize every live view as the text sidecar, tagged with the
    /// graph fingerprint the counts describe.
    pub fn to_sidecar(&self, fingerprint: u64) -> String {
        let mut out = String::new();
        out.push_str(&format!("egoviews v{VIEWS_VERSION}\n"));
        out.push_str(&format!("fingerprint {fingerprint:016x}\n"));
        for e in self.snapshot() {
            out.push_str(&format!(
                "view k={} sp={} shard={} dsl={}\n",
                e.k,
                e.subpattern.as_deref().unwrap_or("-"),
                e.shard.map_or("-".to_string(), |s| s.to_string()),
                e.dsl
            ));
            out.push_str(&format!("focal {}\n", focal_ranges(&e.counts)));
            let counts: Vec<String> = e.counts.iter_focal().map(|(_, c)| c.to_string()).collect();
            out.push_str(&format!("counts {}\n", counts.join(" ")));
            if let Some(m) = &e.matches {
                out.push_str(&format!("matches {}\n", m.len()));
                for pm in m.iter() {
                    let imgs: Vec<String> = pm.nodes.iter().map(|n| n.0.to_string()).collect();
                    out.push_str(&format!("match {}\n", imgs.join(" ")));
                }
            }
            out.push_str("end\n");
        }
        out
    }

    /// Write the sidecar.
    pub fn save(&self, path: &Path, fingerprint: u64) -> Result<(), QueryError> {
        std::fs::write(path, self.to_sidecar(fingerprint))
            .map_err(|e| QueryError::Semantic(format!("cannot write {}: {e}", path.display())))
    }

    /// Parse a sidecar into `(fingerprint, views)`. `num_nodes` sizes the
    /// reconstructed count vectors (the live graph's node count; a
    /// mismatching sidecar fails parsing, which adoption treats as
    /// stale-equivalent).
    pub fn parse_sidecar(text: &str, num_nodes: usize) -> Result<(u64, Vec<ViewEntry>), String> {
        let mut lines = text.lines().peekable();
        match lines.next() {
            Some(h) if h.trim() == format!("egoviews v{VIEWS_VERSION}") => {}
            Some(h) => return Err(format!("unsupported views header `{}`", h.trim())),
            None => return Err("empty views sidecar".into()),
        }
        let fp_line = lines.next().ok_or("views sidecar missing fingerprint")?;
        let fingerprint = fp_line
            .trim()
            .strip_prefix("fingerprint ")
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or_else(|| format!("bad fingerprint line `{}`", fp_line.trim()))?;
        let mut views = Vec::new();
        while let Some(line) = lines.next() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("view ")
                .ok_or_else(|| format!("expected `view` line, found `{line}`"))?;
            // k=<k> sp=<name|-> shard=<i/n|-> dsl=<dsl with spaces>
            let (k_part, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed view line `{line}`"))?;
            let (sp_part, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed view line `{line}`"))?;
            let (shard_part, dsl_part) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed view line `{line}`"))?;
            let k: u32 = k_part
                .strip_prefix("k=")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad radius in `{line}`"))?;
            let subpattern = match sp_part.strip_prefix("sp=") {
                Some("-") => None,
                Some(s) => Some(s.to_string()),
                None => return Err(format!("bad subpattern in `{line}`")),
            };
            let shard = match shard_part.strip_prefix("shard=") {
                Some("-") => None,
                Some(s) => Some(ShardSpec::parse(s)?),
                None => return Err(format!("bad shard in `{line}`")),
            };
            let dsl = dsl_part
                .strip_prefix("dsl=")
                .ok_or_else(|| format!("bad dsl in `{line}`"))?
                .to_string();
            let pattern =
                Pattern::parse(&dsl).map_err(|e| format!("unparseable view pattern: {e}"))?;
            if let Some(sp) = &subpattern {
                if pattern.subpattern(sp).is_none() {
                    return Err(format!("view pattern has no subpattern `{sp}`"));
                }
            }
            let focal_line = lines.next().ok_or("view missing `focal` line")?;
            let focal_spec = focal_line
                .trim()
                .strip_prefix("focal ")
                .ok_or_else(|| format!("expected `focal` line, found `{}`", focal_line.trim()))?;
            let focal_ids = parse_focal_ranges(focal_spec)?;
            let mut focal = vec![false; num_nodes];
            for &n in &focal_ids {
                let i = n.0 as usize;
                if i >= num_nodes {
                    return Err(format!(
                        "view focal node {i} out of range for {num_nodes} nodes"
                    ));
                }
                focal[i] = true;
            }
            let counts_line = lines.next().ok_or("view missing `counts` line")?;
            let counts_spec = counts_line
                .trim()
                .strip_prefix("counts")
                .ok_or_else(|| format!("expected `counts` line, found `{}`", counts_line.trim()))?;
            let values: Vec<u64> = counts_spec
                .split_whitespace()
                .map(|v| v.parse().map_err(|_| format!("bad count `{v}`")))
                .collect::<Result<_, _>>()?;
            if values.len() != focal_ids.len() {
                return Err(format!(
                    "view has {} focal nodes but {} counts",
                    focal_ids.len(),
                    values.len()
                ));
            }
            let mut counts = CountVector::new(num_nodes, focal);
            for (&n, &c) in focal_ids.iter().zip(&values) {
                counts.set(n, c);
            }
            // Optional match block, then `end`.
            let mut matches = None;
            let next = lines.next().ok_or("view missing `end` line")?;
            let next = next.trim();
            if let Some(mlen) = next.strip_prefix("matches ") {
                let mlen: usize = mlen
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad match count `{mlen}`"))?;
                let mut pms = Vec::with_capacity(mlen);
                for _ in 0..mlen {
                    let mline = lines.next().ok_or("truncated match block")?;
                    let imgs = mline.trim().strip_prefix("match ").ok_or_else(|| {
                        format!("expected `match` line, found `{}`", mline.trim())
                    })?;
                    let nodes: Vec<NodeId> = imgs
                        .split_whitespace()
                        .map(|v| {
                            v.parse::<u32>()
                                .map(NodeId)
                                .map_err(|_| format!("bad match image `{v}`"))
                        })
                        .collect::<Result<_, _>>()?;
                    if nodes.len() != pattern.num_nodes() {
                        return Err(format!(
                            "match arity {} != pattern arity {}",
                            nodes.len(),
                            pattern.num_nodes()
                        ));
                    }
                    pms.push(PatternMatch { nodes });
                }
                matches = Some(Arc::new(MatchList::from_matches(pms)));
                let end = lines.next().ok_or("view missing `end` line")?;
                if end.trim() != "end" {
                    return Err(format!("expected `end`, found `{}`", end.trim()));
                }
            } else if next != "end" {
                return Err(format!("expected `matches` or `end`, found `{next}`"));
            }
            let counts = Arc::new(counts);
            let bytes = ViewEntry::estimate_bytes(&counts, matches.as_deref());
            views.push(ViewEntry {
                pattern,
                dsl,
                k,
                subpattern,
                counts,
                matches,
                fingerprint,
                shard,
                bytes,
            });
        }
        Ok((fingerprint, views))
    }

    /// Load a sidecar and adopt its views if the tag matches the live
    /// fingerprint; a stale or malformed sidecar is reported via the
    /// return value and ignored (never blocks opening the graph).
    /// Returns the number of views adopted.
    pub fn adopt_sidecar(
        &self,
        path: &Path,
        live_fingerprint: u64,
        num_nodes: usize,
    ) -> Result<usize, QueryError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => {
                return Err(QueryError::Semantic(format!(
                    "cannot read {}: {e}",
                    path.display()
                )))
            }
        };
        let (fingerprint, views) = Self::parse_sidecar(&text, num_nodes).map_err(|e| {
            QueryError::Semantic(format!("bad views sidecar {}: {e}", path.display()))
        })?;
        if fingerprint != live_fingerprint {
            return Ok(0); // stale: the graph changed since persistence
        }
        let mut adopted = 0;
        for v in views {
            if self.insert(v).is_ok() {
                adopted += 1;
            }
        }
        self.sidecar_loads
            .fetch_add(adopted as u64, Ordering::Relaxed);
        // insert() counts materializations; adoption is not a new
        // materialization, so take them back out.
        self.materializations
            .fetch_sub(adopted as u64, Ordering::Relaxed);
        Ok(adopted)
    }
}

/// Render a count vector's focal flags as inclusive ranges
/// (`0-99,200-200`), `-` when empty.
fn focal_ranges(counts: &CountVector) -> String {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    for (n, _) in counts.iter_focal() {
        match ranges.last_mut() {
            Some((_, hi)) if *hi + 1 == n.0 => *hi = n.0,
            _ => ranges.push((n.0, n.0)),
        }
    }
    if ranges.is_empty() {
        return "-".to_string();
    }
    ranges
        .iter()
        .map(|(lo, hi)| format!("{lo}-{hi}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse the inclusive-range focal syntax back to an ascending id list.
fn parse_focal_ranges(spec: &str) -> Result<Vec<NodeId>, String> {
    let spec = spec.trim();
    if spec == "-" || spec.is_empty() {
        return Ok(Vec::new());
    }
    let mut ids = Vec::new();
    for part in spec.split(',') {
        let (lo, hi) = part
            .split_once('-')
            .ok_or_else(|| format!("bad focal range `{part}`"))?;
        let lo: u32 = lo
            .parse()
            .map_err(|_| format!("bad focal range `{part}`"))?;
        let hi: u32 = hi
            .parse()
            .map_err(|_| format!("bad focal range `{part}`"))?;
        if hi < lo {
            return Err(format!("bad focal range `{part}`"));
        }
        ids.extend((lo..=hi).map(NodeId));
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern() -> Pattern {
        Pattern::parse("PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }").unwrap()
    }

    fn entry(name_k: u32, n: usize, fp: u64) -> ViewEntry {
        let p = pattern();
        let counts = Arc::new(CountVector::new(n, vec![true; n]));
        let bytes = ViewEntry::estimate_bytes(&counts, None);
        ViewEntry {
            dsl: ego_pattern::to_dsl(&p),
            pattern: p,
            k: name_k,
            subpattern: None,
            counts,
            matches: None,
            fingerprint: fp,
            shard: None,
            bytes,
        }
    }

    #[test]
    fn insert_probe_and_drop() {
        let r = ViewRegistry::new(1 << 20);
        let e = entry(2, 10, 7);
        let dsl = e.dsl.clone();
        r.insert(e).unwrap();
        assert!(r.get(&dsl, 2, None, 7, None).is_some());
        // Fingerprint, radius, subpattern, and shard all gate the probe.
        assert!(r.peek(&dsl, 2, None, 8, None).is_none());
        assert!(r.peek(&dsl, 3, None, 7, None).is_none());
        assert!(r.peek(&dsl, 2, Some("s"), 7, None).is_none());
        assert!(r
            .peek(&dsl, 2, None, 7, Some(ShardSpec::new(0, 2).unwrap()))
            .is_none());
        let s = r.stats();
        assert_eq!((s.entries, s.hits, s.materializations), (1, 1, 1));
        assert!(s.bytes > 0);
        assert!(r.remove(&dsl, 2, None).is_some());
        assert!(r.remove(&dsl, 2, None).is_none());
        assert_eq!(r.stats().entries, 0);
        assert_eq!(r.stats().drops, 1);
    }

    #[test]
    fn eviction_is_largest_first_and_deterministic() {
        // Budget fits the big view plus one small one, not all three.
        let small = entry(1, 10, 7); // 90 bytes
        let big = entry(2, 100, 7); // 900 bytes
        let small2 = entry(3, 10, 7); // 90 bytes
        let budget = 900 + 90 + 50;
        let run = || {
            let r = ViewRegistry::new(budget);
            r.insert(entry(1, 10, 7)).unwrap();
            r.insert(entry(2, 100, 7)).unwrap();
            let evicted = r.insert(entry(3, 10, 7)).unwrap();
            let live: Vec<String> = r.snapshot().iter().map(|e| e.k.to_string()).collect();
            (evicted, live)
        };
        let (evicted, live) = run();
        // The largest (k=2) goes first, never the entry just inserted.
        assert_eq!(evicted.len(), 1, "{evicted:?}");
        assert!(evicted[0].contains("k=2"), "{evicted:?}");
        assert_eq!(live, vec!["1", "3"]);
        // Determinism: same inputs, same evictions.
        assert_eq!(run(), (evicted, live));
        let _ = (small, big, small2);
    }

    #[test]
    fn oversized_view_is_rejected() {
        let r = ViewRegistry::new(10);
        let err = r.insert(entry(1, 100, 7)).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
        assert_eq!(r.stats().entries, 0);
    }

    #[test]
    fn refresh_updates_fingerprint_in_place() {
        let r = ViewRegistry::new(1 << 20);
        let e = entry(2, 5, 7);
        let dsl = e.dsl.clone();
        r.insert(e).unwrap();
        let mut cv = CountVector::new(5, vec![true; 5]);
        cv.set(NodeId(3), 42);
        r.install_refreshed(&dsl, 2, None, Arc::new(cv), None, 8);
        assert!(r.peek(&dsl, 2, None, 7, None).is_none(), "old fp stale");
        let fresh = r.peek(&dsl, 2, None, 8, None).unwrap();
        assert_eq!(fresh.counts.get(NodeId(3)), 42);
        assert_eq!(r.stats().refreshes, 1);
        // Refreshing a dropped view is a no-op.
        r.remove(&dsl, 2, None);
        r.install_refreshed(&dsl, 2, None, fresh.counts.clone(), None, 9);
        assert_eq!(r.stats().entries, 0);
    }

    #[test]
    fn sidecar_roundtrip_with_matches_and_partial_focal() {
        let r = ViewRegistry::new(1 << 20);
        let p = pattern();
        let n = 8;
        let mut focal = vec![false; n];
        for i in [0usize, 1, 2, 5, 6] {
            focal[i] = true;
        }
        let mut cv = CountVector::new(n, focal);
        cv.set(NodeId(0), 3);
        cv.set(NodeId(5), 1);
        let m = MatchList::from_matches(vec![
            PatternMatch {
                nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            },
            PatternMatch {
                nodes: vec![NodeId(0), NodeId(2), NodeId(5)],
            },
        ]);
        let counts = Arc::new(cv);
        let matches = Some(Arc::new(m));
        let bytes = ViewEntry::estimate_bytes(&counts, matches.as_deref());
        r.insert(ViewEntry {
            dsl: ego_pattern::to_dsl(&p),
            pattern: p,
            k: 2,
            subpattern: None,
            counts,
            matches,
            fingerprint: 0xABCD,
            shard: Some(ShardSpec::new(0, 2).unwrap()),
            bytes,
        })
        .unwrap();
        let text = r.to_sidecar(0xABCD);
        let (fp, views) = ViewRegistry::parse_sidecar(&text, n).unwrap();
        assert_eq!(fp, 0xABCD);
        assert_eq!(views.len(), 1);
        let v = &views[0];
        assert_eq!(v.k, 2);
        assert_eq!(v.shard, Some(ShardSpec::new(0, 2).unwrap()));
        assert_eq!(v.counts.get(NodeId(0)), 3);
        assert_eq!(v.counts.get(NodeId(5)), 1);
        assert_eq!(v.counts.get(NodeId(3)), 0);
        assert!(v.counts.is_focal(NodeId(6)));
        assert!(!v.counts.is_focal(NodeId(3)));
        let m = v.matches.as_ref().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[1].nodes, vec![NodeId(0), NodeId(2), NodeId(5)]);
        // Round-trip again: byte-identical sidecar.
        let r2 = ViewRegistry::new(1 << 20);
        for v in views {
            r2.insert(v).unwrap();
        }
        assert_eq!(r2.to_sidecar(0xABCD), text);
    }

    #[test]
    fn stale_sidecar_is_ignored_on_adoption() {
        let dir = std::env::temp_dir().join(format!("egoviews-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.views");
        let r = ViewRegistry::new(1 << 20);
        r.insert(entry(2, 6, 0x11)).unwrap();
        r.save(&path, 0x11).unwrap();
        // Fresh fingerprint: adopted.
        let warm = ViewRegistry::new(1 << 20);
        assert_eq!(warm.adopt_sidecar(&path, 0x11, 6).unwrap(), 1);
        assert_eq!(warm.stats().sidecar_loads, 1);
        assert_eq!(warm.stats().materializations, 0);
        // Stale fingerprint: rejected, registry untouched.
        let cold = ViewRegistry::new(1 << 20);
        assert_eq!(cold.adopt_sidecar(&path, 0x22, 6).unwrap(), 0);
        assert_eq!(cold.stats().entries, 0);
        // Missing file: Ok(0).
        assert_eq!(
            cold.adopt_sidecar(&dir.join("absent.views"), 0x11, 6)
                .unwrap(),
            0
        );
        // Malformed file: an error, not a panic.
        std::fs::write(&path, "not a views sidecar").unwrap();
        assert!(cold.adopt_sidecar(&path, 0x11, 6).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn focal_range_rendering() {
        let mut focal = vec![false; 10];
        for i in [0usize, 1, 2, 7, 9] {
            focal[i] = true;
        }
        let cv = CountVector::new(10, focal);
        assert_eq!(focal_ranges(&cv), "0-2,7-7,9-9");
        assert_eq!(
            parse_focal_ranges("0-2,7-7,9-9").unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(7), NodeId(9)]
        );
        assert_eq!(focal_ranges(&CountVector::new(4, vec![false; 4])), "-");
        assert!(parse_focal_ranges("5-2").is_err());
        assert!(parse_focal_ranges("x").is_err());
    }
}
