//! Abstract syntax tree for census SQL.

use crate::value::Value;

/// A reference to a column, optionally qualified by a table alias:
/// `ID`, `n1.ID`, `age`, `n2.dept`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table alias (`n1` in `n1.ID`), if qualified.
    pub table: Option<String>,
    /// Column name; `ID` is the node id, anything else an attribute.
    pub column: String,
}

impl ColumnRef {
    /// Is this the node-id pseudo column?
    pub fn is_id(&self) -> bool {
        self.column.eq_ignore_ascii_case("ID")
    }
}

/// The census neighborhood inside an aggregate call.
#[derive(Clone, Debug, PartialEq)]
pub enum NeighborhoodAst {
    /// `SUBGRAPH(<col>, k)`
    Subgraph {
        /// The focal node column (must be an ID column).
        node: ColumnRef,
        /// Radius.
        k: u32,
    },
    /// `SUBGRAPH-INTERSECTION(<col>, <col>, k)`
    Intersection {
        /// First node.
        n1: ColumnRef,
        /// Second node.
        n2: ColumnRef,
        /// Radius.
        k: u32,
    },
    /// `SUBGRAPH-UNION(<col>, <col>, k)`
    Union {
        /// First node.
        n1: ColumnRef,
        /// Second node.
        n2: ColumnRef,
        /// Radius.
        k: u32,
    },
}

/// `COUNTP(p, S)` or `COUNTSP(sp, p, S)`.
#[derive(Clone, Debug, PartialEq)]
pub struct AggCall {
    /// Subpattern name for COUNTSP; `None` for COUNTP.
    pub subpattern: Option<String>,
    /// Pattern name (resolved against the catalog).
    pub pattern: String,
    /// The search neighborhood.
    pub neighborhood: NeighborhoodAst,
}

/// One SELECT-list item.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    /// A plain column.
    Column(ColumnRef),
    /// A census aggregate.
    Agg(AggCall),
}

/// Binary operators in WHERE expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A WHERE expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference.
    Column(ColumnRef),
    /// `RND()`: uniform random float in `[0, 1)`, fresh per row — the
    /// paper's focal-selectivity predicate (`WHERE RND() < R`).
    Rnd,
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
}

/// A table in the FROM list: always the `nodes` relation, possibly aliased.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRef {
    /// The alias (defaults to the table name `nodes`).
    pub alias: String,
}

/// Sort direction in ORDER BY.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY key: a 1-based projection ordinal (`ORDER BY 2 DESC`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrderKey {
    /// 1-based index into the SELECT list.
    pub ordinal: usize,
    /// Direction.
    pub dir: SortDir,
}

/// A parsed SELECT statement.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    /// SELECT-list items.
    pub projections: Vec<Projection>,
    /// FROM tables (1 = single-node census, 2 = pairwise).
    pub tables: Vec<TableRef>,
    /// Optional WHERE clause.
    pub where_clause: Option<Expr>,
    /// ORDER BY keys (projection ordinals).
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

/// Which way a graph mutation statement goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// `INSERT EDGE (a, b)`.
    InsertEdge,
    /// `DELETE EDGE (a, b)`.
    DeleteEdge,
}

/// A parsed `INSERT EDGE` / `DELETE EDGE` statement. The query engine
/// itself is read-only; mutation hosts (the server's `update` op, the
/// CLI's `mutate` subcommand) parse scripts with
/// [`crate::parse_mutations`] and apply them through `ego-dynamic`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationStmt {
    /// Insert or delete.
    pub kind: MutationKind,
    /// Source node id (`a -> b` for directed graphs).
    pub a: u32,
    /// Target node id.
    pub b: u32,
}

/// A parsed `MATERIALIZE <pattern> RADIUS k [SUBPATTERN sp] [MATCHES]`
/// statement: eagerly compute and pin the full per-focal count vector
/// (and, with `MATCHES`, the global match list) for the pattern into the
/// engine's view registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaterializeStmt {
    /// Pattern name, resolved against the catalog at execution time.
    pub pattern: String,
    /// Neighborhood radius for the materialized counts.
    pub k: u32,
    /// Materialize COUNTSP counts for this subpattern instead of COUNTP.
    pub subpattern: Option<String>,
    /// Also pin the global match list (enables subscription baselines
    /// and exact-list incremental maintenance).
    pub matches: bool,
}

/// A parsed `DROP VIEW <pattern> RADIUS k [SUBPATTERN sp]` statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DropViewStmt {
    /// Pattern name of the view to drop.
    pub pattern: String,
    /// Radius of the view to drop.
    pub k: u32,
    /// Subpattern of the view to drop, for COUNTSP views.
    pub subpattern: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_id_detection() {
        let c = ColumnRef {
            table: None,
            column: "id".into(),
        };
        assert!(c.is_id());
        let c2 = ColumnRef {
            table: Some("n1".into()),
            column: "age".into(),
        };
        assert!(!c2.is_id());
    }
}
