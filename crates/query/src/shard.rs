//! Focal-node sharding: contiguous partitions of the node-ID space.
//!
//! The census is embarrassingly parallel over focal nodes, so a fleet
//! of worker processes over one shared graph (the mmap `.egb` store
//! keeps a single physical copy in the page cache) can split any
//! statement by focal range and merge results by concatenation. A
//! [`ShardSpec`] names one member of such a partition: shard `i` of `n`
//! covers the `i`-th of `n` contiguous, balanced node-ID ranges.
//!
//! The partition is over the *node-ID space*, not over the post-WHERE
//! focal list: every worker evaluates the WHERE clause (and its `RND()`
//! stream) over all nodes exactly as a single process would, then keeps
//! only the focal nodes inside its range. That makes sharded execution
//! bit-identical to single-process execution by construction — same
//! RNG draws, same per-node counts, and shard-order concatenation
//! reproduces the ascending-ID row order.

use std::fmt;
use std::ops::Range;

/// One member of a contiguous focal partition: shard `index` of `count`.
///
/// Invariant: `index < count` and `count >= 1` (enforced by
/// [`ShardSpec::new`] / [`ShardSpec::parse`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    index: u32,
    count: u32,
}

impl ShardSpec {
    /// Shard `index` of `count`. Errors unless `index < count`.
    pub fn new(index: u32, count: u32) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shards"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parse the `i/n` CLI/wire syntax (e.g. `0/4`).
    pub fn parse(text: &str) -> Result<ShardSpec, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("bad shard spec `{text}` (expected `index/count`)"))?;
        let index: u32 = i
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index `{i}`"))?;
        let count: u32 = n
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count `{n}`"))?;
        ShardSpec::new(index, count)
    }

    /// This shard's index within the partition.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Number of shards in the partition.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True for the trivial whole-range shard `0/1`, which is
    /// equivalent to no sharding at all.
    pub fn is_whole(&self) -> bool {
        self.count == 1
    }

    /// The contiguous node-ID range this shard covers in a graph of
    /// `num_nodes` nodes. Ranges are balanced (sizes differ by at most
    /// one) and tile the space: the union over all `count` shards is
    /// exactly `0..num_nodes`, with no overlap. Shards beyond the node
    /// count come out empty.
    pub fn range(&self, num_nodes: usize) -> Range<usize> {
        let n = num_nodes as u64;
        let lo = n * self.index as u64 / self.count as u64;
        let hi = n * (self.index as u64 + 1) / self.count as u64;
        (lo as usize)..(hi as usize)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_and_validation() {
        let s = ShardSpec::parse("2/4").unwrap();
        assert_eq!((s.index(), s.count()), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert_eq!(ShardSpec::parse(&s.to_string()).unwrap(), s);
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("x/2").is_err());
        assert!(ShardSpec::parse("3").is_err());
        assert!(ShardSpec::new(0, 1).unwrap().is_whole());
        assert!(!ShardSpec::new(0, 2).unwrap().is_whole());
    }

    #[test]
    fn ranges_tile_the_node_space_exactly() {
        for num_nodes in [0usize, 1, 2, 7, 100, 101, 1000] {
            for count in [1u32, 2, 3, 4, 7, 16] {
                let mut next = 0usize;
                for index in 0..count {
                    let r = ShardSpec::new(index, count).unwrap().range(num_nodes);
                    assert_eq!(r.start, next, "n={num_nodes} c={count} i={index}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, num_nodes, "partition must cover all nodes");
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        for num_nodes in [5usize, 97, 1000] {
            for count in [2u32, 3, 8] {
                let sizes: Vec<usize> = (0..count)
                    .map(|i| ShardSpec::new(i, count).unwrap().range(num_nodes).len())
                    .collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "unbalanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_tails() {
        // 2 nodes across 4 shards: two shards get a node, two are empty.
        let sizes: Vec<usize> = (0..4)
            .map(|i| ShardSpec::new(i, 4).unwrap().range(2).len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 0).count(), 2);
    }
}
