#!/usr/bin/env bash
# Regenerate every figure of the paper's evaluation and store the output
# under results/. Usage:
#   scripts/run_all_figures.sh [quick|paper]
set -euo pipefail
scale="${1:-quick}"
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p ego-bench
for fig in fig4a fig4b fig4c fig4d fig4e fig4f fig4g fig4h ablation; do
    echo "=== $fig (scale: $scale) ==="
    ./target/release/"$fig" --scale "$scale" | tee "results/${fig}_${scale}.md"
done
echo "done; results under results/"
