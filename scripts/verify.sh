#!/usr/bin/env bash
# Repo verification gate: formatting, lints, and the tier-1 test suite.
# Run from the repo root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> batch smoke test (multi-COUNTP statement == two single-agg runs)"
tmpdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT
./target/release/egocensus generate --model ba --nodes 300 --param 3 --seed 7 \
  -o "$tmpdir/g.txt" >/dev/null
# Headers quote the agg expressions (they contain commas), so compare
# data rows only.
./target/release/egocensus query "$tmpdir/g.txt" --csv \
  'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)), COUNTP(single_edge, SUBGRAPH(ID, 2)) FROM nodes' \
  | tail -n +2 >"$tmpdir/batched.csv"
./target/release/egocensus query "$tmpdir/g.txt" --csv \
  'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes' | tail -n +2 >"$tmpdir/agg1.csv"
./target/release/egocensus query "$tmpdir/g.txt" --csv \
  'SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 2)) FROM nodes' | tail -n +2 >"$tmpdir/agg2.csv"
cut -d, -f1,2 "$tmpdir/batched.csv" | diff - "$tmpdir/agg1.csv" \
  || { echo "FAIL: batched agg 1 diverges from its single-agg run"; exit 1; }
cut -d, -f1,3 "$tmpdir/batched.csv" | diff - "$tmpdir/agg2.csv" \
  || { echo "FAIL: batched agg 2 diverges from its single-agg run"; exit 1; }
echo "    batched counts match single-agg runs column for column"

echo "==> server smoke test (ephemeral port, one query, clean shutdown)"
./target/release/egocensus serve "$tmpdir/g.txt" --addr 127.0.0.1:0 \
  --threads 2 --cache-mb 8 >"$tmpdir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$tmpdir/serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: server never printed its address"; exit 1; }
rows=$(./target/release/egocensus client --addr "$addr" --csv \
  'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes' | tail -n +2 | wc -l)
[ "$rows" -eq 300 ] || { echo "FAIL: expected 300 result rows, got $rows"; exit 1; }
./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid"
serve_pid=""
echo "    served 300 rows and shut down cleanly"

echo "==> verify OK"
