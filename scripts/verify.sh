#!/usr/bin/env bash
# Repo verification gate: formatting, lints, and the tier-1 test suite.
# Run from the repo root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> verify OK"
