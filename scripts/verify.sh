#!/usr/bin/env bash
# Repo verification gate: formatting, lints, and the tier-1 test suite.
# Run from the repo root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> batch smoke test (multi-COUNTP statement == two single-agg runs)"
tmpdir=$(mktemp -d)
serve_pid=""
cleanup() {
  [ -n "${sub_pid:-}" ] && kill "$sub_pid" 2>/dev/null || true
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
  rm -rf "$tmpdir"
}
trap cleanup EXIT
./target/release/egocensus generate --model ba --nodes 300 --param 3 --seed 7 \
  -o "$tmpdir/g.txt" >/dev/null
# Headers quote the agg expressions (they contain commas), so compare
# data rows only.
./target/release/egocensus query "$tmpdir/g.txt" --csv \
  'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)), COUNTP(single_edge, SUBGRAPH(ID, 2)) FROM nodes' \
  | tail -n +2 >"$tmpdir/batched.csv"
./target/release/egocensus query "$tmpdir/g.txt" --csv \
  'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes' | tail -n +2 >"$tmpdir/agg1.csv"
./target/release/egocensus query "$tmpdir/g.txt" --csv \
  'SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 2)) FROM nodes' | tail -n +2 >"$tmpdir/agg2.csv"
cut -d, -f1,2 "$tmpdir/batched.csv" | diff - "$tmpdir/agg1.csv" \
  || { echo "FAIL: batched agg 1 diverges from its single-agg run"; exit 1; }
cut -d, -f1,3 "$tmpdir/batched.csv" | diff - "$tmpdir/agg2.csv" \
  || { echo "FAIL: batched agg 2 diverges from its single-agg run"; exit 1; }
echo "    batched counts match single-agg runs column for column"

echo "==> out-of-core store smoke test (convert to .egb; text vs mmap CSVs byte-identical)"
./target/release/egocensus convert "$tmpdir/g.txt" -o "$tmpdir/g.egb" >/dev/null
# Buffer the output before grep -q: piping directly races EPIPE when
# grep exits at the first match while stats is still printing.
./target/release/egocensus stats "$tmpdir/g.egb" >"$tmpdir/stats_out.txt"
grep -q '^storage:     mmap$' "$tmpdir/stats_out.txt" \
  || { echo "FAIL: .egb graph should report mmap storage"; exit 1; }
store_sql='SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)), COUNTP(single_edge, SUBGRAPH(ID, 2)) FROM nodes ORDER BY 1'
./target/release/egocensus query "$tmpdir/g.txt" --csv "$store_sql" >"$tmpdir/census_txt.csv"
./target/release/egocensus query "$tmpdir/g.egb" --csv "$store_sql" >"$tmpdir/census_egb.csv"
cmp -s "$tmpdir/census_txt.csv" "$tmpdir/census_egb.csv" \
  || { echo "FAIL: census over the mmap store diverges from the text-loaded store"; exit 1; }
# convert re-opens what it wrote and verifies the structural fingerprint,
# so a clean exit here also covers the .egb -> text direction.
./target/release/egocensus convert "$tmpdir/g.egb" -o "$tmpdir/g2.txt" >/dev/null
echo "    text and mmap backends agree byte-for-byte; .egb round-trips both ways"

echo "==> setops kernel equivalence (EGO_SETOPS overrides, byte-identical CSVs)"
# A fig4-style census must produce byte-for-byte identical CSVs whichever
# set-intersection kernel the matcher is forced onto, at any thread count.
kernel_sql='SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)), COUNTP(clq4u, SUBGRAPH(ID, 2)) FROM nodes ORDER BY 1'
kernel_def='PATTERN clq4u { ?A-?B; ?A-?C; ?A-?D; ?B-?C; ?B-?D; ?C-?D; }'
EGO_SETOPS=merge ./target/release/egocensus query "$tmpdir/g.txt" --threads 1 --csv \
  --define "$kernel_def" "$kernel_sql" >"$tmpdir/kernel_ref.csv"
for kernel in merge gallop bitset adaptive; do
  for t in 1 4; do
    EGO_SETOPS=$kernel ./target/release/egocensus query "$tmpdir/g.txt" --threads "$t" --csv \
      --define "$kernel_def" "$kernel_sql" >"$tmpdir/kernel_got.csv"
    cmp -s "$tmpdir/kernel_ref.csv" "$tmpdir/kernel_got.csv" \
      || { echo "FAIL: EGO_SETOPS=$kernel --threads $t diverges from the merge kernel"; exit 1; }
  done
done
echo "    merge/gallop/bitset/adaptive kernels agree byte-for-byte (threads 1 and 4)"

echo "==> server smoke test (ephemeral port, one query, clean shutdown)"
./target/release/egocensus serve "$tmpdir/g.txt" --addr 127.0.0.1:0 \
  --threads 2 --cache-mb 8 >"$tmpdir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$tmpdir/serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: server never printed its address"; exit 1; }
rows=$(./target/release/egocensus client --addr "$addr" --csv \
  'SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes' | tail -n +2 | wc -l)
[ "$rows" -eq 300 ] || { echo "FAIL: expected 300 result rows, got $rows"; exit 1; }
./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid"
serve_pid=""
echo "    served 300 rows and shut down cleanly"

echo "==> dynamic smoke test (mutate --verify; server update invalidates caches)"
# Two triangles sharing node 2, chain 4-5-6: inserting (4, 6) closes a
# third triangle, so node 5's k=1 triangle count goes 0 -> 1.
cat >"$tmpdir/dyn.txt" <<'EOF'
# egocensus graph v1
graph undirected nodes=7
edge 0 1
edge 1 2
edge 0 2
edge 2 3
edge 3 4
edge 2 4
edge 4 5
edge 5 6
EOF
./target/release/egocensus mutate "$tmpdir/dyn.txt" \
  --apply 'INSERT EDGE (4, 6); DELETE EDGE (0, 1)' \
  --pattern 'PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }' --k 1 --verify \
  -o "$tmpdir/dyn2.txt" >/dev/null \
  || { echo "FAIL: egocensus mutate --verify rejected the incremental counts"; exit 1; }
./target/release/egocensus serve "$tmpdir/dyn.txt" --addr 127.0.0.1:0 \
  --threads 2 --cache-mb 8 >"$tmpdir/dyn-serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$tmpdir/dyn-serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: dynamic server never printed its address"; exit 1; }
sql='SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes'
./target/release/egocensus client --addr "$addr" --csv "$sql" >"$tmpdir/before.csv"
./target/release/egocensus client --addr "$addr" --update 'INSERT EDGE (4, 6)' >/dev/null
./target/release/egocensus client --addr "$addr" --csv "$sql" >"$tmpdir/after.csv"
diff -q "$tmpdir/before.csv" "$tmpdir/after.csv" >/dev/null \
  && { echo "FAIL: update served a stale cached answer"; exit 1; }
grep -q '^5,1$' "$tmpdir/after.csv" \
  || { echo "FAIL: node 5 should count one triangle after the insert"; exit 1; }
stats=$(./target/release/egocensus client --addr "$addr" --csv --stats)
echo "$stats" | grep -q '^graph_updates,1$' \
  || { echo "FAIL: stats should report graph_updates = 1"; exit 1; }
echo "$stats" | grep -q '^cache_invalidations,1$' \
  || { echo "FAIL: stats should report cache_invalidations = 1"; exit 1; }
./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid"
serve_pid=""
echo "    mutate --verify passed; update re-censused and invalidated the caches"

echo "==> sharded tier smoke test (router + 2 workers on the .egb store, failover)"
shard_sql='SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)), COUNTP(single_edge, SUBGRAPH(ID, 2)) FROM nodes'
./target/release/egocensus query "$tmpdir/g.egb" --csv "$shard_sql" >"$tmpdir/shard_direct.csv"
./target/release/egocensus serve "$tmpdir/g.egb" --addr 127.0.0.1:0 \
  --workers 2 --threads 2 --cache-mb 8 >"$tmpdir/shard-serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^listening on //p' "$tmpdir/shard-serve.log")
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: router never printed its address"; exit 1; }
./target/release/egocensus client --addr "$addr" --csv "$shard_sql" >"$tmpdir/shard_routed.csv"
cmp -s "$tmpdir/shard_direct.csv" "$tmpdir/shard_routed.csv" \
  || { echo "FAIL: routed scatter/gather diverges from the direct engine"; exit 1; }
# Kill one worker mid-run; the router must re-scatter its shard to the
# survivor and still answer byte-identically.
worker_pid=$(sed -n 's/^worker 0 listening on .* (pid \([0-9]*\))$/\1/p' "$tmpdir/shard-serve.log")
[ -n "$worker_pid" ] || { echo "FAIL: router never printed worker 0's pid"; exit 1; }
kill -9 "$worker_pid"
./target/release/egocensus client --addr "$addr" --csv "$shard_sql" >"$tmpdir/shard_failover.csv"
cmp -s "$tmpdir/shard_direct.csv" "$tmpdir/shard_failover.csv" \
  || { echo "FAIL: post-failover query diverges from the direct engine"; exit 1; }
shard_stats=$(./target/release/egocensus client --addr "$addr" --csv --stats)
echo "$shard_stats" | grep -q '^router_worker_failures,[1-9]' \
  || { echo "FAIL: stats should report at least one worker failure"; exit 1; }
echo "$shard_stats" | grep -q '^router_workers_up,1$' \
  || { echo "FAIL: stats should report one surviving worker"; exit 1; }
./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid" || true
serve_pid=""
echo "    router matched the direct engine byte-for-byte, before and after losing a worker"

echo "==> continuous census smoke test (subscribe; update pushes changed rows)"
# Same 7-node fixture: INSERT EDGE (4, 6) closes a triangle, so nodes
# 4/5/6 change and the standing query must push exactly those rows.
sub_sql='SUBSCRIBE SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes'
sub_pid=""
run_subscribe_smoke() { # $1 = serve args, $2 = label
  # shellcheck disable=SC2086
  ./target/release/egocensus serve "$tmpdir/dyn.txt" --addr 127.0.0.1:0 \
    $1 >"$tmpdir/sub-serve.log" &
  serve_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$tmpdir/sub-serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "FAIL: $2 server never printed its address"; exit 1; }
  ./target/release/egocensus client --addr "$addr" --csv \
    --subscribe "$sub_sql" --watch 30 >"$tmpdir/sub.log" &
  sub_pid=$!
  for _ in $(seq 1 100); do
    grep -q '^watching for' "$tmpdir/sub.log" && break
    sleep 0.1
  done
  grep -q '^watching for' "$tmpdir/sub.log" \
    || { echo "FAIL: $2 subscriber never registered"; exit 1; }
  ./target/release/egocensus client --addr "$addr" --update 'INSERT EDGE (4, 6)' >/dev/null
  for _ in $(seq 1 100); do
    grep -q '^notify subscription=1 generation=1$' "$tmpdir/sub.log" && break
    sleep 0.1
  done
  grep -q '^notify subscription=1 generation=1$' "$tmpdir/sub.log" \
    || { echo "FAIL: $2 subscriber never received the pushed frame"; exit 1; }
  # Node 5 goes 0 -> 1; the frame row is (focal, column, old, new).
  grep -q '^5,.*,0,1$' "$tmpdir/sub.log" \
    || { echo "FAIL: $2 frame should carry node 5 going 0 -> 1"; exit 1; }
  kill "$sub_pid" 2>/dev/null || true
  wait "$sub_pid" 2>/dev/null || true
  sub_pid=""
}
run_subscribe_smoke "--threads 2 --cache-mb 8" "direct"
stats=$(./target/release/egocensus client --addr "$addr" --csv --stats)
echo "$stats" | grep -q '^continuous_subscriptions,0$' \
  || { echo "FAIL: killed subscriber should have been cleaned up"; exit 1; }
echo "$stats" | grep -q '^continuous_notifications,1$' \
  || { echo "FAIL: stats should report one pushed notification"; exit 1; }
./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid"
serve_pid=""
run_subscribe_smoke "--workers 2 --threads 2 --cache-mb 8" "routed"
shard_sub_stats=$(./target/release/egocensus client --addr "$addr" --csv --stats)
echo "$shard_sub_stats" | grep -q '^router_subscriptions_created,1$' \
  || { echo "FAIL: router stats should report the subscription"; exit 1; }
echo "$shard_sub_stats" | grep -q '^router_frames_pushed,[1-9]' \
  || { echo "FAIL: router stats should report pushed frames"; exit 1; }
./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
wait "$serve_pid" || true
serve_pid=""
echo "    changed rows pushed end to end, direct and through the router"

echo "==> materialized views smoke test (sidecar; EXPLAIN view:; freshness; direct + routed)"
# Same 7-node fixture. A materialized view must serve byte-identically
# to a cold recompute, stay fresh through an update without being
# re-materialized, and behave the same through the sharded router.
view_sql='SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes'
./target/release/egocensus materialize "$tmpdir/dyn.txt" \
  'MATERIALIZE clq3_unlb RADIUS 1 MATCHES' >/dev/null
[ -f "$tmpdir/dyn.txt.views" ] \
  || { echo "FAIL: materialize did not write the .views sidecar"; exit 1; }
./target/release/egocensus query "$tmpdir/dyn.txt" "EXPLAIN $view_sql" >"$tmpdir/view_explain.txt"
grep -q 'view:' "$tmpdir/view_explain.txt" \
  || { echo "FAIL: EXPLAIN should show view: provenance after adopting the sidecar"; exit 1; }
./target/release/egocensus query "$tmpdir/dyn.txt" --csv "$view_sql" >"$tmpdir/view_got.csv"
rm "$tmpdir/dyn.txt.views"
./target/release/egocensus query "$tmpdir/dyn.txt" --csv "$view_sql" >"$tmpdir/view_want.csv"
cmp -s "$tmpdir/view_want.csv" "$tmpdir/view_got.csv" \
  || { echo "FAIL: view-served rows diverge from the cold recompute"; exit 1; }
# Direct reference for the post-update answer: apply the same mutation
# offline and recompute cold.
./target/release/egocensus mutate "$tmpdir/dyn.txt" --apply 'INSERT EDGE (4, 6)' \
  --pattern 'PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }' --k 1 -o "$tmpdir/dyn_ins.txt" >/dev/null
./target/release/egocensus query "$tmpdir/dyn_ins.txt" --csv "$view_sql" >"$tmpdir/view_after_want.csv"
run_view_smoke() { # $1 = serve args, $2 = label
  # shellcheck disable=SC2086
  ./target/release/egocensus serve "$tmpdir/dyn.txt" --addr 127.0.0.1:0 \
    $1 >"$tmpdir/view-serve.log" &
  serve_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$tmpdir/view-serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
  done
  [ -n "$addr" ] || { echo "FAIL: $2 view server never printed its address"; exit 1; }
  ./target/release/egocensus client --addr "$addr" \
    --materialize 'MATERIALIZE clq3_unlb RADIUS 1 MATCHES' >/dev/null
  ./target/release/egocensus client --addr "$addr" --csv "$view_sql" >"$tmpdir/view_srv.csv"
  cmp -s "$tmpdir/view_want.csv" "$tmpdir/view_srv.csv" \
    || { echo "FAIL: $2 view-served rows diverge from the direct recompute"; exit 1; }
  ./target/release/egocensus client --addr "$addr" --update 'INSERT EDGE (4, 6)' >/dev/null
  ./target/release/egocensus client --addr "$addr" --csv "$view_sql" >"$tmpdir/view_srv2.csv"
  cmp -s "$tmpdir/view_after_want.csv" "$tmpdir/view_srv2.csv" \
    || { echo "FAIL: $2 post-update view rows diverge from the direct recompute"; exit 1; }
  view_stats=$(./target/release/egocensus client --addr "$addr" --csv --stats)
  echo "$view_stats" | grep -q '^view_refresh_errors,0$' \
    || { echo "FAIL: $2 refresh must not error"; exit 1; }
  echo "$view_stats" | grep -q '^view_refreshes,[1-9]' \
    || { echo "FAIL: $2 update must refresh the pinned view in place"; exit 1; }
  echo "$view_stats" | grep -q '^view_hits,[1-9]' \
    || { echo "FAIL: $2 queries must be served by the view tier"; exit 1; }
  ./target/release/egocensus client --addr "$addr" --shutdown >/dev/null
  wait "$serve_pid" || true
  serve_pid=""
}
run_view_smoke "--threads 2 --cache-mb 8 --views off" "direct"
run_view_smoke "--workers 2 --threads 2 --cache-mb 8" "routed"
echo "    view-served answers match cold recomputes, before and after a mutation"

echo "==> planner smoke test (ANALYZE sidecar; EXPLAIN costs; dense-vs-sparse choice)"
./target/release/egocensus analyze "$tmpdir/g.txt" >/dev/null
[ -f "$tmpdir/g.txt.stats" ] \
  || { echo "FAIL: analyze did not write the .stats sidecar"; exit 1; }
./target/release/egocensus query "$tmpdir/g.txt" \
  'EXPLAIN SELECT ID, COUNTP(clq3_unlb, SUBGRAPH(ID, 1)) FROM nodes' >"$tmpdir/explain.txt"
grep -q 'stats=analyzed' "$tmpdir/explain.txt" \
  || { echo "FAIL: EXPLAIN should plan on the ANALYZE sidecar (stats=analyzed)"; exit 1; }
choices=$(grep -c 'choice' "$tmpdir/explain.txt" || true)
[ "$choices" -ge 2 ] \
  || { echo "FAIL: EXPLAIN should rank at least two algorithm alternatives"; exit 1; }
grep -q '(chosen)' "$tmpdir/explain.txt" \
  || { echo "FAIL: EXPLAIN should mark the chosen alternative"; exit 1; }
# A dense clique and a sparse path must flip the planner between the
# node-driven and pattern-driven families.
{
  echo "# egocensus graph v1"
  echo "graph undirected nodes=8"
  for i in $(seq 0 7); do
    for j in $(seq $((i + 1)) 7); do echo "edge $i $j"; done
  done
} >"$tmpdir/dense.txt"
{
  echo "# egocensus graph v1"
  echo "graph undirected nodes=30"
  for i in $(seq 0 28); do echo "edge $i $((i + 1))"; done
} >"$tmpdir/sparse.txt"
./target/release/egocensus analyze "$tmpdir/dense.txt" >/dev/null
./target/release/egocensus analyze "$tmpdir/sparse.txt" >/dev/null
tri_def='PATTERN tri { ?A-?B; ?B-?C; ?A-?C; }'
tri_sql='EXPLAIN SELECT ID, COUNTP(tri, SUBGRAPH(ID, 2)) FROM nodes'
dense_algo=$(./target/release/egocensus query "$tmpdir/dense.txt" --define "$tri_def" "$tri_sql" \
  | sed -n 's/.*algo=\([A-Za-z]*\).*/\1/p')
sparse_algo=$(./target/release/egocensus query "$tmpdir/sparse.txt" --define "$tri_def" "$tri_sql" \
  | sed -n 's/.*algo=\([A-Za-z]*\).*/\1/p')
case "$dense_algo" in
  Nd*) ;;
  *) echo "FAIL: dense clique should choose a node-driven algorithm (got '$dense_algo')"; exit 1 ;;
esac
case "$sparse_algo" in
  Pt*) ;;
  *) echo "FAIL: sparse path should choose a pattern-driven algorithm (got '$sparse_algo')"; exit 1 ;;
esac
echo "    sidecar adopted ($choices ranked alternatives); dense -> $dense_algo, sparse -> $sparse_algo"

echo "==> verify OK"
